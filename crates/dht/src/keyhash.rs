//! Stable, platform-independent 64-bit hashing.
//!
//! The DOLR mapping `L : O → {0..2^a-1}` and the keyword-position hash
//! `h : W → {0..r-1}` of the paper must be deterministic and uniform.
//! `std::hash` makes no cross-run stability promise, so we provide our
//! own: FNV-1a over the bytes followed by a SplitMix64 finalizer for
//! avalanche. Quality is ample for simulation workloads.

/// Hashes `bytes` to a stable 64-bit value.
///
/// # Example
///
/// ```
/// use hyperdex_dht::keyhash::stable_hash64;
///
/// let h1 = stable_hash64(b"mp3");
/// let h2 = stable_hash64(b"mp3");
/// assert_eq!(h1, h2);
/// assert_ne!(stable_hash64(b"mp3"), stable_hash64(b"mp4"));
/// ```
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    stable_hash64_seeded(bytes, 0)
}

/// Hashes `bytes` with a seed, yielding an independent hash family per
/// seed.
///
/// Seeded variants let different subsystems (object placement, keyword
/// bit positions, hypercube→ring mapping) use uncorrelated hashes of the
/// same strings.
pub fn stable_hash64_seeded(bytes: &[u8], seed: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    let mut hash = FNV_OFFSET ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    // SplitMix64 finalizer: FNV alone has weak high-bit diffusion.
    let mut z = hash;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a `u64` (e.g. an object id) to a stable 64-bit value.
pub fn stable_hash_u64(value: u64, seed: u64) -> u64 {
    stable_hash64_seeded(&value.to_le_bytes(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(stable_hash64(b"hello"), stable_hash64(b"hello"));
        assert_eq!(
            stable_hash64_seeded(b"hello", 9),
            stable_hash64_seeded(b"hello", 9)
        );
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(
            stable_hash64_seeded(b"hello", 1),
            stable_hash64_seeded(b"hello", 2)
        );
    }

    #[test]
    fn empty_input_ok() {
        // Different seeds must still differ on empty input.
        assert_ne!(stable_hash64_seeded(b"", 1), stable_hash64_seeded(b"", 2));
    }

    #[test]
    fn avalanche_on_single_bit() {
        // Flipping one input bit should flip ~half the output bits.
        let a = stable_hash64(b"keyword0");
        let b = stable_hash64(b"keyword1");
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "weak avalanche: {flipped} bits"
        );
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // Bucket 10k strings into 16 buckets; expect no bucket to deviate
        // wildly from 625.
        let mut buckets = [0u32; 16];
        for i in 0..10_000u32 {
            let h = stable_hash64(format!("key-{i}").as_bytes());
            buckets[(h >> 60) as usize] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!((450..=800).contains(&count), "bucket {i} has {count} items");
        }
    }

    #[test]
    fn u64_hash_matches_byte_hash() {
        assert_eq!(
            stable_hash_u64(42, 7),
            stable_hash64_seeded(&42u64.to_le_bytes(), 7)
        );
    }
}
