//! Chord finger tables.
//!
//! The `k`-th finger of node `n` is the live node serving id
//! `n + 2^k`. Greedy routing over fingers halves the remaining clockwise
//! distance per hop, giving the `O(log n)` lookups the paper's cost
//! model assumes for each DHT operation.

use crate::id::NodeId;
use crate::ring::Ring;

/// A node's finger table: 64 entries, entry `k` serving `n + 2^k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerTable {
    owner: NodeId,
    fingers: Vec<NodeId>,
}

impl FingerTable {
    /// Builds the finger table for `owner` from the current ring view.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn build(owner: NodeId, ring: &Ring) -> Self {
        assert!(!ring.is_empty(), "cannot build fingers on an empty ring");
        let fingers = (0..64)
            .map(|k| {
                ring.surrogate(owner.finger_target(k))
                    .expect("non-empty ring")
            })
            .collect();
        FingerTable { owner, fingers }
    }

    /// The node whose table this is.
    pub const fn owner(&self) -> NodeId {
        self.owner
    }

    /// The finger for `n + 2^k`.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ 64`.
    pub fn finger(&self, k: u8) -> NodeId {
        self.fingers[usize::from(k)]
    }

    /// The best next hop towards `key`: the finger that makes the most
    /// clockwise progress without overshooting past `key`.
    ///
    /// Returns `None` when no finger makes strict progress (the owner is
    /// the last hop before the key's surrogate).
    pub fn closest_preceding(&self, key: NodeId) -> Option<NodeId> {
        let total = self.owner.clockwise_distance(key);
        if total == 0 {
            return None;
        }
        // Scan from the longest finger down; pick the first that lands
        // strictly between owner and key (exclusive of both).
        let mut best: Option<(u64, NodeId)> = None;
        for &f in &self.fingers {
            if f == self.owner {
                continue;
            }
            let progress = self.owner.clockwise_distance(f);
            if progress < total {
                match best {
                    Some((best_progress, _)) if best_progress >= progress => {}
                    _ => best = Some((progress, f)),
                }
            }
        }
        best.map(|(_, f)| f)
    }

    /// All fingers that make strict progress towards `key` without
    /// overshooting, ordered by decreasing progress (best hop first).
    ///
    /// Used by the simulated DHT to fail over to the next-best hop when
    /// the best one is dead.
    pub fn candidates(&self, key: NodeId) -> Vec<NodeId> {
        let total = self.owner.clockwise_distance(key);
        let mut cands: Vec<(u64, NodeId)> = self
            .fingers
            .iter()
            .filter(|&&f| f != self.owner)
            .map(|&f| (self.owner.clockwise_distance(f), f))
            .filter(|&(p, _)| p > 0 && p < total)
            .collect();
        cands.sort_unstable_by_key(|c| std::cmp::Reverse(c.0));
        cands.dedup_by_key(|c| c.1);
        cands.into_iter().map(|(_, f)| f).collect()
    }

    /// Distinct nodes appearing in the table (the routing neighbors).
    pub fn neighbors(&self) -> Vec<NodeId> {
        let mut ns = self.fingers.clone();
        ns.sort_unstable();
        ns.dedup();
        ns.retain(|&n| n != self.owner);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> NodeId {
        NodeId::from_raw(n)
    }

    fn ring(ids: &[u64]) -> Ring {
        ids.iter().copied().map(id).collect()
    }

    #[test]
    fn fingers_are_surrogates_of_doubling_targets() {
        let r = ring(&[0, 1 << 10, 1 << 20, 1 << 40]);
        let ft = FingerTable::build(id(0), &r);
        assert_eq!(ft.finger(0), id(1 << 10), "0+1 served by 2^10");
        assert_eq!(ft.finger(10), id(1 << 10));
        assert_eq!(ft.finger(11), id(1 << 20));
        assert_eq!(ft.finger(40), id(1 << 40));
        assert_eq!(ft.finger(63), id(0), "wraps to self");
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn empty_ring_panics() {
        FingerTable::build(id(0), &Ring::new());
    }

    #[test]
    fn closest_preceding_makes_progress_without_overshoot() {
        let r = ring(&[0, 100, 1000, 50_000, 1 << 30]);
        let ft = FingerTable::build(id(0), &r);
        let hop = ft.closest_preceding(id(60_000)).unwrap();
        // Must progress beyond 0 but not pass 60000.
        let progress = id(0).clockwise_distance(hop);
        assert!(progress > 0 && progress < 60_000, "hop {hop}");
        assert_eq!(hop, id(50_000), "longest non-overshooting finger");
    }

    #[test]
    fn closest_preceding_none_when_adjacent() {
        let r = ring(&[0, 100]);
        let ft = FingerTable::build(id(0), &r);
        // Key 50: no node strictly inside (0, 50).
        assert_eq!(ft.closest_preceding(id(50)), None);
    }

    #[test]
    fn closest_preceding_zero_distance() {
        let r = ring(&[0, 100]);
        let ft = FingerTable::build(id(0), &r);
        assert_eq!(ft.closest_preceding(id(0)), None);
    }

    #[test]
    fn neighbors_deduplicated() {
        let r = ring(&[0, 100]);
        let ft = FingerTable::build(id(0), &r);
        assert_eq!(ft.neighbors(), vec![id(100)]);
    }

    #[test]
    fn single_node_ring_all_self() {
        let r = ring(&[42]);
        let ft = FingerTable::build(id(42), &r);
        assert!(ft.neighbors().is_empty());
        assert_eq!(ft.closest_preceding(id(7)), None);
    }
}
