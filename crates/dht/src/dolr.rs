//! The DOLR scheme: distributed object location and routing (§2.1).
//!
//! Objects have unique ids; the mapping `L` sends each object to the
//! live node owning `L(σ)` on the ring. Publishing a copy places a
//! *reference* `(σ, u)` — "object σ has a copy at node u" — at that
//! node; locating the object means fetching a reference. [`Dolr`] is the
//! *direct* evaluation mode: routing paths are computed analytically
//! (with exact hop counts) rather than by exchanging simulated messages;
//! see [`crate::sim`] for the message-level mode.

use std::collections::{BTreeSet, HashMap};

use hyperdex_simnet::rng::SimRng;

use crate::id::NodeId;
use crate::keyhash::{stable_hash64, stable_hash_u64};
use crate::ring::Ring;
use crate::routing::Router;

/// Seed for the object→ring placement hash family (`L`).
const PLACEMENT_SEED: u64 = 0x4C_50_4C_41_43_45; // "LPLACE"

/// A unique object identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Creates an id from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// Derives an id by hashing a name.
    pub fn from_name(name: &str) -> Self {
        ObjectId(stable_hash64(name.as_bytes()))
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The ring key this object maps to — the paper's `L(σ)`.
    pub fn placement(self) -> NodeId {
        NodeId::from_raw(stable_hash_u64(self.0, PLACEMENT_SEED))
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj:{:016x}", self.0)
    }
}

/// A reference `(σ, u)`: object `σ` has a physical copy at node `u`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectRef {
    /// The object.
    pub object: ObjectId,
    /// The node holding a physical copy.
    pub owner: NodeId,
}

/// Outcome of an insert or delete: where the operation landed and what
/// it cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// The node that now (or no longer) holds the reference.
    pub target: NodeId,
    /// Overlay hops taken to reach it.
    pub hops: usize,
    /// Nodes that received a replica of the update.
    pub replicas: Vec<NodeId>,
}

/// Outcome of a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// All known references for the object.
    pub refs: Vec<ObjectRef>,
    /// Overlay hops taken.
    pub hops: usize,
    /// The node that answered (the primary, or a replica after a crash).
    pub served_by: NodeId,
}

/// Per-node reference storage — the paper's `Refs_v`.
type RefStore = HashMap<ObjectId, BTreeSet<ObjectRef>>;

/// Builder for [`Dolr`].
#[derive(Debug, Clone)]
pub struct DolrBuilder {
    nodes: usize,
    seed: u64,
    replication: usize,
    id_bits: u8,
}

impl Default for DolrBuilder {
    fn default() -> Self {
        DolrBuilder {
            nodes: 64,
            seed: 0,
            replication: 0,
            id_bits: 64,
        }
    }
}

impl DolrBuilder {
    /// Number of initial nodes (default 64).
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// RNG seed controlling node-id placement (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of successor replicas per reference (default 0).
    pub fn replication(mut self, k: usize) -> Self {
        self.replication = k;
        self
    }

    /// The identifier-space width `a` in bits (default 64).
    ///
    /// §2.1 only requires `2^a` to be "much larger than the actual
    /// number of nodes"; a narrow space makes surrogate collisions
    /// observable in tests.
    ///
    /// # Panics
    ///
    /// Panics at `build` time if `a` is 0 or exceeds 64, or when
    /// `2^a < nodes` (the ids cannot be distinct).
    pub fn id_bits(mut self, a: u8) -> Self {
        self.id_bits = a;
        self
    }

    /// Builds the DHT.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or the id space cannot hold them.
    pub fn build(self) -> Dolr {
        assert!(self.nodes > 0, "a DHT needs at least one node");
        assert!(
            self.id_bits >= 1 && self.id_bits <= 64,
            "id space must be 1..=64 bits"
        );
        let mask = if self.id_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.id_bits) - 1
        };
        assert!(
            self.id_bits == 64 || (self.nodes as u64) <= mask.saturating_add(1),
            "2^a must be at least the node count"
        );
        let mut rng = SimRng::new(self.seed);
        let mut ring = Ring::new();
        while ring.len() < self.nodes {
            ring.join(NodeId::from_raw(rng.next_u64() & mask));
        }
        let router = Router::build(&ring);
        let stores = ring.iter().map(|n| (n, RefStore::new())).collect();
        Dolr {
            ring,
            router,
            stores,
            replication: self.replication,
            rng,
        }
    }
}

/// A Chord-like DHT supporting the DOLR `Insert` / `Delete` / `Read`
/// operations with exact hop accounting, churn, and replication.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Dolr {
    ring: Ring,
    router: Router,
    stores: HashMap<NodeId, RefStore>,
    replication: usize,
    rng: SimRng,
}

impl Dolr {
    /// Starts building a DHT.
    pub fn builder() -> DolrBuilder {
        DolrBuilder::default()
    }

    /// The current ring view.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The current router (finger tables).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// A uniformly random live node.
    pub fn random_node(&mut self) -> NodeId {
        let members: Vec<NodeId> = self.ring.iter().collect();
        *self.rng.choose(&members).expect("ring is never empty")
    }

    /// The live node responsible for `obj` — `S(L(σ))`.
    pub fn locate(&self, obj: ObjectId) -> NodeId {
        self.ring
            .surrogate(obj.placement())
            .expect("ring is never empty")
    }

    /// `Insert(L(σ), σ, owner)`: publish a reference for a copy of `obj`
    /// held at `owner`, routing from `publisher`.
    ///
    /// # Panics
    ///
    /// Panics if `publisher` is not a live node.
    pub fn insert(&mut self, publisher: NodeId, obj: ObjectId, owner: NodeId) -> Receipt {
        let hops = self.router.hops(publisher, obj.placement());
        let target = self.locate(obj);
        let new_ref = ObjectRef { object: obj, owner };
        self.store_mut(target)
            .entry(obj)
            .or_default()
            .insert(new_ref);
        let replicas = self.ring.successor_list(target, self.replication);
        for &rep in &replicas {
            self.store_mut(rep).entry(obj).or_default().insert(new_ref);
        }
        Receipt {
            target,
            hops,
            replicas,
        }
    }

    /// `Delete(L(σ), σ, owner)`: withdraw the reference for the copy at
    /// `owner`, routing from `publisher`.
    ///
    /// # Panics
    ///
    /// Panics if `publisher` is not a live node.
    pub fn delete(&mut self, publisher: NodeId, obj: ObjectId, owner: NodeId) -> Receipt {
        let hops = self.router.hops(publisher, obj.placement());
        let target = self.locate(obj);
        let doomed = ObjectRef { object: obj, owner };
        Self::remove_ref(self.store_mut(target), &doomed);
        let replicas = self.ring.successor_list(target, self.replication);
        for &rep in &replicas {
            Self::remove_ref(self.store_mut(rep), &doomed);
        }
        Receipt {
            target,
            hops,
            replicas,
        }
    }

    /// `Read(σ)`: fetch the references for `obj`, routing from `reader`.
    ///
    /// Falls back to successor replicas (one extra hop each) when the
    /// primary has no data — e.g. after a crash, before re-replication.
    /// Returns `None` if no live node knows the object.
    ///
    /// # Panics
    ///
    /// Panics if `reader` is not a live node.
    pub fn read(&self, reader: NodeId, obj: ObjectId) -> Option<ReadResult> {
        let route_hops = self.router.hops(reader, obj.placement());
        let primary = self.locate(obj);
        let mut candidates = vec![primary];
        candidates.extend(self.ring.successor_list(primary, self.replication));
        // Walking the successor list costs one extra hop per candidate.
        for (extra, node) in candidates.into_iter().enumerate() {
            if let Some(refs) = self.stores[&node].get(&obj) {
                if !refs.is_empty() {
                    return Some(ReadResult {
                        refs: refs.iter().copied().collect(),
                        hops: route_hops + extra,
                        served_by: node,
                    });
                }
            }
        }
        None
    }

    /// A node joins the ring: it takes over the key range between its
    /// predecessor and itself, receiving the matching references from
    /// its successor, and all finger tables re-stabilize.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already a member.
    pub fn join(&mut self, id: NodeId) {
        assert!(self.ring.join(id), "node {id} already in the ring");
        self.stores.insert(id, RefStore::new());
        // Handover: references whose placement now lands on the new node
        // move from its successor.
        let succ = self.ring.successor(id).expect("ring non-empty");
        if succ != id {
            let moving: Vec<ObjectId> = self.stores[&succ]
                .keys()
                .filter(|o| self.ring.surrogate(o.placement()) == Some(id))
                .copied()
                .collect();
            for obj in moving {
                if let Some(refs) = self.stores.get_mut(&succ).and_then(|s| s.remove(&obj)) {
                    self.store_mut(id).insert(obj, refs);
                }
            }
        }
        self.router.rebuild(&self.ring);
        self.re_replicate();
    }

    /// A node leaves gracefully: its references transfer to its
    /// successor before departure.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a member or is the last node.
    pub fn leave(&mut self, id: NodeId) {
        assert!(self.ring.len() > 1, "cannot remove the last node");
        let succ = self.ring.successor(id).expect("member has a successor");
        assert!(self.ring.leave(id), "node {id} not in the ring");
        let departing = self.stores.remove(&id).unwrap_or_default();
        let succ_store = self.store_mut(succ);
        for (obj, refs) in departing {
            succ_store.entry(obj).or_default().extend(refs);
        }
        self.router.rebuild(&self.ring);
        self.re_replicate();
    }

    /// A node crashes: its store is lost. Data survives only on
    /// replicas. Finger tables re-stabilize and surviving replicas
    /// re-replicate to restore the replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a member or is the last node.
    pub fn crash(&mut self, id: NodeId) {
        assert!(self.ring.len() > 1, "cannot crash the last node");
        assert!(self.ring.leave(id), "node {id} not in the ring");
        self.stores.remove(&id);
        self.router.rebuild(&self.ring);
        self.re_replicate();
    }

    /// Total number of stored references across all nodes (replicas
    /// included).
    pub fn total_refs(&self) -> usize {
        self.stores
            .values()
            .flat_map(|s| s.values())
            .map(|refs| refs.len())
            .sum()
    }

    /// Restores the invariant that every object's references live on its
    /// current primary plus `replication` successors.
    fn re_replicate(&mut self) {
        if self.replication == 0 {
            // Still need to move keys onto new primaries after churn;
            // handled by join/leave handover, nothing to do here.
            return;
        }
        // Gather every known (object, refs) pair, then rewrite placement.
        let mut all: HashMap<ObjectId, BTreeSet<ObjectRef>> = HashMap::new();
        for store in self.stores.values() {
            for (obj, refs) in store {
                all.entry(*obj).or_default().extend(refs.iter().copied());
            }
        }
        for store in self.stores.values_mut() {
            store.clear();
        }
        for (obj, refs) in all {
            let primary = self.locate(obj);
            let targets =
                std::iter::once(primary).chain(self.ring.successor_list(primary, self.replication));
            for t in targets {
                self.store_mut(t).insert(obj, refs.clone());
            }
        }
    }

    fn store_mut(&mut self, node: NodeId) -> &mut RefStore {
        self.stores.get_mut(&node).expect("store exists for member")
    }

    fn remove_ref(store: &mut RefStore, doomed: &ObjectRef) {
        if let Some(refs) = store.get_mut(&doomed.object) {
            refs.remove(doomed);
            if refs.is_empty() {
                store.remove(&doomed.object);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dht(nodes: usize, replication: usize) -> Dolr {
        Dolr::builder()
            .nodes(nodes)
            .seed(42)
            .replication(replication)
            .build()
    }

    #[test]
    fn insert_then_read_roundtrip() {
        let mut d = dht(32, 0);
        let obj = ObjectId::from_name("song.mp3");
        let publisher = d.random_node();
        let receipt = d.insert(publisher, obj, publisher);
        assert_eq!(receipt.target, d.locate(obj));
        let read = d.read(publisher, obj).expect("present");
        assert_eq!(
            read.refs,
            vec![ObjectRef {
                object: obj,
                owner: publisher
            }]
        );
        assert_eq!(read.served_by, receipt.target);
    }

    #[test]
    fn read_missing_is_none() {
        let mut d = dht(8, 0);
        let reader = d.random_node();
        assert!(d.read(reader, ObjectId::from_name("ghost")).is_none());
    }

    #[test]
    fn multiple_copies_accumulate_refs() {
        let mut d = dht(16, 0);
        let obj = ObjectId::from_name("popular");
        let a = d.random_node();
        let b = d.random_node();
        d.insert(a, obj, a);
        d.insert(b, obj, b);
        let read = d.read(a, obj).unwrap();
        let owners: Vec<NodeId> = read.refs.iter().map(|r| r.owner).collect();
        assert!(owners.contains(&a));
        if a != b {
            assert!(owners.contains(&b));
            assert_eq!(read.refs.len(), 2);
        }
    }

    #[test]
    fn delete_removes_only_that_owner() {
        let mut d = dht(16, 0);
        let obj = ObjectId::from_name("shared");
        let nodes: Vec<NodeId> = d.ring().iter().take(2).collect();
        let (a, b) = (nodes[0], nodes[1]);
        d.insert(a, obj, a);
        d.insert(b, obj, b);
        d.delete(a, obj, a);
        let read = d.read(b, obj).expect("b's copy remains");
        assert_eq!(
            read.refs,
            vec![ObjectRef {
                object: obj,
                owner: b
            }]
        );
        d.delete(b, obj, b);
        assert!(d.read(b, obj).is_none(), "last copy gone");
    }

    #[test]
    fn hops_logarithmic_in_network_size() {
        let mut d = dht(512, 0);
        let publisher = d.random_node();
        let mut max_hops = 0;
        for i in 0..100 {
            let obj = ObjectId::from_name(&format!("o{i}"));
            max_hops = max_hops.max(d.insert(publisher, obj, publisher).hops);
        }
        assert!(max_hops <= 18, "max {max_hops} hops in 512-node ring");
    }

    #[test]
    fn join_takes_over_range() {
        let mut d = dht(16, 0);
        let publisher = d.random_node();
        let objs: Vec<ObjectId> = (0..200)
            .map(|i| ObjectId::from_name(&format!("obj-{i}")))
            .collect();
        for &o in &objs {
            d.insert(publisher, o, publisher);
        }
        // Join a node and verify every object still readable at its
        // (possibly new) primary.
        d.join(NodeId::from_raw(0x8000_0000_0000_0000));
        for &o in &objs {
            let r = d.read(d.locate(o), o).expect("survives join");
            assert_eq!(r.served_by, d.locate(o), "served by current primary");
        }
    }

    #[test]
    fn graceful_leave_preserves_data() {
        let mut d = dht(16, 0);
        let publisher = d.random_node();
        let objs: Vec<ObjectId> = (0..100)
            .map(|i| ObjectId::from_name(&format!("keep-{i}")))
            .collect();
        for &o in &objs {
            d.insert(publisher, o, publisher);
        }
        let victim = d.ring().iter().nth(5).unwrap();
        d.leave(victim);
        let reader = d.random_node();
        for &o in &objs {
            assert!(d.read(reader, o).is_some(), "object {o} lost on leave");
        }
    }

    #[test]
    fn crash_without_replication_loses_data() {
        let mut d = dht(8, 0);
        let obj = ObjectId::from_name("fragile");
        let publisher = d.ring().iter().next().unwrap();
        d.insert(publisher, obj, publisher);
        let primary = d.locate(obj);
        let reader = d.ring().iter().find(|&n| n != primary).unwrap();
        d.crash(primary);
        assert!(d.read(reader, obj).is_none(), "unreplicated data dies");
    }

    #[test]
    fn crash_with_replication_preserves_data() {
        let mut d = dht(8, 2);
        let obj = ObjectId::from_name("durable");
        let publisher = d.ring().iter().next().unwrap();
        d.insert(publisher, obj, publisher);
        let primary = d.locate(obj);
        let reader = d.ring().iter().find(|&n| n != primary).unwrap();
        d.crash(primary);
        let read = d.read(reader, obj).expect("replica serves");
        assert_eq!(read.refs[0].owner, publisher);
    }

    #[test]
    fn replication_survives_repeated_crashes() {
        let mut d = dht(16, 3);
        let obj = ObjectId::from_name("very-durable");
        let publisher = d.ring().iter().next().unwrap();
        d.insert(publisher, obj, publisher);
        for _ in 0..5 {
            let primary = d.locate(obj);
            if d.ring().len() <= 2 {
                break;
            }
            d.crash(primary);
            let reader = d.random_node();
            assert!(d.read(reader, obj).is_some(), "lost after crash");
        }
    }

    #[test]
    fn replicas_are_successors_of_target() {
        let mut d = dht(16, 2);
        let obj = ObjectId::from_name("replicated");
        let publisher = d.random_node();
        let receipt = d.insert(publisher, obj, publisher);
        assert_eq!(receipt.replicas, d.ring().successor_list(receipt.target, 2));
    }

    #[test]
    fn placement_is_stable() {
        let obj = ObjectId::from_name("pin");
        assert_eq!(obj.placement(), obj.placement());
        assert_eq!(ObjectId::from_name("pin"), obj);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        Dolr::builder().nodes(0).build();
    }

    #[test]
    fn total_refs_counts_replicas() {
        let mut d = dht(16, 2);
        let publisher = d.random_node();
        d.insert(publisher, ObjectId::from_name("x"), publisher);
        assert_eq!(d.total_refs(), 3, "primary + 2 replicas");
    }
}

#[cfg(test)]
mod id_bits_tests {
    use super::*;

    #[test]
    fn narrow_id_space_still_works() {
        // a = 16: 65,536 ids for 32 nodes — the §2.1 "much larger" regime
        // in miniature. Every operation must behave identically.
        let mut d = Dolr::builder().nodes(32).seed(9).id_bits(16).build();
        for n in d.ring().iter() {
            assert!(n.raw() < (1 << 16), "id within the a-bit space");
        }
        let obj = ObjectId::from_name("narrow");
        let publisher = d.random_node();
        d.insert(publisher, obj, publisher);
        assert!(d.read(publisher, obj).is_some());
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_bit_space_panics() {
        Dolr::builder().id_bits(0).build();
    }

    #[test]
    fn tiny_space_saturates_with_distinct_ids() {
        // 2^4 = 16 ids, 16 nodes: the ring must fill completely.
        let d = Dolr::builder().nodes(16).seed(1).id_bits(4).build();
        assert_eq!(d.ring().len(), 16);
    }
}
