//! Message-level DHT simulation over `hyperdex-simnet`.
//!
//! [`Dolr`](crate::dolr::Dolr) computes routing analytically; [`SimDht`]
//! actually exchanges messages through a simulated network, so lookups
//! experience latency, message loss, and node failures. Integration
//! tests and the churn experiments use this mode; the figure sweeps use
//! the direct mode (both share ring, finger, and placement logic, so hop
//! counts agree — a property the tests assert).

use std::collections::{BTreeSet, HashMap};

use hyperdex_simnet::latency::LatencyModel;
use hyperdex_simnet::net::{EndpointId, Network};
use hyperdex_simnet::time::SimTime;

use crate::dolr::{ObjectId, ObjectRef};
use crate::id::NodeId;
use crate::ring::Ring;
use crate::routing::Router;

/// Messages exchanged by the simulated DHT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhtMsg {
    /// Forwarded hop-by-hop towards the owner of `key`.
    Lookup {
        /// The ring key being resolved.
        key: NodeId,
        /// Endpoint that initiated the lookup (receives the reply).
        origin: EndpointId,
        /// Overlay hops taken so far.
        hops: u32,
    },
    /// Sent directly from the owner back to the origin.
    LookupReply {
        /// The ring key that was resolved.
        key: NodeId,
        /// The owning node.
        owner: NodeId,
        /// Overlay hops the request took.
        hops: u32,
    },
    /// Direct request to store a reference at the receiving node.
    Store {
        /// The reference to store.
        obj_ref: ObjectRef,
    },
    /// Direct request to remove a reference at the receiving node.
    Erase {
        /// The reference to remove.
        obj_ref: ObjectRef,
    },
    /// Direct request for the references of an object.
    Fetch {
        /// The object being read.
        object: ObjectId,
        /// Endpoint to send the [`DhtMsg::FetchReply`] to.
        origin: EndpointId,
    },
    /// Reply carrying the references of an object.
    FetchReply {
        /// The object that was read.
        object: ObjectId,
        /// Its references at the answering node.
        refs: Vec<ObjectRef>,
    },
}

/// Outcome of a simulated lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The node that owns the key.
    pub owner: NodeId,
    /// Overlay hops the request took (replies travel directly).
    pub hops: u32,
    /// Virtual time at which the reply arrived.
    pub completed_at: SimTime,
}

/// A DHT whose lookups run as real message exchanges over a simulated
/// network.
///
/// # Example
///
/// ```
/// use hyperdex_dht::sim::SimDht;
/// use hyperdex_simnet::latency::LatencyModel;
///
/// let mut dht = SimDht::new(64, LatencyModel::constant(1), 7);
/// let from = dht.nodes()[0];
/// let key = hyperdex_dht::NodeId::from_raw(u64::MAX / 3);
/// let outcome = dht.lookup(from, key).expect("healthy network");
/// assert!(outcome.hops <= 16);
/// ```
#[derive(Debug)]
pub struct SimDht {
    net: Network<DhtMsg>,
    ring: Ring,
    router: Router,
    node_to_ep: HashMap<NodeId, EndpointId>,
    ep_to_node: HashMap<EndpointId, NodeId>,
    stores: HashMap<NodeId, HashMap<ObjectId, BTreeSet<ObjectRef>>>,
}

impl SimDht {
    /// Creates a simulated DHT of `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize, latency: LatencyModel, seed: u64) -> Self {
        assert!(nodes > 0, "a DHT needs at least one node");
        let mut net = Network::new(latency, seed);
        let mut rng = hyperdex_simnet::rng::SimRng::new(seed ^ 0x5EED);
        let mut ring = Ring::new();
        while ring.len() < nodes {
            ring.join(NodeId::from_raw(rng.next_u64()));
        }
        let mut node_to_ep = HashMap::new();
        let mut ep_to_node = HashMap::new();
        let mut stores = HashMap::new();
        for node in ring.iter() {
            let ep = net.add_endpoint();
            node_to_ep.insert(node, ep);
            ep_to_node.insert(ep, node);
            stores.insert(node, HashMap::new());
        }
        let router = Router::build(&ring);
        SimDht {
            net,
            ring,
            router,
            node_to_ep,
            ep_to_node,
            stores,
        }
    }

    /// The live nodes, ascending.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.ring.iter().collect()
    }

    /// The ring view.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The underlying network (for metrics and fault injection).
    pub fn network_mut(&mut self) -> &mut Network<DhtMsg> {
        &mut self.net
    }

    /// Read access to the underlying network.
    pub fn network(&self) -> &Network<DhtMsg> {
        &self.net
    }

    /// Marks a node as crashed in the fault plan (messages to it drop)
    /// and removes it from the ring/routing views of *other* nodes after
    /// stabilization.
    pub fn crash(&mut self, node: NodeId) {
        let ep = self.node_to_ep[&node];
        self.net.faults_mut().kill(ep);
    }

    /// Adds a node to the overlay with a message-level handoff: the new
    /// node's successor streams every reference whose placement now
    /// falls in the joiner's range via [`DhtMsg::Store`] messages, then
    /// forgets them. One membership change touches one existing node —
    /// the paper's one-node insert property at the DHT layer.
    ///
    /// Returns `false` (and changes nothing) if `node` is already a
    /// member.
    pub fn join(&mut self, node: NodeId) -> bool {
        if self.ring.contains(node) {
            return false;
        }
        let ep = self.net.add_endpoint();
        self.node_to_ep.insert(node, ep);
        self.ep_to_node.insert(ep, node);
        self.stores.insert(node, HashMap::new());
        self.ring.join(node);
        self.router.rebuild(&self.ring);

        // The successor owned the joiner's range until now; migrate the
        // affected references over the network.
        if let Some(succ) = self.ring.successor(node) {
            if succ != node {
                let succ_ep = self.node_to_ep[&succ];
                let moving: Vec<ObjectRef> = self.stores[&succ]
                    .iter()
                    .filter(|(obj, _)| self.ring.owns(node, obj.placement()))
                    .flat_map(|(_, refs)| refs.iter().copied())
                    .collect();
                for obj_ref in moving {
                    self.net.send(succ_ep, ep, DhtMsg::Store { obj_ref });
                    if let Some(store) = self.stores.get_mut(&succ) {
                        if let Some(refs) = store.get_mut(&obj_ref.object) {
                            refs.remove(&obj_ref);
                            if refs.is_empty() {
                                store.remove(&obj_ref.object);
                            }
                        }
                    }
                }
                self.drain();
            }
        }
        true
    }

    /// Gracefully removes a node: while still a member it computes the
    /// inheritor of each stored reference ([`Ring::surrogate_excluding`])
    /// and streams the references there via [`DhtMsg::Store`], then
    /// departs and is marked dead in the fault plan.
    ///
    /// Returns `false` (and changes nothing) if `node` is not a member
    /// or is the last node — an empty overlay would strand every key.
    pub fn leave(&mut self, node: NodeId) -> bool {
        if !self.ring.contains(node) || self.ring.len() <= 1 {
            return false;
        }
        let ep = self.node_to_ep[&node];
        let outgoing: Vec<(NodeId, ObjectRef)> = self.stores[&node]
            .iter()
            .flat_map(|(obj, refs)| {
                let target = self
                    .ring
                    .surrogate_excluding(obj.placement(), node)
                    .expect("ring has another member");
                refs.iter().map(move |&r| (target, r))
            })
            .collect();
        for (target, obj_ref) in outgoing {
            let target_ep = self.node_to_ep[&target];
            self.net.send(ep, target_ep, DhtMsg::Store { obj_ref });
        }
        self.drain();
        self.ring.leave(node);
        self.stores.remove(&node);
        self.net.faults_mut().kill(ep);
        self.router.rebuild(&self.ring);
        true
    }

    /// Re-runs stabilization: drops crashed nodes from the ring and
    /// rebuilds finger tables.
    pub fn stabilize(&mut self) {
        let dead: Vec<NodeId> = self
            .ring
            .iter()
            .filter(|n| {
                let ep = self.node_to_ep[n];
                !self.net.is_up(ep)
            })
            .collect();
        for d in dead {
            self.ring.leave(d);
            self.stores.remove(&d);
        }
        self.router.rebuild(&self.ring);
    }

    /// Resolves `key` from `from` by hop-by-hop message forwarding.
    ///
    /// Returns `None` when the lookup dies in the network (message loss
    /// or a crash mid-flight) — the simulated analogue of a timeout.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a live member.
    pub fn lookup(&mut self, from: NodeId, key: NodeId) -> Option<LookupOutcome> {
        let origin_ep = self.node_to_ep[&from];
        // Local short-circuit: the initiator may already own the key.
        if self.ring.surrogate(key) == Some(from) {
            return Some(LookupOutcome {
                owner: from,
                hops: 0,
                completed_at: self.net.now(),
            });
        }
        let first_hop = self.next_hop(from, key)?;
        self.net.send(
            origin_ep,
            self.node_to_ep[&first_hop],
            DhtMsg::Lookup {
                key,
                origin: origin_ep,
                hops: 1,
            },
        );
        let (owner_and_hops, at) = self.drive_until_reply(origin_ep, |msg| match msg {
            DhtMsg::LookupReply {
                key: k,
                owner,
                hops,
            } if *k == key => Some((*owner, *hops)),
            _ => None,
        })?;
        Some(LookupOutcome {
            owner: owner_and_hops.0,
            hops: owner_and_hops.1,
            completed_at: at,
        })
    }

    /// Publishes a reference: lookup + one `Store` message.
    ///
    /// Returns the storing node, or `None` on network failure.
    pub fn insert(&mut self, publisher: NodeId, obj: ObjectId, owner: NodeId) -> Option<NodeId> {
        let outcome = self.lookup(publisher, obj.placement())?;
        let target = outcome.owner;
        let publisher_ep = self.node_to_ep[&publisher];
        let target_ep = self.node_to_ep[&target];
        let obj_ref = ObjectRef { object: obj, owner };
        if target == publisher {
            self.apply_store(target, obj_ref);
        } else {
            self.net
                .send(publisher_ep, target_ep, DhtMsg::Store { obj_ref });
            self.drain(); // applies the store on delivery
        }
        // The store may have been dropped by a lossy link.
        let stored = self.stores[&target]
            .get(&obj)
            .is_some_and(|refs| refs.contains(&obj_ref));
        stored.then_some(target)
    }

    /// Reads the references of `obj`: lookup + `Fetch`/`FetchReply`.
    ///
    /// Returns `None` on network failure or unknown object.
    pub fn read(&mut self, reader: NodeId, obj: ObjectId) -> Option<Vec<ObjectRef>> {
        let outcome = self.lookup(reader, obj.placement())?;
        let target = outcome.owner;
        if target == reader {
            return self.stores[&target]
                .get(&obj)
                .map(|r| r.iter().copied().collect());
        }
        let reader_ep = self.node_to_ep[&reader];
        let target_ep = self.node_to_ep[&target];
        self.net.send(
            reader_ep,
            target_ep,
            DhtMsg::Fetch {
                object: obj,
                origin: reader_ep,
            },
        );
        let (refs, _) = self.drive_until_reply(reader_ep, |msg| match msg {
            DhtMsg::FetchReply { object, refs } if *object == obj => Some(refs.clone()),
            _ => None,
        })?;
        (!refs.is_empty()).then_some(refs)
    }

    /// Delivers messages until a reply matching `extract` arrives at
    /// `origin`, handling protocol forwarding along the way. Returns the
    /// extracted value plus its delivery instant.
    fn drive_until_reply<T>(
        &mut self,
        origin: EndpointId,
        extract: impl Fn(&DhtMsg) -> Option<T>,
    ) -> Option<(T, SimTime)> {
        while let Some(delivery) = self.net.step() {
            if delivery.to == origin {
                if let Some(value) = extract(&delivery.payload) {
                    return Some((value, delivery.at));
                }
            }
            let at = delivery.at;
            let to = delivery.to;
            let payload = delivery.payload;
            self.handle(at, to, payload);
        }
        None
    }

    fn handle(&mut self, _at: SimTime, to_ep: EndpointId, msg: DhtMsg) {
        let node = self.ep_to_node[&to_ep];
        match msg {
            DhtMsg::Lookup { key, origin, hops } => {
                if self.ring.surrogate(key) == Some(node) {
                    self.net.send(
                        to_ep,
                        origin,
                        DhtMsg::LookupReply {
                            key,
                            owner: node,
                            hops,
                        },
                    );
                } else if let Some(next) = self.next_hop(node, key) {
                    self.net.send(
                        to_ep,
                        self.node_to_ep[&next],
                        DhtMsg::Lookup {
                            key,
                            origin,
                            hops: hops + 1,
                        },
                    );
                }
                // else: no live next hop; the lookup dies (timeout).
            }
            DhtMsg::Store { obj_ref } => self.apply_store(node, obj_ref),
            DhtMsg::Erase { obj_ref } => {
                if let Some(refs) = self
                    .stores
                    .get_mut(&node)
                    .and_then(|s| s.get_mut(&obj_ref.object))
                {
                    refs.remove(&obj_ref);
                }
            }
            DhtMsg::Fetch { object, origin } => {
                let refs = self.stores[&node]
                    .get(&object)
                    .map(|r| r.iter().copied().collect())
                    .unwrap_or_default();
                self.net
                    .send(to_ep, origin, DhtMsg::FetchReply { object, refs });
            }
            DhtMsg::LookupReply { .. } | DhtMsg::FetchReply { .. } => {
                // Replies to an origin that is no longer waiting: drop.
            }
        }
    }

    fn apply_store(&mut self, node: NodeId, obj_ref: ObjectRef) {
        self.stores
            .get_mut(&node)
            .expect("live node has a store")
            .entry(obj_ref.object)
            .or_default()
            .insert(obj_ref);
    }

    /// The best live next hop from `node` towards `key`: finger
    /// candidates by progress, then live ring successors.
    fn next_hop(&self, node: NodeId, key: NodeId) -> Option<NodeId> {
        let now = self.net.now();
        let alive = |n: &NodeId| {
            let ep = self.node_to_ep[n];
            self.net.faults().is_up(ep, now)
        };
        if let Some(table) = self.router.table(node) {
            if let Some(next) = table.candidates(key).into_iter().find(|n| alive(n)) {
                return Some(next);
            }
        }
        // Fall back to walking successors until a live one is found.
        let mut cur = node;
        for _ in 0..self.ring.len() {
            cur = self.ring.successor(cur)?;
            if cur == node {
                return None;
            }
            if alive(&cur) {
                return Some(cur);
            }
        }
        None
    }

    /// Delivers all in-flight messages (used after fire-and-forget ops).
    fn drain(&mut self) {
        while let Some(d) = self.net.step() {
            let (at, to, payload) = (d.at, d.to, d.payload);
            self.handle(at, to, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_matches_direct_router() {
        let mut sim = SimDht::new(64, LatencyModel::constant(1), 11);
        let nodes = sim.nodes();
        let direct = Router::build(sim.ring());
        for i in 0..50u64 {
            let from = nodes[(i as usize * 7) % nodes.len()];
            let key = NodeId::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let outcome = sim.lookup(from, key).expect("healthy network");
            let expect_owner = sim.ring().surrogate(key).unwrap();
            assert_eq!(outcome.owner, expect_owner);
            assert_eq!(outcome.hops as usize, direct.hops(from, key), "hop parity");
        }
    }

    #[test]
    fn insert_then_read_over_messages() {
        let mut sim = SimDht::new(32, LatencyModel::constant(2), 5);
        let nodes = sim.nodes();
        let obj = ObjectId::from_name("sim-object");
        let target = sim.insert(nodes[0], obj, nodes[0]).expect("stored");
        assert_eq!(target, sim.ring().surrogate(obj.placement()).unwrap());
        let refs = sim.read(nodes[1], obj).expect("readable");
        assert_eq!(
            refs,
            vec![ObjectRef {
                object: obj,
                owner: nodes[0]
            }]
        );
    }

    #[test]
    fn read_unknown_object_is_none() {
        let mut sim = SimDht::new(16, LatencyModel::constant(1), 3);
        let nodes = sim.nodes();
        assert!(sim.read(nodes[0], ObjectId::from_name("nothing")).is_none());
    }

    #[test]
    fn lookup_survives_crashed_finger() {
        let mut sim = SimDht::new(64, LatencyModel::constant(1), 13);
        let nodes = sim.nodes();
        let from = nodes[0];
        let key = NodeId::from_raw(u64::MAX / 5);
        // Crash the best first hop, forcing failover.
        let direct = Router::build(sim.ring());
        let best_path = direct.path(from, key);
        if best_path.len() > 2 {
            let crashed = best_path[1];
            sim.crash(crashed);
            let outcome = sim.lookup(from, key);
            // Routing may detour, but must not silently hang forever;
            // after stabilization it must succeed.
            sim.stabilize();
            let outcome2 = sim.lookup(from, key).expect("post-stabilize lookup");
            assert_eq!(
                Some(outcome2.owner),
                sim.ring().surrogate(key),
                "stabilized lookup lands on the new owner"
            );
            // Pre-stabilization lookup either succeeded via detour or
            // timed out; both are acceptable behaviours.
            let _ = outcome;
        }
    }

    #[test]
    fn graceful_leave_hands_off_references() {
        let mut sim = SimDht::new(16, LatencyModel::constant(1), 23);
        let nodes = sim.nodes();
        // Publish a handful of objects, then remove every original owner
        // one at a time; each object must remain readable throughout.
        let objects: Vec<ObjectId> = (0..8)
            .map(|i| ObjectId::from_name(&format!("churn-obj-{i}")))
            .collect();
        for &obj in &objects {
            sim.insert(nodes[0], obj, nodes[0]).expect("stored");
        }
        for i in 0..8 {
            let owner = sim.ring().surrogate(objects[i].placement()).unwrap();
            assert!(sim.leave(owner), "leave a live owner");
            let reader = sim.nodes()[0];
            for &obj in &objects {
                let refs = sim.read(reader, obj).expect("survives handoff");
                assert_eq!(refs[0].object, obj);
            }
        }
    }

    #[test]
    fn join_migrates_range_from_successor() {
        let mut sim = SimDht::new(8, LatencyModel::constant(1), 29);
        let nodes = sim.nodes();
        let obj = ObjectId::from_name("takeover-object");
        sim.insert(nodes[0], obj, nodes[0]).expect("stored");
        let old_owner = sim.ring().surrogate(obj.placement()).unwrap();
        // A joiner whose id equals the placement key becomes the new
        // owner (surrogate is inclusive).
        let joiner = obj.placement();
        assert!(sim.join(joiner));
        assert_ne!(joiner, old_owner, "placement key not already a node");
        assert_eq!(sim.ring().surrogate(obj.placement()), Some(joiner));
        let refs = sim.read(nodes[0], obj).expect("readable after join");
        assert_eq!(refs[0].object, obj);
        // The old owner no longer answers for the moved key.
        assert!(!sim.ring().owns(old_owner, obj.placement()));
    }

    #[test]
    fn join_and_leave_edge_cases() {
        let mut sim = SimDht::new(2, LatencyModel::constant(1), 31);
        let nodes = sim.nodes();
        assert!(!sim.join(nodes[0]), "joining a member is a no-op");
        assert!(sim.leave(nodes[0]));
        assert!(!sim.leave(nodes[0]), "double leave is a no-op");
        assert!(!sim.leave(nodes[1]), "last node cannot leave");
        assert!(!sim.leave(NodeId::from_raw(0xDEAD)), "non-member");
    }

    #[test]
    fn message_counts_accumulate() {
        let mut sim = SimDht::new(32, LatencyModel::constant(1), 17);
        let nodes = sim.nodes();
        // A key just past nodes[0] is owned by a different node, so the
        // lookup must leave the initiator.
        let key = NodeId::from_raw(nodes[0].raw().wrapping_add(1));
        let outcome = sim.lookup(nodes[0], key).unwrap();
        assert_ne!(outcome.owner, nodes[0]);
        assert!(sim.network().metrics().messages_sent.get() >= 1);
    }

    #[test]
    fn latency_accrues_on_path() {
        let mut sim = SimDht::new(64, LatencyModel::constant(10), 19);
        let nodes = sim.nodes();
        let key = NodeId::from_raw(u64::MAX / 3);
        let outcome = sim.lookup(nodes[0], key).expect("ok");
        if outcome.hops > 0 {
            // Request hops + 1 direct reply, each 10 ticks, measured
            // from network epoch (fresh network ⇒ equality).
            assert_eq!(outcome.completed_at.ticks(), (outcome.hops as u64 + 1) * 10);
        }
    }
}
