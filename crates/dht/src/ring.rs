//! The identifier ring and surrogate routing.
//!
//! §2.1: *"if a node v is absent, then the scheme will find an existing
//! node S(v) in V to play the role of v so that every message to v will
//! be automatically routed to S(v)."* Here `S(v)` is the ring successor —
//! the first live node clockwise from `v` — the standard Chord choice.

use std::collections::BTreeSet;

use crate::id::NodeId;

/// The membership view of the identifier ring: the sorted set of live
/// node ids with successor/predecessor/surrogate queries.
///
/// # Example
///
/// ```
/// use hyperdex_dht::{NodeId, Ring};
///
/// let mut ring = Ring::new();
/// ring.join(NodeId::from_raw(10));
/// ring.join(NodeId::from_raw(200));
/// // Key 50 is served by its clockwise successor, node 200.
/// assert_eq!(ring.surrogate(NodeId::from_raw(50)), Some(NodeId::from_raw(200)));
/// // Wrap-around: key 201 is served by node 10.
/// assert_eq!(ring.surrogate(NodeId::from_raw(201)), Some(NodeId::from_raw(10)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ring {
    members: BTreeSet<NodeId>,
}

impl Ring {
    /// Creates an empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ring from an iterator of ids (duplicates collapse).
    pub fn from_members<I: IntoIterator<Item = NodeId>>(members: I) -> Self {
        Ring {
            members: members.into_iter().collect(),
        }
    }

    /// Adds a node. Returns `false` if it was already present.
    pub fn join(&mut self, id: NodeId) -> bool {
        self.members.insert(id)
    }

    /// Removes a node. Returns `false` if it was not present.
    pub fn leave(&mut self, id: NodeId) -> bool {
        self.members.remove(&id)
    }

    /// Whether `id` is a live member.
    pub fn contains(&self, id: NodeId) -> bool {
        self.members.contains(&id)
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates over members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// The surrogate `S(key)`: the first live node clockwise from `key`
    /// (inclusive), or `None` on an empty ring.
    ///
    /// When `key` itself is a live node, the surrogate is `key`.
    pub fn surrogate(&self, key: NodeId) -> Option<NodeId> {
        self.members
            .range(key..)
            .next()
            .or_else(|| self.members.iter().next())
            .copied()
    }

    /// The surrogate of `key` in the ring *without* `excluded`: the node
    /// that would own `key` if `excluded` were absent.
    ///
    /// This is the handoff target computation — a gracefully departing
    /// node must know, while still a member, which peer inherits each of
    /// its keys. Equivalent to (but cheaper than) cloning the ring,
    /// removing `excluded`, and calling [`Ring::surrogate`]. Returns
    /// `None` if no other node exists.
    pub fn surrogate_excluding(&self, key: NodeId, excluded: NodeId) -> Option<NodeId> {
        self.members
            .range(key..)
            .chain(self.members.iter())
            .find(|&&n| n != excluded)
            .copied()
    }

    /// The successor of a *member*: the next live node strictly
    /// clockwise, wrapping around. Returns `id` itself in a 1-node ring,
    /// or `None` if `id` is not a member or the ring is empty.
    pub fn successor(&self, id: NodeId) -> Option<NodeId> {
        if !self.members.contains(&id) {
            return None;
        }
        self.members
            .range((std::ops::Bound::Excluded(id), std::ops::Bound::Unbounded))
            .next()
            .or_else(|| self.members.iter().next())
            .copied()
    }

    /// The first `k` distinct successors of `id` (the successor list used
    /// for replication). Shorter than `k` on small rings. Returns an
    /// empty list if `id` is not a member.
    pub fn successor_list(&self, id: NodeId, k: usize) -> Vec<NodeId> {
        let mut list = Vec::with_capacity(k);
        let mut cur = id;
        for _ in 0..k {
            match self.successor(cur) {
                Some(next) if next != id => {
                    list.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
        list
    }

    /// The predecessor of a member: the previous live node counter-
    /// clockwise, wrapping. `None` if `id` is not a member.
    pub fn predecessor(&self, id: NodeId) -> Option<NodeId> {
        if !self.members.contains(&id) {
            return None;
        }
        self.members
            .range(..id)
            .next_back()
            .or_else(|| self.members.iter().next_back())
            .copied()
    }

    /// Whether `owner` is responsible for `key`: `key ∈ (pred(owner),
    /// owner]`.
    pub fn owns(&self, owner: NodeId, key: NodeId) -> bool {
        match self.predecessor(owner) {
            None => false,
            Some(pred) if pred == owner => true, // 1-node ring owns all
            Some(pred) => key.in_interval(pred, owner),
        }
    }
}

impl FromIterator<NodeId> for Ring {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Ring::from_members(iter)
    }
}

impl Extend<NodeId> for Ring {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        self.members.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> NodeId {
        NodeId::from_raw(n)
    }

    fn ring(ids: &[u64]) -> Ring {
        ids.iter().copied().map(id).collect()
    }

    #[test]
    fn join_and_leave() {
        let mut r = Ring::new();
        assert!(r.join(id(5)));
        assert!(!r.join(id(5)), "duplicate join");
        assert!(r.contains(id(5)));
        assert!(r.leave(id(5)));
        assert!(!r.leave(id(5)), "double leave");
        assert!(r.is_empty());
    }

    #[test]
    fn surrogate_is_clockwise_successor() {
        let r = ring(&[10, 100, 200]);
        assert_eq!(
            r.surrogate(id(10)),
            Some(id(10)),
            "live node is its own surrogate"
        );
        assert_eq!(r.surrogate(id(11)), Some(id(100)));
        assert_eq!(r.surrogate(id(150)), Some(id(200)));
        assert_eq!(r.surrogate(id(201)), Some(id(10)), "wraps");
        assert_eq!(r.surrogate(id(u64::MAX)), Some(id(10)));
    }

    #[test]
    fn surrogate_empty_ring() {
        assert_eq!(Ring::new().surrogate(id(1)), None);
    }

    #[test]
    fn successor_strictly_clockwise() {
        let r = ring(&[10, 100, 200]);
        assert_eq!(r.successor(id(10)), Some(id(100)));
        assert_eq!(r.successor(id(200)), Some(id(10)), "wraps");
        assert_eq!(r.successor(id(50)), None, "non-member");
    }

    #[test]
    fn successor_single_node() {
        let r = ring(&[7]);
        assert_eq!(r.successor(id(7)), Some(id(7)));
    }

    #[test]
    fn successor_list_distinct() {
        let r = ring(&[1, 2, 3, 4]);
        assert_eq!(r.successor_list(id(1), 2), vec![id(2), id(3)]);
        assert_eq!(
            r.successor_list(id(1), 10),
            vec![id(2), id(3), id(4)],
            "stops before wrapping to self"
        );
        assert!(r.successor_list(id(99), 2).is_empty());
    }

    #[test]
    fn predecessor_wraps() {
        let r = ring(&[10, 100, 200]);
        assert_eq!(r.predecessor(id(100)), Some(id(10)));
        assert_eq!(r.predecessor(id(10)), Some(id(200)));
        assert_eq!(r.predecessor(id(42)), None);
    }

    #[test]
    fn ownership_intervals() {
        let r = ring(&[10, 100, 200]);
        // Node 100 owns (10, 100].
        assert!(r.owns(id(100), id(11)));
        assert!(r.owns(id(100), id(100)));
        assert!(!r.owns(id(100), id(10)));
        assert!(!r.owns(id(100), id(150)));
        // Node 10 owns the wrapping range (200, 10].
        assert!(r.owns(id(10), id(250)));
        assert!(r.owns(id(10), id(5)));
    }

    #[test]
    fn single_node_owns_everything() {
        let r = ring(&[77]);
        assert!(r.owns(id(77), id(0)));
        assert!(r.owns(id(77), id(u64::MAX)));
    }

    #[test]
    fn surrogate_excluding_matches_removed_ring() {
        let r = ring(&[10, 100, 200]);
        for excluded in [10u64, 100, 200] {
            let mut without = r.clone();
            without.leave(id(excluded));
            for key in [0u64, 10, 50, 100, 150, 200, 300, u64::MAX] {
                assert_eq!(
                    r.surrogate_excluding(id(key), id(excluded)),
                    without.surrogate(id(key)),
                    "key {key} excluding {excluded}"
                );
            }
        }
    }

    #[test]
    fn surrogate_excluding_last_node_is_none() {
        let r = ring(&[42]);
        assert_eq!(r.surrogate_excluding(id(0), id(42)), None);
        assert_eq!(r.surrogate_excluding(id(42), id(42)), None);
    }

    #[test]
    fn surrogate_excluding_non_member_is_plain_surrogate() {
        let r = ring(&[10, 100]);
        for key in [0u64, 10, 50, 101] {
            assert_eq!(
                r.surrogate_excluding(id(key), id(7777)),
                r.surrogate(id(key))
            );
        }
    }

    #[test]
    fn every_key_has_exactly_one_owner() {
        let r = ring(&[10, 100, 200, 5000]);
        for key in [0u64, 10, 11, 99, 100, 150, 200, 4999, 5000, 9999, u64::MAX] {
            let owners: Vec<NodeId> = r.iter().filter(|&n| r.owns(n, id(key))).collect();
            assert_eq!(owners.len(), 1, "key {key} owners {owners:?}");
            assert_eq!(owners[0], r.surrogate(id(key)).unwrap());
        }
    }
}
