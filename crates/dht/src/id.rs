//! Ring identifiers.
//!
//! The paper's model assigns every node an `a`-bit identifier; we fix
//! `a = 64`, which is "much larger than the actual number of nodes" as
//! §2.1 requires, making ID collisions negligible and surrogate routing
//! the common case.

use std::fmt;

/// A point on the 64-bit identifier ring.
///
/// Both nodes and keys live in the same space; a key is *owned* by its
/// ring successor (the first live node clockwise from it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates an id from its raw 64-bit value.
    pub const fn from_raw(raw: u64) -> Self {
        NodeId(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Clockwise distance from `self` to `other` (how far to travel
    /// forward around the ring).
    pub const fn clockwise_distance(self, other: NodeId) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// The id `2^k` positions clockwise — the `k`-th finger target.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ 64`.
    pub const fn finger_target(self, k: u8) -> NodeId {
        assert!(k < 64, "finger index out of range");
        NodeId(self.0.wrapping_add(1u64 << k))
    }

    /// Whether `self` lies in the half-open clockwise interval
    /// `(from, to]`.
    ///
    /// This is the Chord ownership test: key `x` belongs to node `n`
    /// iff `x ∈ (predecessor(n), n]`.
    pub fn in_interval(self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            // The interval spans the whole ring.
            true
        } else {
            from.clockwise_distance(self) <= from.clockwise_distance(to) && self != from
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> NodeId {
        NodeId::from_raw(n)
    }

    #[test]
    fn clockwise_distance_wraps() {
        assert_eq!(id(10).clockwise_distance(id(15)), 5);
        assert_eq!(id(15).clockwise_distance(id(10)), u64::MAX - 4);
        assert_eq!(id(7).clockwise_distance(id(7)), 0);
    }

    #[test]
    fn finger_targets_double() {
        let n = id(100);
        assert_eq!(n.finger_target(0), id(101));
        assert_eq!(n.finger_target(3), id(108));
        assert_eq!(n.finger_target(63), id(100u64.wrapping_add(1 << 63)));
    }

    #[test]
    fn finger_target_wraps_ring() {
        let n = id(u64::MAX);
        assert_eq!(n.finger_target(0), id(0));
    }

    #[test]
    fn interval_simple() {
        assert!(id(5).in_interval(id(3), id(8)));
        assert!(id(8).in_interval(id(3), id(8)), "to end inclusive");
        assert!(!id(3).in_interval(id(3), id(8)), "from end exclusive");
        assert!(!id(9).in_interval(id(3), id(8)));
    }

    #[test]
    fn interval_wrapping() {
        // (250, 5] on a ring: 251..=255 wraps to 0..=5.
        assert!(id(255).in_interval(id(250), id(5)));
        assert!(id(0).in_interval(id(250), id(5)));
        assert!(id(5).in_interval(id(250), id(5)));
        assert!(!id(100).in_interval(id(250), id(5)));
    }

    #[test]
    fn interval_full_ring() {
        assert!(id(42).in_interval(id(7), id(7)));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(id(255).to_string(), "00000000000000ff");
    }
}
