//! # hyperdex-dht
//!
//! A Chord-like distributed hash table implementing the *generalized DHT
//! model* of §2.1 of *Keyword Search in DHT-based Peer-to-Peer Networks*
//! (Joung, Fang & Yang, ICDCS 2005):
//!
//! * an `a`-bit identifier ring ([`NodeId`], here `a = 64`),
//! * a deterministic object→node mapping `L` ([`keyhash`]),
//! * **surrogate routing**: absent IDs are served by their ring successor
//!   ([`Ring::surrogate`]),
//! * greedy finger-table routing with `O(log n)` hops ([`Router`]),
//! * the DOLR operations `Insert` / `Delete` / `Read` over per-node
//!   reference stores ([`Dolr`]),
//! * node churn with reference handover and successor-list replication
//!   ([`Ring`], [`Dolr`]),
//! * and a message-level simulation mode over `hyperdex-simnet`
//!   ([`sim::SimDht`]) for experiments that need real message exchange,
//!   latency, and failures.
//!
//! The keyword-search layer (`hyperdex-core`) maps hypercube vertices
//! onto this ring; the paper's scheme works over any DHT satisfying this
//! model.
//!
//! # Example
//!
//! ```
//! use hyperdex_dht::{Dolr, ObjectId, NodeId};
//!
//! // A 64-node ring with replication factor 1 (no replicas).
//! let mut dht = Dolr::builder().nodes(64).seed(7).build();
//! let obj = ObjectId::from_name("the-white-album");
//! let publisher = dht.random_node();
//! let receipt = dht.insert(publisher, obj, publisher);
//! assert!(receipt.hops <= 16, "O(log n) routing");
//! let read = dht.read(publisher, obj).expect("just inserted");
//! assert_eq!(read.refs[0].owner, publisher);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dolr;
pub mod finger;
pub mod id;
pub mod keyhash;
pub mod ring;
pub mod routing;
pub mod sim;

pub use dolr::{Dolr, DolrBuilder, ObjectId, ObjectRef, ReadResult, Receipt};
pub use id::NodeId;
pub use keyhash::{stable_hash64, stable_hash64_seeded};
pub use ring::Ring;
pub use routing::Router;
