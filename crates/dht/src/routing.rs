//! Greedy finger routing.
//!
//! [`Router`] materializes the finger tables of every live node and
//! computes hop-by-hop lookup paths. The DOLR operations route through
//! it, and the experiment harness uses its hop counts wherever the
//! paper's cost model charges "one lookup in the DHT overlay".

use std::collections::HashMap;

use crate::finger::FingerTable;
use crate::id::NodeId;
use crate::ring::Ring;

/// Routing state for a whole ring: one finger table per live node.
///
/// Rebuild after churn with [`Router::rebuild`] — the simulation
/// equivalent of Chord stabilization having converged.
///
/// # Example
///
/// ```
/// use hyperdex_dht::{NodeId, Ring, Router};
///
/// let ring: Ring = (0..32).map(|i| NodeId::from_raw(i << 58)).collect();
/// let router = Router::build(&ring);
/// let from = NodeId::from_raw(0);
/// let path = router.path(from, NodeId::from_raw(u64::MAX / 3));
/// assert!(path.len() <= 6, "O(log n) hops, got {}", path.len());
/// ```
#[derive(Debug, Clone)]
pub struct Router {
    ring: Ring,
    tables: HashMap<NodeId, FingerTable>,
}

impl Router {
    /// Builds routing state for every member of `ring`.
    pub fn build(ring: &Ring) -> Self {
        let tables = ring
            .iter()
            .map(|n| (n, FingerTable::build(n, ring)))
            .collect();
        Router {
            ring: ring.clone(),
            tables,
        }
    }

    /// Rebuilds all tables from a new ring view.
    pub fn rebuild(&mut self, ring: &Ring) {
        *self = Router::build(ring);
    }

    /// The ring view this router was built from.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The finger table of a member node.
    pub fn table(&self, node: NodeId) -> Option<&FingerTable> {
        self.tables.get(&node)
    }

    /// The greedy lookup path from `from` to the surrogate of `key`,
    /// inclusive of both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty or `from` is not a member.
    pub fn path(&self, from: NodeId, key: NodeId) -> Vec<NodeId> {
        let dest = self
            .ring
            .surrogate(key)
            .expect("cannot route on an empty ring");
        assert!(
            self.tables.contains_key(&from),
            "routing from non-member node {from}"
        );
        let mut path = vec![from];
        let mut cur = from;
        while cur != dest {
            let succ = self.ring.successor(cur).expect("members have successors");
            let next = if key.in_interval(cur, succ) {
                // The successor owns the key: final hop.
                succ
            } else {
                self.tables[&cur].closest_preceding(key).unwrap_or(succ)
            };
            cur = next;
            path.push(cur);
            assert!(
                path.len() <= self.ring.len() + 1,
                "routing loop towards {key} via {path:?}"
            );
        }
        path
    }

    /// Number of overlay hops from `from` to the surrogate of `key`
    /// (0 when `from` already owns the key).
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty or `from` is not a member.
    pub fn hops(&self, from: NodeId, key: NodeId) -> usize {
        self.path(from, key).len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyhash::stable_hash_u64;

    fn id(n: u64) -> NodeId {
        NodeId::from_raw(n)
    }

    /// A ring of `n` pseudo-random node ids.
    fn random_ring(n: u64, seed: u64) -> Ring {
        (0..n).map(|i| id(stable_hash_u64(i, seed))).collect()
    }

    #[test]
    fn path_starts_and_ends_correctly() {
        let ring = random_ring(50, 1);
        let router = Router::build(&ring);
        let from = ring.iter().next().unwrap();
        let key = id(0xDEAD_BEEF);
        let path = router.path(from, key);
        assert_eq!(path[0], from);
        assert_eq!(*path.last().unwrap(), ring.surrogate(key).unwrap());
    }

    #[test]
    fn path_to_own_key_is_trivial() {
        let ring = random_ring(10, 2);
        let router = Router::build(&ring);
        let node = ring.iter().next().unwrap();
        assert_eq!(router.path(node, node), vec![node]);
        assert_eq!(router.hops(node, node), 0);
    }

    #[test]
    fn hops_are_logarithmic() {
        let ring = random_ring(1024, 3);
        let router = Router::build(&ring);
        let members: Vec<NodeId> = ring.iter().collect();
        let mut max_hops = 0;
        for i in 0..200u64 {
            let from = members[(i as usize * 5) % members.len()];
            let key = id(stable_hash_u64(i, 99));
            max_hops = max_hops.max(router.hops(from, key));
        }
        // log2(1024) = 10; greedy Chord stays within ~2x.
        assert!(max_hops <= 20, "max hops {max_hops}");
        assert!(max_hops >= 2, "suspiciously short paths");
    }

    #[test]
    fn all_pairs_reachable_small_ring() {
        let ring = random_ring(16, 4);
        let router = Router::build(&ring);
        let members: Vec<NodeId> = ring.iter().collect();
        for &from in &members {
            for &to in &members {
                let path = router.path(from, to);
                assert_eq!(*path.last().unwrap(), to, "surrogate of a member is itself");
            }
        }
    }

    #[test]
    fn hops_strictly_progress() {
        let ring = random_ring(128, 5);
        let router = Router::build(&ring);
        let from = ring.iter().next().unwrap();
        let key = id(u64::MAX / 7);
        let path = router.path(from, key);
        // Remaining clockwise distance decreases monotonically until the
        // final hop (which may overshoot onto the surrogate).
        for w in path.windows(2).take(path.len().saturating_sub(2)) {
            assert!(
                w[1].clockwise_distance(key) < w[0].clockwise_distance(key),
                "no progress at {w:?}"
            );
        }
    }

    #[test]
    fn rebuild_after_churn() {
        let mut ring = random_ring(32, 6);
        let mut router = Router::build(&ring);
        let victim = ring.iter().nth(3).unwrap();
        ring.leave(victim);
        router.rebuild(&ring);
        let from = ring.iter().next().unwrap();
        let path = router.path(from, victim);
        // The victim's keys now route to its old successor.
        assert_eq!(*path.last().unwrap(), ring.surrogate(victim).unwrap());
        assert!(!path.contains(&victim));
    }

    #[test]
    #[should_panic(expected = "non-member")]
    fn routing_from_non_member_panics() {
        let ring = random_ring(4, 7);
        let router = Router::build(&ring);
        router.path(id(12345), id(1));
    }

    #[test]
    fn single_node_routes_to_itself() {
        let ring: Ring = std::iter::once(id(9)).collect();
        let router = Router::build(&ring);
        assert_eq!(router.path(id(9), id(12345)), vec![id(9)]);
    }
}
