//! Property-based tests for ring invariants and DOLR behaviour.

use hyperdex_dht::{keyhash, Dolr, NodeId, ObjectId, Ring, Router};
use proptest::prelude::*;

fn ids(seed: u64, n: usize) -> Vec<NodeId> {
    (0..n as u64)
        .map(|i| NodeId::from_raw(keyhash::stable_hash_u64(i, seed)))
        .collect()
}

proptest! {
    /// Every key has exactly one owner, and it is the surrogate.
    #[test]
    fn unique_ownership(seed in any::<u64>(), n in 1usize..40, key in any::<u64>()) {
        let ring: Ring = ids(seed, n).into_iter().collect();
        let key = NodeId::from_raw(key);
        let owners: Vec<NodeId> = ring.iter().filter(|&m| ring.owns(m, key)).collect();
        prop_assert_eq!(owners.len(), 1);
        prop_assert_eq!(owners[0], ring.surrogate(key).unwrap());
    }

    /// successor and predecessor are inverse on members.
    #[test]
    fn successor_predecessor_inverse(seed in any::<u64>(), n in 2usize..40) {
        let ring: Ring = ids(seed, n).into_iter().collect();
        for m in ring.iter() {
            let s = ring.successor(m).unwrap();
            prop_assert_eq!(ring.predecessor(s), Some(m));
        }
    }

    /// Routing always terminates at the surrogate within n hops.
    #[test]
    fn routing_terminates(seed in any::<u64>(), n in 1usize..64, key in any::<u64>()) {
        let ring: Ring = ids(seed, n).into_iter().collect();
        let router = Router::build(&ring);
        let from = ring.iter().next().unwrap();
        let key = NodeId::from_raw(key);
        let path = router.path(from, key);
        prop_assert!(path.len() <= n + 1);
        prop_assert_eq!(*path.last().unwrap(), ring.surrogate(key).unwrap());
        // No node repeats on the path.
        let mut seen = std::collections::HashSet::new();
        for hop in &path {
            prop_assert!(seen.insert(*hop), "loop through {hop}");
        }
    }

    /// Insert → read returns the inserted owner; delete removes it.
    #[test]
    fn insert_read_delete(seed in any::<u64>(), n in 1usize..32, name in "[a-z]{1,12}") {
        let mut dht = Dolr::builder().nodes(n).seed(seed).build();
        let obj = ObjectId::from_name(&name);
        let publisher = dht.random_node();
        dht.insert(publisher, obj, publisher);
        let read = dht.read(publisher, obj).unwrap();
        prop_assert!(read.refs.iter().any(|r| r.owner == publisher));
        dht.delete(publisher, obj, publisher);
        prop_assert!(dht.read(publisher, obj).is_none());
    }

    /// Churn (graceful leave) never loses data.
    #[test]
    fn graceful_churn_preserves(seed in any::<u64>(), n in 4usize..24, leaves in 1usize..3) {
        let mut dht = Dolr::builder().nodes(n).seed(seed).build();
        let publisher = dht.random_node();
        let objs: Vec<ObjectId> =
            (0..30).map(|i| ObjectId::from_raw(i * 7 + 1)).collect();
        for &o in &objs {
            dht.insert(publisher, o, publisher);
        }
        for k in 0..leaves.min(n - 1) {
            let victim = dht.ring().iter().nth(k + 1).unwrap();
            dht.leave(victim);
        }
        let reader = dht.random_node();
        for &o in &objs {
            prop_assert!(dht.read(reader, o).is_some(), "lost {o}");
        }
    }

    /// Arbitrary seeded membership sequences keep the key space an exact
    /// partition: after every join/leave step, each probed key has
    /// exactly one live owner, and it is the surrogate.
    #[test]
    fn membership_sequences_partition_key_space(
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<u64>(), any::<bool>()), 1..40),
        key in any::<u64>(),
    ) {
        let mut ring = Ring::new();
        for (i, &(raw, join)) in ops.iter().enumerate() {
            // Hash the raw op id so ids spread over the whole ring.
            let node = NodeId::from_raw(keyhash::stable_hash_u64(raw, seed));
            if join {
                ring.join(node);
            } else {
                ring.leave(node);
            }
            let probe = NodeId::from_raw(key.wrapping_add(i as u64));
            let owners: Vec<NodeId> =
                ring.iter().filter(|&m| ring.owns(m, probe)).collect();
            if ring.is_empty() {
                prop_assert!(owners.is_empty());
                prop_assert_eq!(ring.surrogate(probe), None);
            } else {
                prop_assert_eq!(owners.len(), 1, "step {}: owners {:?}", i, owners);
                prop_assert_eq!(owners[0], ring.surrogate(probe).unwrap());
            }
        }
    }

    /// successor_list never returns duplicates, even when k is at least
    /// the ring size or the ring has a single node.
    #[test]
    fn successor_list_no_duplicates(seed in any::<u64>(), n in 1usize..20, k in 0usize..64) {
        let ring: Ring = ids(seed, n).into_iter().collect();
        let size = ring.len();
        for m in ring.iter() {
            let list = ring.successor_list(m, k);
            let mut dedup = list.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), list.len(), "duplicates in {:?}", list);
            prop_assert!(!list.contains(&m), "successor list contains self");
            prop_assert!(list.len() <= k.min(size.saturating_sub(1)));
            if size == 1 {
                prop_assert!(list.is_empty(), "single-node ring has no successors");
            }
        }
    }

    /// With replication k, data survives k crashes of arbitrary nodes.
    #[test]
    fn replicated_crash_tolerance(seed in any::<u64>(), n in 6usize..20) {
        let k = 2usize;
        let mut dht = Dolr::builder().nodes(n).seed(seed).replication(k).build();
        let publisher = dht.random_node();
        let obj = ObjectId::from_raw(99);
        dht.insert(publisher, obj, publisher);
        for _ in 0..k {
            let primary = dht.locate(obj);
            dht.crash(primary);
            let reader = dht.random_node();
            prop_assert!(dht.read(reader, obj).is_some(), "lost after crash");
        }
    }
}
