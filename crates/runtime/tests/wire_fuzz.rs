//! Property tests of the wire codec's failure envelope.
//!
//! The runtime treats its channels like sockets, and a socket can hand
//! you anything: torn writes, bit rot, garbage. The decoder's contract
//! is that it *never panics* — every input is either a valid frame or
//! a typed [`WireError`] — and that valid frames survive arbitrary
//! corruption of *other* bytes only by being rejected, never by being
//! silently misparsed into out-of-bounds lengths.

use hyperdex_core::{KeywordSet, RecoveryStrategy};
use hyperdex_runtime::{WireError, WireMsg};
use proptest::prelude::*;

fn set(s: &str) -> KeywordSet {
    KeywordSet::parse(s).unwrap()
}

/// A spread of valid frames covering every tag, including the
/// fault-tolerance messages.
fn exemplars() -> Vec<WireMsg> {
    vec![
        WireMsg::Insert {
            object: 7,
            keywords: set("alpha beta"),
        },
        WireMsg::Handoff {
            bits: 0b1011,
            entries: vec![(set("a"), vec![1, 2]), (set("a b"), vec![3])],
        },
        WireMsg::Query {
            query_id: 9,
            keywords: set("alpha"),
            threshold: 64,
        },
        WireMsg::TQuery {
            query_id: 9,
            bits: 0b1100,
            keywords: set("alpha"),
            remaining: 3,
            via_dim: Some(2),
            coord: 1,
        },
        WireMsg::TCont {
            query_id: 9,
            bits: 0b1100,
            objects: vec![(4, 1), (5, 0)],
            children: vec![(0b1101, 0), (0b1110, 1)],
        },
        WireMsg::FtQuery {
            query_id: 10,
            keywords: set("alpha beta"),
            threshold: 8,
            strategy: RecoveryStrategy::Redelegate,
            max_retries: 3,
            base_timeout_ms: 25,
        },
        WireMsg::FtQueryDone {
            query_id: 10,
            objects: vec![(4, 1)],
            subcube: 64,
            reached: 62,
            retries: 5,
            timeouts: 2,
            redelegations: 1,
            queries_sent: 70,
            conts: 66,
            result_messages: 12,
            skipped: vec![0b111, 0b1011],
        },
        WireMsg::TQueryBatch {
            query_id: 9,
            keywords: set("alpha"),
            remaining: 12,
            coord: 1,
            entries: vec![(0b1100, 2), (0b1010, 1), (0b1001, 0)],
        },
        WireMsg::TContBatch {
            query_id: 9,
            entries: vec![
                (0b1100, vec![(4, 1), (5, 0)], vec![(0b1101, 0)]),
                (0b1010, vec![], vec![]),
            ],
        },
        WireMsg::RepairDone { worker: 3 },
        WireMsg::Shutdown,
    ]
}

proptest! {
    /// Arbitrary bytes never panic the decoder: every outcome is a
    /// frame or a typed error.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = WireMsg::decode(&bytes);
        let _ = WireMsg::decode_exact(&bytes);
    }

    /// Every truncation of every valid frame is rejected (as
    /// `Truncated`/`BadLength`-class errors), never panics, and never
    /// "succeeds" with a different message.
    #[test]
    fn truncations_of_valid_frames_are_rejected(which in 0usize..11, cut in 0usize..200) {
        let msgs = exemplars();
        let encoded = msgs[which % msgs.len()].encode();
        if cut < encoded.len() {
            prop_assert!(WireMsg::decode_exact(&encoded[..cut]).is_err());
        }
    }

    /// A single flipped bit anywhere in a valid frame either still
    /// decodes (the flip landed in a value field) or is rejected —
    /// never a panic, and never a frame-length escape.
    #[test]
    fn bit_flips_never_panic(which in 0usize..11, byte in 0usize..200, bit in 0u8..8) {
        let msgs = exemplars();
        let mut encoded = msgs[which % msgs.len()].encode();
        let len = encoded.len();
        encoded[byte % len] ^= 1 << bit;
        match WireMsg::decode(&encoded) {
            // A surviving parse must still account for a sane span.
            Ok((_, consumed)) => prop_assert!(consumed <= encoded.len()),
            Err(
                WireError::Truncated { .. }
                | WireError::TrailingGarbage { .. }
                | WireError::BadTag(_)
                | WireError::Oversized { .. }
                | WireError::BadUtf8
                | WireError::BadKeyword
                | WireError::BadStrategy(_),
            ) => {}
        }
    }
}
