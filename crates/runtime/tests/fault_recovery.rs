//! Integration: the threaded runtime under injected faults.
//!
//! The ISSUE-6 contract: a worker crash mid-superset-scan is survived
//! — the supervisor respawns the worker, replays its shard from the
//! load journal, and the recovered query returns results byte-identical
//! to an unfaulted run; lossy wires are absorbed by the shared
//! fault-tolerant coordinator; and graded fault parity holds across a
//! worker-count × fault-mode matrix, with frame conservation on every
//! shutdown.
//!
//! CI fans this file across its fault matrix via two env vars:
//! `HYPERDEX_RUNTIME_WORKERS` (comma-separated worker counts, default
//! `2,4`) and `HYPERDEX_FAULT_MODE` (`crash`, `loss`, or `crash+loss`,
//! default: all three).

use hyperdex_core::{KeywordHasher, KeywordSet, ObjectId, RecoveryStrategy};
use hyperdex_runtime::{
    assert_fault_parity, FaultPlan, FtSearchOptions, NodeRuntime, RuntimeConfig,
};
use hyperdex_workload::{Corpus, CorpusConfig};

const R: u8 = 8;
const SEED: u64 = 42;

const CORPUS: &[(u64, &str)] = &[
    (1, "a"),
    (2, "a b"),
    (3, "a b c"),
    (4, "a c"),
    (5, "b c"),
    (6, "a d e"),
    (7, "x y"),
    (8, "a b d"),
];

fn set(s: &str) -> KeywordSet {
    KeywordSet::parse(s).unwrap()
}

/// Worker counts under test: the env override, or a small default
/// ladder (CI's matrix passes `2` and `8`).
fn worker_counts() -> Vec<u32> {
    match std::env::var("HYPERDEX_RUNTIME_WORKERS") {
        Ok(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad HYPERDEX_RUNTIME_WORKERS entry {s:?}"))
            })
            .collect(),
        Err(_) => vec![2, 4],
    }
}

/// Fault modes under test: the env override, or all three.
fn fault_modes() -> Vec<String> {
    match std::env::var("HYPERDEX_FAULT_MODE") {
        Ok(raw) => vec![raw],
        Err(_) => ["crash", "loss", "crash+loss"]
            .into_iter()
            .map(String::from)
            .collect(),
    }
}

/// The fault plan a mode names. Crashes target `victim`; loss is 8%
/// drop + 4% duplicate + 4% delay on the traversal path.
fn plan_for(mode: &str, fault_seed: u64, victim: u32) -> FaultPlan {
    match mode {
        "crash" => FaultPlan::default().crash(victim, 1),
        "loss" => FaultPlan::lossy(fault_seed, 80, 40, 40),
        "crash+loss" => FaultPlan::lossy(fault_seed, 80, 40, 40).crash(victim, 1),
        other => panic!("unknown HYPERDEX_FAULT_MODE {other:?}"),
    }
}

/// The worker owning object 2's home vertex — crashing it provably
/// destroys indexed state, so recovery must actually replay the shard.
/// Built via [`RuntimeConfig::shard_map`] so the victim tracks the
/// runtime's actual placement policy.
fn data_owning_worker(workers: u32) -> u32 {
    let hasher = KeywordHasher::new(R, SEED).unwrap();
    RuntimeConfig::new(R, workers)
        .seed(SEED)
        .shard_map()
        .owner_of(hasher.vertex_for(&set("a b")).bits())
}

fn loaded(workers: u32, plan: FaultPlan) -> NodeRuntime {
    let mut rt =
        NodeRuntime::start_faulted(RuntimeConfig::new(R, workers).seed(SEED), plan).unwrap();
    for &(id, kws) in CORPUS {
        rt.insert(ObjectId::from_raw(id), set(kws)).unwrap();
    }
    rt.flush();
    rt
}

/// Sorted `(id, extra_keywords)` pairs — the full observable payload of
/// a search, so equality here is byte-identity of the result frames
/// modulo arrival order.
fn payload(rt: &mut NodeRuntime, opts: &FtSearchOptions) -> Vec<(u64, u32)> {
    let out = rt
        .superset_search_ft(&set("a"), usize::MAX - 1, opts)
        .unwrap();
    assert!(
        out.complete,
        "recovery should reach every vertex here: {:?}",
        out.coverage
    );
    let mut pairs: Vec<(u64, u32)> = out
        .matches
        .iter()
        .map(|m| (m.object.raw(), m.extra_keywords))
        .collect();
    pairs.sort_unstable();
    pairs
}

/// Generous retry budget: with the fixed seeds below, every vertex is
/// recovered and faulted runs must reproduce the unfaulted payload
/// exactly.
fn recovering_opts() -> FtSearchOptions {
    FtSearchOptions {
        strategy: RecoveryStrategy::Redelegate,
        max_retries: 5,
        base_timeout_ms: 20,
        attempt_timeout_ms: 1_500,
        attempts: 3,
    }
}

#[test]
fn faulted_runs_reproduce_the_unfaulted_payload_byte_for_byte() {
    let opts = recovering_opts();
    for workers in worker_counts() {
        let mut clean = loaded(workers, FaultPlan::default());
        let truth = payload(&mut clean, &opts);
        assert!(!truth.is_empty());
        clean.shutdown().assert_conserved();

        for mode in fault_modes() {
            let victim = data_owning_worker(workers);
            let mut faulted = loaded(workers, plan_for(&mode, 0xFA17, victim));
            let got = payload(&mut faulted, &opts);
            assert_eq!(
                got, truth,
                "mode={mode} workers={workers}: faulted payload diverged"
            );
            let report = faulted.shutdown();
            report.assert_conserved();
            if mode.contains("crash") {
                assert_eq!(report.supervisor.respawns, 1, "mode={mode}");
                assert!(
                    report.supervisor.replayed_frames > 0,
                    "mode={mode}: crash of a data-owning worker must replay state"
                );
            }
        }
    }
}

#[test]
fn fault_parity_holds_across_the_matrix() {
    let corpus: Vec<(ObjectId, KeywordSet)> =
        Corpus::generate(&CorpusConfig::pchome().with_objects(120), SEED)
            .indexable()
            .map(|(id, kw)| (id, kw.clone()))
            .collect();
    // Broad single-keyword probes: large subcubes, long traversals.
    let mut queries: Vec<KeywordSet> = Vec::new();
    for (_, kw) in corpus.iter().take(60) {
        if kw.len() == 1 && !queries.contains(kw) {
            queries.push(kw.clone());
        }
        if queries.len() == 3 {
            break;
        }
    }
    if queries.is_empty() {
        queries.push(corpus[0].1.clone());
    }

    for workers in worker_counts() {
        for mode in fault_modes() {
            let victim = data_owning_worker(workers);
            let plan = plan_for(&mode, 0xBEEF, victim);
            let report = assert_fault_parity(
                R,
                SEED,
                workers,
                &plan,
                &recovering_opts(),
                &corpus,
                &queries,
            );
            assert_eq!(
                report.complete + report.partial + report.degraded,
                queries.len(),
                "mode={mode} workers={workers}"
            );
            assert_eq!(report.shutdown.in_flight(), 0);
        }
    }
}

#[test]
fn duplicate_handoff_frames_are_idempotent() {
    // The same bulk load delivered twice — every Handoff frame is a
    // duplicate the second time — must change nothing: same inserts
    // counted, same results returned.
    let corpus: Vec<(ObjectId, KeywordSet)> = CORPUS
        .iter()
        .map(|&(id, k)| (ObjectId::from_raw(id), set(k)))
        .collect();
    let mut rt = NodeRuntime::start(RuntimeConfig::new(R, 4).seed(SEED)).unwrap();
    rt.bulk_load(corpus.iter().map(|(id, k)| (*id, k))).unwrap();
    rt.bulk_load(corpus.iter().map(|(id, k)| (*id, k))).unwrap();
    rt.flush();

    let mut ids: Vec<u64> = rt
        .superset_search(&set("a"), usize::MAX - 1)
        .unwrap()
        .iter()
        .map(|m| m.object.raw())
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2, 3, 4, 6, 8]);

    let report = rt.shutdown();
    report.assert_conserved();
    let inserts: u64 = report.workers.iter().map(|w| w.inserts).sum();
    assert_eq!(
        inserts,
        CORPUS.len() as u64,
        "replayed handoffs must not re-count inserts"
    );
}
