//! Runtime ↔ simulator ↔ direct-engine parity over generated
//! workloads.
//!
//! The ISSUE-5 contract: for a shared seed and corpus, the threaded
//! runtime returns set-identical pin and superset results to
//! `ProtocolSim` at r ∈ {8, 12} across at least three worker counts,
//! with frame conservation holding on every shutdown. Worker counts
//! come from `HYPERDEX_RUNTIME_WORKERS` (comma-separated) when set —
//! CI uses that to fan the same test across a thread-count matrix —
//! and default to 1, 2, 4, 8. `HYPERDEX_SHARD_POLICY` (`hash` or
//! `prefix`) pins the placement policy the same way; unset, both run.

use hyperdex_core::{KeywordSet, ObjectId};
use hyperdex_runtime::{assert_sim_parity_with, ShardPolicy};
use hyperdex_workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

/// Shard policies under test: the env override, or both.
fn policies() -> Vec<ShardPolicy> {
    match std::env::var("HYPERDEX_SHARD_POLICY") {
        Ok(raw) => vec![ShardPolicy::parse(raw.trim())
            .unwrap_or_else(|| panic!("bad HYPERDEX_SHARD_POLICY {raw:?}"))],
        Err(_) => vec![ShardPolicy::Hash, ShardPolicy::Prefix],
    }
}

/// Worker counts under test: the env override, or the default ladder.
fn worker_counts() -> Vec<u32> {
    match std::env::var("HYPERDEX_RUNTIME_WORKERS") {
        Ok(raw) => {
            let parsed: Vec<u32> = raw
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad HYPERDEX_RUNTIME_WORKERS entry {s:?}"))
                })
                .collect();
            assert!(!parsed.is_empty(), "HYPERDEX_RUNTIME_WORKERS is empty");
            parsed
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// A generated corpus plus a query mix of broad (|K| = 1), narrower
/// (|K| = 2), thresholded, and definitely-missing sets.
#[allow(clippy::type_complexity)]
fn workload(seed: u64, objects: usize) -> (Vec<(ObjectId, KeywordSet)>, Vec<(KeywordSet, usize)>) {
    let corpus = Corpus::generate(&CorpusConfig::pchome().with_objects(objects), seed);
    let log = QueryLog::generate(&QueryLogConfig::small_test(), &corpus, seed.wrapping_add(1));
    let entries: Vec<(ObjectId, KeywordSet)> = corpus
        .indexable()
        .map(|(id, kw)| (id, kw.clone()))
        .collect();

    let mut queries: Vec<(KeywordSet, usize)> = Vec::new();
    for kw in log.popular_of_size(1, 4) {
        queries.push((kw.clone(), usize::MAX - 1));
        // The same broad query under a binding threshold exercises the
        // early-stop path.
        queries.push((kw, 3));
    }
    for kw in log.popular_of_size(2, 4) {
        queries.push((kw, usize::MAX - 1));
    }
    queries.push((KeywordSet::parse("no such keyword anywhere").unwrap(), 10));
    (entries, queries)
}

#[test]
fn runtime_matches_sim_at_r8_across_worker_counts() {
    let (corpus, queries) = workload(42, 400);
    for workers in worker_counts() {
        for policy in policies() {
            let report = assert_sim_parity_with(8, 42, workers, policy, &corpus, &queries);
            assert!(report.superset_checked >= 9, "query mix shrank");
            assert!(report.pin_checked >= 9);
            assert_eq!(report.shutdown.in_flight(), 0);
        }
    }
}

#[test]
fn runtime_matches_sim_at_r12_across_worker_counts() {
    let (corpus, queries) = workload(7, 400);
    for workers in worker_counts() {
        for policy in policies() {
            let report = assert_sim_parity_with(12, 7, workers, policy, &corpus, &queries);
            assert!(report.superset_checked >= 9);
            assert_eq!(report.shutdown.in_flight(), 0);
        }
    }
}

#[test]
fn parity_survives_a_second_seed_and_small_corpus() {
    // A second (seed, size) point so a lucky hash layout cannot hide a
    // divergence; exercises sparse vertices (many unmaterialized).
    let (corpus, queries) = workload(1234, 120);
    for workers in worker_counts() {
        for policy in policies() {
            assert_sim_parity_with(8, 1234, workers, policy, &corpus, &queries);
        }
    }
}
