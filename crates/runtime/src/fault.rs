//! Deterministic fault injection for the threaded runtime.
//!
//! A [`FaultPlan`] describes, per run, how hostile the "network"
//! between workers is: per-mille rates for dropping, duplicating, and
//! delaying frames, plus crash points that stop whole workers. Every
//! decision is a pure function of `(plan seed, sender, receiver,
//! sequence number)` via the same stable hash the shard map uses, so a
//! faulted run replays identically — the property the faulted parity
//! harness and the `faults` bench rely on.
//!
//! Scope: injection applies only to **worker → worker traversal
//! frames** (`T_QUERY`/`T_CONT`). Client-bound frames, control frames
//! (flush/shutdown/repair), and load frames (insert/handoff) are
//! reliable — so the indexed corpus is always well-defined and every
//! lost frame is one the fault-tolerant coordinator knows how to
//! recover (retry, re-delegate, or account as skipped coverage).
//! Delayed frames are stashed and released behind the *next* frame to
//! the same destination, which is also how the plan reorders traffic.
//!
//! A crash point stops a worker cold on the N-th query-path frame it
//! receives, *before* processing it: in-memory tables, parked outbox
//! frames, and coordinator state all vanish, exactly like a process
//! kill. Recovery is the supervisor's job ([`crate::runtime`]).

use hyperdex_dht::stable_hash64_seeded;

/// Domain separation from the shard and keyword hashes derived from
/// the same seed.
const FAULT_SALT: u64 = 0x4641_554C_545F_494E; // "FAULT_IN"

/// Crash-stop one worker after it has received `after_query_frames`
/// query-path frames (inserts and control frames don't count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Which worker dies.
    pub worker: u32,
    /// How many query-path frames it survives; the N-th is the trigger
    /// and is **not** processed.
    pub after_query_frames: u64,
}

/// One run's complete fault schedule. [`FaultPlan::default`] is
/// fault-free, which is what [`crate::runtime::NodeRuntime::start`]
/// uses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-frame fate hash (independent of the runtime
    /// seed, so loss schedules can vary while placement stays fixed).
    pub seed: u64,
    /// Frames dropped, in ‰ of injectable sends.
    pub drop_per_mille: u16,
    /// Frames duplicated (delivered twice), in ‰.
    pub duplicate_per_mille: u16,
    /// Frames delayed behind the next same-destination send, in ‰.
    pub delay_per_mille: u16,
    /// Workers that crash-stop mid-run.
    pub crashes: Vec<CrashPoint>,
}

impl FaultPlan {
    /// A plan with only frame-level faults (no crashes).
    pub fn lossy(seed: u64, drop: u16, duplicate: u16, delay: u16) -> FaultPlan {
        assert!(
            usize::from(drop) + usize::from(duplicate) + usize::from(delay) <= 1000,
            "fault rates exceed 1000 per mille"
        );
        FaultPlan {
            seed,
            drop_per_mille: drop,
            duplicate_per_mille: duplicate,
            delay_per_mille: delay,
            crashes: Vec::new(),
        }
    }

    /// Adds a crash point.
    pub fn crash(mut self, worker: u32, after_query_frames: u64) -> FaultPlan {
        self.crashes.push(CrashPoint {
            worker,
            after_query_frames,
        });
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_per_mille > 0
            || self.duplicate_per_mille > 0
            || self.delay_per_mille > 0
            || !self.crashes.is_empty()
    }
}

/// What the injector decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Deliver normally.
    Deliver,
    /// Silently discard.
    Drop,
    /// Deliver two copies.
    Duplicate,
    /// Stash; release behind the next frame to the same destination.
    Delay,
}

/// Per-worker injector. Owns the worker's send sequence counter and
/// its crash countdown; replays bit-for-bit for a given plan.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    worker: u32,
    seq: u64,
    query_frames: u64,
    crash_after: Option<u64>,
}

impl FaultInjector {
    /// The injector for `worker` under `plan`.
    pub fn new(plan: FaultPlan, worker: u32) -> FaultInjector {
        let crash_after = plan
            .crashes
            .iter()
            .find(|c| c.worker == worker)
            .map(|c| c.after_query_frames.max(1));
        FaultInjector {
            plan,
            worker,
            seq: 0,
            query_frames: 0,
            crash_after,
        }
    }

    /// Decides the fate of this worker's next injectable frame to
    /// `dest`. Deterministic in `(plan seed, worker, dest, call count)`.
    pub fn fate(&mut self, dest: u32) -> Fate {
        self.seq += 1;
        let mut key = [0u8; 16];
        key[..4].copy_from_slice(&self.worker.to_le_bytes());
        key[4..8].copy_from_slice(&dest.to_le_bytes());
        key[8..].copy_from_slice(&self.seq.to_le_bytes());
        let roll = (stable_hash64_seeded(&key, self.plan.seed ^ FAULT_SALT) % 1000) as u16;
        if roll < self.plan.drop_per_mille {
            Fate::Drop
        } else if roll < self.plan.drop_per_mille + self.plan.duplicate_per_mille {
            Fate::Duplicate
        } else if roll
            < self.plan.drop_per_mille + self.plan.duplicate_per_mille + self.plan.delay_per_mille
        {
            Fate::Delay
        } else {
            Fate::Deliver
        }
    }

    /// Called once per query-path frame received; `true` exactly once,
    /// on the frame the crash point names.
    pub fn should_crash(&mut self) -> bool {
        let Some(at) = self.crash_after else {
            return false;
        };
        self.query_frames += 1;
        if self.query_frames >= at {
            // One-shot: a worker only dies once per plan.
            self.crash_after = None;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_replay_deterministically() {
        let plan = FaultPlan::lossy(7, 100, 50, 50);
        let mut a = FaultInjector::new(plan.clone(), 2);
        let mut b = FaultInjector::new(plan, 2);
        for dest in [0u32, 1, 3, 0, 0, 1] {
            assert_eq!(a.fate(dest), b.fate(dest));
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::lossy(11, 200, 100, 100);
        let mut inj = FaultInjector::new(plan, 0);
        let mut counts = [0u32; 4];
        for _ in 0..10_000 {
            match inj.fate(1) {
                Fate::Deliver => counts[0] += 1,
                Fate::Drop => counts[1] += 1,
                Fate::Duplicate => counts[2] += 1,
                Fate::Delay => counts[3] += 1,
            }
        }
        // 20% / 10% / 10% nominal, generous ±5pp tolerance.
        assert!((1500..=2500).contains(&counts[1]), "drops {}", counts[1]);
        assert!((500..=1500).contains(&counts[2]), "dups {}", counts[2]);
        assert!((500..=1500).contains(&counts[3]), "delays {}", counts[3]);
    }

    #[test]
    fn crash_fires_exactly_once_at_the_named_frame() {
        let plan = FaultPlan::default().crash(3, 5);
        let mut inj = FaultInjector::new(plan, 3);
        let fires: Vec<bool> = (0..8).map(|_| inj.should_crash()).collect();
        assert_eq!(
            fires,
            [false, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn other_workers_never_crash() {
        let plan = FaultPlan::default().crash(3, 1);
        let mut inj = FaultInjector::new(plan, 2);
        assert!((0..100).all(|_| !inj.should_crash()));
    }

    #[test]
    fn fault_free_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let mut inj = FaultInjector::new(plan, 0);
        assert!((0..1000).all(|_| inj.fate(1) == Fate::Deliver));
        assert!(!inj.should_crash());
    }
}
