//! Sim-parity harness: the threaded runtime vs. the deterministic
//! single-threaded ground truths.
//!
//! For a shared `(r, seed)` and corpus, every query must return a
//! result set identical to both [`ProtocolSim`]'s message-level
//! traversal and the direct [`HypercubeIndex`] engine, at every worker
//! count — thread scheduling may reorder frame *arrivals*, but the
//! per-query sequential coordination makes outcomes order-free. The
//! harness also asserts the frame-conservation law on shutdown, so a
//! lost or duplicated frame fails the run even when results happen to
//! match.
//!
//! Both the integration tests and the `runtime` bench call into this
//! module, keeping "what parity means" defined in exactly one place.

use std::collections::{HashMap, HashSet};

use hyperdex_core::sim_protocol::ProtocolSim;
use hyperdex_core::{HypercubeIndex, KeywordHasher, KeywordSet, ObjectId, SupersetQuery};
use hyperdex_simnet::latency::LatencyModel;

use crate::fault::FaultPlan;
use crate::runtime::{FtSearchOptions, NodeRuntime, RuntimeConfig, ShutdownReport};
use crate::shard::ShardPolicy;

/// What one parity run checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityReport {
    /// Worker threads the runtime ran with.
    pub workers: u32,
    /// Superset queries compared (runtime vs. sim vs. direct).
    pub superset_checked: usize,
    /// Pin lookups compared.
    pub pin_checked: usize,
    /// The runtime's shutdown accounting (conservation already
    /// asserted).
    pub shutdown: ShutdownReport,
}

/// Builds sim + direct + runtime from the same corpus, runs every
/// query on all three, and panics on any divergence: differing result
/// id-sets, or a conservation violation at shutdown.
///
/// `queries` pairs a keyword set with a superset threshold; every set
/// is additionally pin-searched.
pub fn assert_sim_parity(
    r: u8,
    seed: u64,
    workers: u32,
    corpus: &[(ObjectId, KeywordSet)],
    queries: &[(KeywordSet, usize)],
) -> ParityReport {
    assert_sim_parity_with(r, seed, workers, ShardPolicy::default(), corpus, queries)
}

/// [`assert_sim_parity`] with an explicit [`ShardPolicy`] — the CI
/// parity matrix runs both placements, since the contract is that
/// sharding never changes *what* a query returns, only where the work
/// lands.
pub fn assert_sim_parity_with(
    r: u8,
    seed: u64,
    workers: u32,
    policy: ShardPolicy,
    corpus: &[(ObjectId, KeywordSet)],
    queries: &[(KeywordSet, usize)],
) -> ParityReport {
    let mut direct = HypercubeIndex::new(r, seed).expect("valid r");
    let mut sim = ProtocolSim::new(r, seed, LatencyModel::constant(1)).expect("valid r");
    let mut runtime = NodeRuntime::start(RuntimeConfig::new(r, workers).seed(seed).policy(policy))
        .expect("valid r");

    for (object, keywords) in corpus {
        direct.insert(*object, keywords.clone()).expect("non-empty");
        sim.insert(*object, keywords.clone()).expect("non-empty");
        runtime
            .insert(*object, keywords.clone())
            .expect("non-empty");
    }
    runtime.flush();

    let mut superset_checked = 0;
    let mut pin_checked = 0;
    for (keywords, threshold) in queries {
        // Superset: runtime vs. sim (message-level) vs. direct engine.
        let rt_ids = ids(runtime
            .superset_search(keywords, *threshold)
            .expect("non-zero threshold")
            .iter()
            .map(|m| m.object));
        let sim_ids = ids(sim
            .search_sequential(keywords, *threshold)
            .expect("non-zero threshold")
            .results
            .iter()
            .map(|m| m.object));
        let direct_ids = ids(direct
            .superset_search(
                &SupersetQuery::new(keywords.clone())
                    .threshold(*threshold)
                    .use_cache(false),
            )
            .expect("valid query")
            .results
            .iter()
            .map(|m| m.object));
        assert_eq!(
            rt_ids, sim_ids,
            "runtime/sim superset divergence: r={r} seed={seed} workers={workers} K={keywords:?}"
        );
        assert_eq!(
            rt_ids, direct_ids,
            "runtime/direct superset divergence: r={r} seed={seed} workers={workers} K={keywords:?}"
        );
        superset_checked += 1;

        // Pin: runtime vs. sim vs. direct.
        let rt_pin = ids(runtime.pin_search(keywords).into_iter());
        let sim_pin = ids(sim.pin_search(keywords).results.into_iter());
        let direct_pin = ids(direct.pin_search(keywords).results.into_iter());
        assert_eq!(
            rt_pin, sim_pin,
            "runtime/sim pin divergence: r={r} seed={seed} workers={workers} K={keywords:?}"
        );
        assert_eq!(
            rt_pin, direct_pin,
            "runtime/direct pin divergence: r={r} seed={seed} workers={workers} K={keywords:?}"
        );
        pin_checked += 1;
    }

    let shutdown = runtime.shutdown();
    shutdown.assert_conserved();
    ParityReport {
        workers,
        superset_checked,
        pin_checked,
        shutdown,
    }
}

/// Sorted, deduplicated id list — the set the parity contract compares.
fn ids(objects: impl Iterator<Item = ObjectId>) -> Vec<ObjectId> {
    let mut out: Vec<ObjectId> = objects.collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// What one *faulted* parity run checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParityReport {
    /// Worker threads the runtime ran with.
    pub workers: u32,
    /// Queries whose faulted run matched the direct engine exactly.
    pub complete: usize,
    /// Queries that finished with skipped vertices but whose coverage
    /// accounting and partial results were verified exact.
    pub partial: usize,
    /// Queries where no coordinator ever answered within the client
    /// budget (degraded outcome, empty result verified).
    pub degraded: usize,
    /// The runtime's shutdown accounting (conservation already
    /// asserted).
    pub shutdown: ShutdownReport,
}

/// Parity under injected faults: every query runs on a faulted runtime
/// via [`NodeRuntime::superset_search_ft`] and is checked against the
/// fault-free direct engine. The contract is graded:
///
/// * **complete** outcome (no vertex skipped) → the id-set must be
///   *identical* to the direct engine's (queries are issued
///   unthresholded so early-stop can't reorder the comparison);
/// * **partial** outcome → the coverage accounting must be exact
///   (`reached + skipped == subcube`) and every missing object must
///   live on a vertex the coordinator explicitly reported as skipped —
///   a missed result the report doesn't confess fails the run;
/// * **degraded** outcome (no coordinator answered) → the result must
///   be empty with no coverage claim.
///
/// Conservation is asserted on shutdown — under injection that means
/// every drop, duplicate, and crash-lost frame was counted, not lost.
pub fn assert_fault_parity(
    r: u8,
    seed: u64,
    workers: u32,
    plan: &FaultPlan,
    opts: &FtSearchOptions,
    corpus: &[(ObjectId, KeywordSet)],
    queries: &[KeywordSet],
) -> FaultParityReport {
    let mut direct = HypercubeIndex::new(r, seed).expect("valid r");
    let mut runtime =
        NodeRuntime::start_faulted(RuntimeConfig::new(r, workers).seed(seed), plan.clone())
            .expect("valid r");
    // Home vertex of every object, for auditing partial results.
    let hasher = KeywordHasher::new(r, seed).expect("valid r");
    let mut home: HashMap<ObjectId, u64> = HashMap::new();

    for (object, keywords) in corpus {
        direct.insert(*object, keywords.clone()).expect("non-empty");
        runtime
            .insert(*object, keywords.clone())
            .expect("non-empty");
        home.insert(*object, hasher.vertex_for(keywords).bits());
    }
    runtime.flush();

    let (mut complete, mut partial, mut degraded) = (0usize, 0usize, 0usize);
    for keywords in queries {
        let truth = ids(direct
            .superset_search(
                &SupersetQuery::new(keywords.clone())
                    .threshold(usize::MAX - 1)
                    .use_cache(false),
            )
            .expect("valid query")
            .results
            .iter()
            .map(|m| m.object));
        let out = runtime
            .superset_search_ft(keywords, usize::MAX - 1, opts)
            .expect("non-zero threshold");
        let got = ids(out.matches.iter().map(|m| m.object));

        match &out.coverage {
            Some(cov) if out.complete => {
                assert_eq!(
                    got, truth,
                    "faulted-but-complete run diverged: r={r} seed={seed} \
                     workers={workers} K={keywords:?} cov={cov:?}"
                );
                assert_eq!(
                    cov.vertices_reached, cov.subcube_vertices,
                    "complete outcome with unreached vertices: {cov:?}"
                );
                complete += 1;
            }
            Some(cov) => {
                assert_eq!(
                    cov.vertices_reached + cov.vertices_skipped,
                    cov.subcube_vertices,
                    "coverage accounting not exact: {cov:?}"
                );
                let skipped: HashSet<u64> = cov.skipped.iter().copied().collect();
                // No conjured results…
                for id in &got {
                    assert!(
                        truth.contains(id),
                        "faulted run invented object {id:?}: K={keywords:?}"
                    );
                }
                // …and every miss is confessed by the coverage report.
                for id in truth.iter().filter(|id| !got.contains(id)) {
                    let bits = home[id];
                    assert!(
                        skipped.contains(&bits),
                        "object {id:?} missing but its vertex {bits:#b} was not \
                         reported skipped: cov={cov:?}"
                    );
                }
                partial += 1;
            }
            None => {
                assert!(
                    got.is_empty() && !out.complete,
                    "degraded outcome must be empty and incomplete"
                );
                degraded += 1;
            }
        }
    }

    let shutdown = runtime.shutdown();
    shutdown.assert_conserved();
    FaultParityReport {
        workers,
        complete,
        partial,
        degraded,
        shutdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    #[test]
    fn fault_parity_grades_every_outcome() {
        let corpus: Vec<(ObjectId, KeywordSet)> =
            [(1, "a"), (2, "a b"), (3, "a b c"), (4, "b c"), (5, "a c d")]
                .into_iter()
                .map(|(id, k)| (ObjectId::from_raw(id), set(k)))
                .collect();
        let queries = vec![set("a"), set("b"), set("a b")];
        let plan = FaultPlan::lossy(3, 80, 40, 40).crash(1, 2);
        let report = assert_fault_parity(
            8,
            42,
            4,
            &plan,
            &FtSearchOptions::default(),
            &corpus,
            &queries,
        );
        assert_eq!(report.complete + report.partial + report.degraded, 3);
        assert_eq!(report.shutdown.in_flight(), 0);
    }

    #[test]
    fn parity_on_a_small_corpus() {
        let corpus: Vec<(ObjectId, KeywordSet)> =
            [(1, "a"), (2, "a b"), (3, "a b c"), (4, "b c"), (5, "a c d")]
                .into_iter()
                .map(|(id, k)| (ObjectId::from_raw(id), set(k)))
                .collect();
        let queries = vec![
            (set("a"), usize::MAX - 1),
            (set("a b"), usize::MAX - 1),
            (set("a"), 2),
            (set("zzz"), 5),
        ];
        for workers in [1, 3] {
            for policy in [ShardPolicy::Hash, ShardPolicy::Prefix] {
                let report = assert_sim_parity_with(8, 42, workers, policy, &corpus, &queries);
                assert_eq!(report.superset_checked, 4);
                assert_eq!(report.pin_checked, 4);
                assert_eq!(report.shutdown.in_flight(), 0);
            }
        }
    }
}
