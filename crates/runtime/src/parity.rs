//! Sim-parity harness: the threaded runtime vs. the deterministic
//! single-threaded ground truths.
//!
//! For a shared `(r, seed)` and corpus, every query must return a
//! result set identical to both [`ProtocolSim`]'s message-level
//! traversal and the direct [`HypercubeIndex`] engine, at every worker
//! count — thread scheduling may reorder frame *arrivals*, but the
//! per-query sequential coordination makes outcomes order-free. The
//! harness also asserts the frame-conservation law on shutdown, so a
//! lost or duplicated frame fails the run even when results happen to
//! match.
//!
//! Both the integration tests and the `runtime` bench call into this
//! module, keeping "what parity means" defined in exactly one place.

use hyperdex_core::sim_protocol::ProtocolSim;
use hyperdex_core::{HypercubeIndex, KeywordSet, ObjectId, SupersetQuery};
use hyperdex_simnet::latency::LatencyModel;

use crate::runtime::{NodeRuntime, RuntimeConfig, ShutdownReport};

/// What one parity run checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityReport {
    /// Worker threads the runtime ran with.
    pub workers: u32,
    /// Superset queries compared (runtime vs. sim vs. direct).
    pub superset_checked: usize,
    /// Pin lookups compared.
    pub pin_checked: usize,
    /// The runtime's shutdown accounting (conservation already
    /// asserted).
    pub shutdown: ShutdownReport,
}

/// Builds sim + direct + runtime from the same corpus, runs every
/// query on all three, and panics on any divergence: differing result
/// id-sets, or a conservation violation at shutdown.
///
/// `queries` pairs a keyword set with a superset threshold; every set
/// is additionally pin-searched.
pub fn assert_sim_parity(
    r: u8,
    seed: u64,
    workers: u32,
    corpus: &[(ObjectId, KeywordSet)],
    queries: &[(KeywordSet, usize)],
) -> ParityReport {
    let mut direct = HypercubeIndex::new(r, seed).expect("valid r");
    let mut sim = ProtocolSim::new(r, seed, LatencyModel::constant(1)).expect("valid r");
    let mut runtime =
        NodeRuntime::start(RuntimeConfig::new(r, workers).seed(seed)).expect("valid r");

    for (object, keywords) in corpus {
        direct.insert(*object, keywords.clone()).expect("non-empty");
        sim.insert(*object, keywords.clone()).expect("non-empty");
        runtime
            .insert(*object, keywords.clone())
            .expect("non-empty");
    }
    runtime.flush();

    let mut superset_checked = 0;
    let mut pin_checked = 0;
    for (keywords, threshold) in queries {
        // Superset: runtime vs. sim (message-level) vs. direct engine.
        let rt_ids = ids(runtime
            .superset_search(keywords, *threshold)
            .expect("non-zero threshold")
            .iter()
            .map(|m| m.object));
        let sim_ids = ids(sim
            .search_sequential(keywords, *threshold)
            .expect("non-zero threshold")
            .results
            .iter()
            .map(|m| m.object));
        let direct_ids = ids(direct
            .superset_search(
                &SupersetQuery::new(keywords.clone())
                    .threshold(*threshold)
                    .use_cache(false),
            )
            .expect("valid query")
            .results
            .iter()
            .map(|m| m.object));
        assert_eq!(
            rt_ids, sim_ids,
            "runtime/sim superset divergence: r={r} seed={seed} workers={workers} K={keywords:?}"
        );
        assert_eq!(
            rt_ids, direct_ids,
            "runtime/direct superset divergence: r={r} seed={seed} workers={workers} K={keywords:?}"
        );
        superset_checked += 1;

        // Pin: runtime vs. sim vs. direct.
        let rt_pin = ids(runtime.pin_search(keywords).into_iter());
        let sim_pin = ids(sim.pin_search(keywords).results.into_iter());
        let direct_pin = ids(direct.pin_search(keywords).results.into_iter());
        assert_eq!(
            rt_pin, sim_pin,
            "runtime/sim pin divergence: r={r} seed={seed} workers={workers} K={keywords:?}"
        );
        assert_eq!(
            rt_pin, direct_pin,
            "runtime/direct pin divergence: r={r} seed={seed} workers={workers} K={keywords:?}"
        );
        pin_checked += 1;
    }

    let shutdown = runtime.shutdown();
    shutdown.assert_conserved();
    ParityReport {
        workers,
        superset_checked,
        pin_checked,
        shutdown,
    }
}

/// Sorted, deduplicated id list — the set the parity contract compares.
fn ids(objects: impl Iterator<Item = ObjectId>) -> Vec<ObjectId> {
    let mut out: Vec<ObjectId> = objects.collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    #[test]
    fn parity_on_a_small_corpus() {
        let corpus: Vec<(ObjectId, KeywordSet)> =
            [(1, "a"), (2, "a b"), (3, "a b c"), (4, "b c"), (5, "a c d")]
                .into_iter()
                .map(|(id, k)| (ObjectId::from_raw(id), set(k)))
                .collect();
        let queries = vec![
            (set("a"), usize::MAX - 1),
            (set("a b"), usize::MAX - 1),
            (set("a"), 2),
            (set("zzz"), 5),
        ];
        for workers in [1, 3] {
            let report = assert_sim_parity(8, 42, workers, &corpus, &queries);
            assert_eq!(report.superset_checked, 4);
            assert_eq!(report.pin_checked, 4);
            assert_eq!(report.shutdown.in_flight(), 0);
        }
    }
}
