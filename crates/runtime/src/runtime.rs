//! The threaded node runtime: sharded workers, bounded channels,
//! explicit backpressure, and a drain/shutdown barrier.
//!
//! # Shard ownership
//!
//! [`NodeRuntime::start`] spawns `workers` OS threads. Each owns the
//! disjoint set of hypercube vertices [`ShardMap`] assigns to it —
//! `IndexTable`s, interners, and per-query coordinator state live on
//! exactly one thread and are never shared, never locked. Everything
//! that crosses a thread boundary is a length-prefixed byte frame
//! ([`crate::wire`]), so the worker boundary behaves like a socket.
//!
//! # Channel topology and backpressure
//!
//! Every endpoint (each worker, plus the client handle) has one
//! bounded `std::sync::mpsc::sync_channel` inbox. The client may
//! block on `send` — workers always return to draining their inboxes,
//! so a blocked client always unblocks. Workers themselves **never**
//! block on a send: a full peer inbox would otherwise deadlock two
//! workers sending to each other. Instead a worker `try_send`s, and on
//! `Full` parks the frame in a per-destination outbox that is
//! re-flushed on every loop iteration, counting the event in
//! [`WorkerStats::backpressure_hits`].
//!
//! # Queries
//!
//! The worker owning `F_h(K)` coordinates each query by running the
//! same [`SupersetCoordinator`] state machine as the simulator and the
//! direct engine. Visits to its own vertices are local scans; visits
//! to foreign vertices become `T_QUERY` frames, answered with `T_CONT`
//! frames that carry results and SBT children back. One query is
//! sequential (one outstanding visit), exactly like the paper's §3.3
//! traversal — which is what makes the runtime's result sets provably
//! identical to the simulator's. Throughput comes from pipelining
//! *across* queries: different queries root on different workers and
//! progress concurrently.
//!
//! # Shutdown protocol and conservation
//!
//! [`NodeRuntime::shutdown`] first runs the flush barrier (a `Flush`
//! token to every worker, answered by `FlushAck` after all prior
//! frames on that inbox were processed), then sends `Shutdown`. A
//! worker receiving `Shutdown` flushes its outboxes and exits,
//! returning its [`WorkerStats`]. The client joins every thread,
//! drains its own inbox, and builds a [`ShutdownReport`] whose
//! conservation law — every frame sent was received, zero in flight —
//! is asserted by the parity harness and the bench on every run.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hyperdex_core::protocol::{scan_table, Step, SupersetCoordinator};
use hyperdex_core::{Error, IndexTable, KeywordHasher, KeywordInterner, KeywordSet, ObjectId};
use hyperdex_hypercube::{Shape, Vertex};

use crate::shard::ShardMap;
use crate::wire::WireMsg;

/// How a [`NodeRuntime`] is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Hypercube dimension `r` (1 ..= 63).
    pub r: u8,
    /// Seed for keyword hashing and shard placement.
    pub seed: u64,
    /// Worker threads (each owns one shard); at least 1.
    pub workers: u32,
    /// Bound of every inbox channel, in frames.
    pub channel_capacity: usize,
}

impl RuntimeConfig {
    /// A config with the default seed (0) and channel bound (256).
    pub fn new(r: u8, workers: u32) -> RuntimeConfig {
        RuntimeConfig {
            r,
            seed: 0,
            workers,
            channel_capacity: 256,
        }
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> RuntimeConfig {
        self.seed = seed;
        self
    }

    /// Overrides the per-inbox channel bound.
    pub fn channel_capacity(mut self, frames: usize) -> RuntimeConfig {
        self.channel_capacity = frames.max(1);
        self
    }
}

/// One worker's lifetime counters, returned when its thread exits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// The worker's shard index.
    pub worker: u32,
    /// Frames successfully handed to a peer or client channel.
    pub frames_sent: u64,
    /// Frames received and decoded from the inbox.
    pub frames_received: u64,
    /// `try_send` rejections that parked a frame in an outbox.
    pub backpressure_hits: u64,
    /// Objects newly indexed on this shard.
    pub inserts: u64,
    /// Vertex scans served (local visits, `T_QUERY`s, and pins).
    pub scans: u64,
    /// Superset queries this worker coordinated.
    pub queries_coordinated: u64,
}

/// Frame accounting for a whole runtime run, built at shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Frames the client handle sent.
    pub client_sent: u64,
    /// Frames the client handle received (including the final drain).
    pub client_received: u64,
    /// Per-worker counters, indexed by shard.
    pub workers: Vec<WorkerStats>,
}

impl ShutdownReport {
    /// Frames sent by every endpoint.
    pub fn total_sent(&self) -> u64 {
        self.client_sent + self.workers.iter().map(|w| w.frames_sent).sum::<u64>()
    }

    /// Frames received by every endpoint.
    pub fn total_received(&self) -> u64 {
        self.client_received + self.workers.iter().map(|w| w.frames_received).sum::<u64>()
    }

    /// Frames unaccounted for after every thread exited. The
    /// conservation law says this is zero: with all threads joined and
    /// all channels drained, nothing can still be in flight.
    pub fn in_flight(&self) -> u64 {
        self.total_sent() - self.total_received()
    }

    /// Panics unless `sent == received` (no frame lost or conjured).
    pub fn assert_conserved(&self) {
        assert_eq!(
            self.total_sent(),
            self.total_received(),
            "message conservation violated: {self:?}"
        );
    }
}

/// One match from a runtime superset search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeMatch {
    /// The matching object.
    pub object: ObjectId,
    /// `|K'| − |K|`: how many keywords beyond the query it carries.
    pub extra_keywords: u32,
}

/// One request of a pipelined [`NodeRuntime::run_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Exact-match pin lookup.
    Pin(KeywordSet),
    /// Superset search wanting up to `threshold` results.
    Superset {
        /// The queried keyword set.
        keywords: KeywordSet,
        /// Results wanted.
        threshold: usize,
    },
}

/// One completed batch request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult {
    /// Matching object ids (set semantics; order is arrival order).
    pub objects: Vec<ObjectId>,
    /// Send-to-completion wall time for this request.
    pub latency: Duration,
}

/// Client handle to a running sharded cluster. All methods are
/// synchronous from the caller's point of view; concurrency lives in
/// the worker threads ([`NodeRuntime::run_batch`] keeps a window of
/// requests in flight to exploit it).
#[derive(Debug)]
pub struct NodeRuntime {
    hasher: KeywordHasher,
    shards: ShardMap,
    to_worker: Vec<SyncSender<Vec<u8>>>,
    inbox: Receiver<Vec<u8>>,
    handles: Vec<JoinHandle<WorkerStats>>,
    next_id: u64,
    client_sent: u64,
    client_received: u64,
}

impl NodeRuntime {
    /// Spawns the worker threads and returns the client handle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] when `r` is outside `1..=63`.
    pub fn start(cfg: RuntimeConfig) -> Result<NodeRuntime, Error> {
        let hasher = KeywordHasher::new(cfg.r, cfg.seed)?;
        let shape = Shape::new(cfg.r)?;
        let workers = cfg.workers.max(1);
        let shards = ShardMap::new(workers, cfg.seed);
        let cap = cfg.channel_capacity.max(1);

        let mut worker_tx = Vec::with_capacity(workers as usize);
        let mut worker_rx = Vec::with_capacity(workers as usize);
        for _ in 0..workers {
            let (tx, rx) = sync_channel::<Vec<u8>>(cap);
            worker_tx.push(tx);
            worker_rx.push(rx);
        }
        // The client inbox absorbs replies from every worker; scale its
        // bound so a reply burst cannot stall the whole fleet.
        let (client_tx, client_rx) = sync_channel::<Vec<u8>>(cap * workers as usize);

        let mut handles = Vec::with_capacity(workers as usize);
        for (index, rx) in worker_rx.into_iter().enumerate() {
            let links: Vec<Option<SyncSender<Vec<u8>>>> = worker_tx
                .iter()
                .enumerate()
                .map(|(j, tx)| (j != index).then(|| tx.clone()))
                .chain(std::iter::once(Some(client_tx.clone())))
                .collect();
            let worker = Worker {
                index: index as u32,
                shape,
                hasher,
                shards,
                tables: HashMap::new(),
                interner: KeywordInterner::new(),
                outbox: (0..links.len()).map(|_| VecDeque::new()).collect(),
                links,
                queries: HashMap::new(),
                stats: WorkerStats {
                    worker: index as u32,
                    ..WorkerStats::default()
                },
            };
            let handle = std::thread::Builder::new()
                .name(format!("hyperdex-worker-{index}"))
                .spawn(move || worker.run(rx))
                .expect("spawn worker thread");
            handles.push(handle);
        }

        Ok(NodeRuntime {
            hasher,
            shards,
            to_worker: worker_tx,
            inbox: client_rx,
            handles,
            next_id: 0,
            client_sent: 0,
            client_received: 0,
        })
    }

    /// The number of worker threads.
    pub fn workers(&self) -> u32 {
        self.shards.workers()
    }

    /// Routes one `T_INSERT` to the owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeywordSet`] when `keywords` is empty.
    pub fn insert(&mut self, object: ObjectId, keywords: KeywordSet) -> Result<(), Error> {
        if keywords.is_empty() {
            return Err(Error::EmptyKeywordSet);
        }
        let bits = self.hasher.vertex_for(&keywords).bits();
        let owner = self.shards.owner_of(bits);
        self.send_frame(
            owner,
            &WireMsg::Insert {
                object: object.raw(),
                keywords,
            },
        );
        Ok(())
    }

    /// Installs whole vertex tables at once (bulk load): entries are
    /// grouped by vertex and shipped as `Handoff` frames to the owning
    /// shards.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeywordSet`] if any entry's set is empty.
    pub fn bulk_load<'a, I>(&mut self, entries: I) -> Result<(), Error>
    where
        I: IntoIterator<Item = (ObjectId, &'a KeywordSet)>,
    {
        let mut by_vertex: HashMap<u64, Vec<(KeywordSet, Vec<u64>)>> = HashMap::new();
        for (object, keywords) in entries {
            if keywords.is_empty() {
                return Err(Error::EmptyKeywordSet);
            }
            let bits = self.hasher.vertex_for(keywords).bits();
            by_vertex
                .entry(bits)
                .or_default()
                .push((keywords.clone(), vec![object.raw()]));
        }
        // Deterministic ship order keeps table construction identical
        // across runs regardless of HashMap iteration.
        let mut vertices: Vec<u64> = by_vertex.keys().copied().collect();
        vertices.sort_unstable();
        for bits in vertices {
            let entries = by_vertex.remove(&bits).expect("key listed");
            let owner = self.shards.owner_of(bits);
            self.send_frame(owner, &WireMsg::Handoff { bits, entries });
        }
        Ok(())
    }

    /// Drain barrier: returns once every worker has processed every
    /// frame enqueued on its inbox before this call. Must not be
    /// called with queries outstanding (only `FlushAck`s may arrive).
    pub fn flush(&mut self) {
        self.next_id += 1;
        let token = self.next_id;
        for w in 0..self.workers() {
            self.send_frame(w, &WireMsg::Flush { token });
        }
        let mut pending = self.workers();
        while pending > 0 {
            match self.recv_frame() {
                WireMsg::FlushAck { token: t, .. } if t == token => pending -= 1,
                other => panic!("unexpected frame during flush barrier: {other:?}"),
            }
        }
    }

    /// Pin search (§3.2): one frame to `F_h(K)`'s owner, one reply.
    pub fn pin_search(&mut self, keywords: &KeywordSet) -> Vec<ObjectId> {
        self.next_id += 1;
        let id = self.next_id;
        let bits = self.hasher.vertex_for(keywords).bits();
        let owner = self.shards.owner_of(bits);
        self.send_frame(
            owner,
            &WireMsg::Pin {
                query_id: id,
                keywords: keywords.clone(),
            },
        );
        match self.recv_frame() {
            WireMsg::PinResults { query_id, objects } if query_id == id => {
                objects.into_iter().map(ObjectId::from_raw).collect()
            }
            other => panic!("unexpected frame awaiting pin results: {other:?}"),
        }
    }

    /// Superset search (§3.3), coordinated by the worker owning the
    /// query root. Blocks until the traversal finishes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroThreshold`] when `threshold == 0`.
    pub fn superset_search(
        &mut self,
        keywords: &KeywordSet,
        threshold: usize,
    ) -> Result<Vec<RuntimeMatch>, Error> {
        if threshold == 0 {
            return Err(Error::ZeroThreshold);
        }
        self.next_id += 1;
        let id = self.next_id;
        let root_bits = self.hasher.vertex_for(keywords).bits();
        let owner = self.shards.owner_of(root_bits);
        self.send_frame(
            owner,
            &WireMsg::Query {
                query_id: id,
                keywords: keywords.clone(),
                threshold: threshold as u64,
            },
        );
        match self.recv_frame() {
            WireMsg::QueryDone { query_id, objects } if query_id == id => Ok(objects
                .into_iter()
                .map(|(raw, extra)| RuntimeMatch {
                    object: ObjectId::from_raw(raw),
                    extra_keywords: extra,
                })
                .collect()),
            other => panic!("unexpected frame awaiting query results: {other:?}"),
        }
    }

    /// Runs `requests` keeping up to `window` of them in flight — the
    /// throughput path: queries rooted on different workers make
    /// progress concurrently while the client collects completions.
    pub fn run_batch(&mut self, requests: &[Request], window: usize) -> Vec<BatchResult> {
        let window = window.max(1);
        let mut out: Vec<Option<BatchResult>> = requests.iter().map(|_| None).collect();
        let mut in_flight: HashMap<u64, (usize, Instant)> = HashMap::new();
        let mut next = 0usize;
        let mut completed = 0usize;

        while completed < requests.len() {
            while next < requests.len() && in_flight.len() < window {
                self.next_id += 1;
                let id = self.next_id;
                let started = Instant::now();
                match &requests[next] {
                    Request::Pin(keywords) => {
                        let bits = self.hasher.vertex_for(keywords).bits();
                        let owner = self.shards.owner_of(bits);
                        self.send_frame(
                            owner,
                            &WireMsg::Pin {
                                query_id: id,
                                keywords: keywords.clone(),
                            },
                        );
                    }
                    Request::Superset {
                        keywords,
                        threshold,
                    } => {
                        let bits = self.hasher.vertex_for(keywords).bits();
                        let owner = self.shards.owner_of(bits);
                        self.send_frame(
                            owner,
                            &WireMsg::Query {
                                query_id: id,
                                keywords: keywords.clone(),
                                threshold: *threshold as u64,
                            },
                        );
                    }
                }
                in_flight.insert(id, (next, started));
                next += 1;
            }

            let (query_id, objects) = match self.recv_frame() {
                WireMsg::PinResults { query_id, objects } => (
                    query_id,
                    objects.into_iter().map(ObjectId::from_raw).collect(),
                ),
                WireMsg::QueryDone { query_id, objects } => (
                    query_id,
                    objects
                        .into_iter()
                        .map(|(raw, _)| ObjectId::from_raw(raw))
                        .collect::<Vec<ObjectId>>(),
                ),
                other => panic!("unexpected frame during batch: {other:?}"),
            };
            let (slot, started) = in_flight
                .remove(&query_id)
                .expect("completion for an in-flight request");
            out[slot] = Some(BatchResult {
                objects,
                latency: started.elapsed(),
            });
            completed += 1;
        }

        out.into_iter().map(|r| r.expect("all completed")).collect()
    }

    /// Runs the drain barrier, stops every worker, joins the threads,
    /// and returns the conservation report.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.flush();
        for w in 0..self.workers() {
            self.send_frame(w, &WireMsg::Shutdown);
        }
        let NodeRuntime {
            to_worker,
            inbox,
            handles,
            client_sent,
            mut client_received,
            ..
        } = self;
        drop(to_worker);
        let workers: Vec<WorkerStats> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        // Drain stragglers buffered on the client inbox (none are
        // expected after the barrier, but every frame must be counted
        // for conservation to be exact).
        while inbox.recv().is_ok() {
            client_received += 1;
        }
        ShutdownReport {
            client_sent,
            client_received,
            workers,
        }
    }

    fn send_frame(&mut self, worker: u32, msg: &WireMsg) {
        // Blocking send is safe from the client: workers always return
        // to their inboxes, so a full channel always drains.
        self.to_worker[worker as usize]
            .send(msg.encode())
            .expect("worker thread alive");
        self.client_sent += 1;
    }

    fn recv_frame(&mut self) -> WireMsg {
        let frame = self.inbox.recv().expect("worker threads alive");
        self.client_received += 1;
        WireMsg::decode_exact(&frame).expect("workers emit well-formed frames")
    }
}

/// In-progress query on its coordinator worker.
#[derive(Debug)]
struct QueryState {
    coord: SupersetCoordinator,
    results: Vec<(u64, u32)>,
    threshold: usize,
}

/// One shard-owning thread. `links[0..W]` address fellow workers
/// (`None` at the worker's own slot), `links[W]` the client.
struct Worker {
    index: u32,
    shape: Shape,
    hasher: KeywordHasher,
    shards: ShardMap,
    tables: HashMap<u64, IndexTable>,
    interner: KeywordInterner,
    links: Vec<Option<SyncSender<Vec<u8>>>>,
    outbox: Vec<VecDeque<Vec<u8>>>,
    queries: HashMap<u64, QueryState>,
    stats: WorkerStats,
}

impl Worker {
    fn client_slot(&self) -> usize {
        self.links.len() - 1
    }

    fn run(mut self, inbox: Receiver<Vec<u8>>) -> WorkerStats {
        let mut shutting_down = false;
        loop {
            self.flush_outboxes();
            if shutting_down && self.outboxes_empty() {
                break;
            }
            // A short timeout (rather than a blocking recv) keeps
            // parked outbox frames moving even when nothing arrives.
            match inbox.recv_timeout(Duration::from_millis(1)) {
                Ok(frame) => {
                    self.stats.frames_received += 1;
                    let msg = WireMsg::decode_exact(&frame)
                        .expect("runtime peers emit well-formed frames");
                    if matches!(msg, WireMsg::Shutdown) {
                        shutting_down = true;
                    } else {
                        self.handle(msg);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.stats
    }

    fn handle(&mut self, msg: WireMsg) {
        match msg {
            WireMsg::Insert { object, keywords } => {
                let kw = self.interner.intern(keywords);
                let bits = self.hasher.vertex_for(&kw).bits();
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted insert");
                if self
                    .tables
                    .entry(bits)
                    .or_default()
                    .insert_arc(kw, ObjectId::from_raw(object))
                {
                    self.stats.inserts += 1;
                }
            }
            WireMsg::Handoff { bits, entries } => {
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted handoff");
                let table = self.tables.entry(bits).or_default();
                for (set, objects) in entries {
                    let kw = self.interner.intern(set);
                    for raw in objects {
                        if table.insert_arc(Arc::clone(&kw), ObjectId::from_raw(raw)) {
                            self.stats.inserts += 1;
                        }
                    }
                }
            }
            WireMsg::Query {
                query_id,
                keywords,
                threshold,
            } => {
                self.stats.queries_coordinated += 1;
                let kw = self.interner.intern(keywords);
                let root = self.hasher.vertex_for(&kw);
                debug_assert_eq!(
                    self.shards.owner_of(root.bits()),
                    self.index,
                    "query routed to a non-root worker"
                );
                let mut state = QueryState {
                    coord: SupersetCoordinator::new(root, kw, threshold as usize),
                    results: Vec::new(),
                    threshold: threshold as usize,
                };
                if !self.drive(query_id, &mut state) {
                    self.queries.insert(query_id, state);
                }
            }
            WireMsg::TQuery {
                query_id,
                bits,
                keywords,
                remaining,
                via_dim,
                coord,
            } => {
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted T_QUERY");
                self.stats.scans += 1;
                let found = scan_table(self.tables.get(&bits), &keywords, remaining as usize);
                let vertex =
                    Vertex::from_bits(self.shape, bits).expect("coordinators stay in the cube");
                // Lemma 3.2: children derive from bits + arrival dim.
                let children = SupersetCoordinator::children_of(vertex, via_dim);
                let objects = found
                    .iter()
                    .map(|r| (r.object.raw(), r.extra_keywords))
                    .collect();
                self.send(
                    coord as usize,
                    &WireMsg::TCont {
                        query_id,
                        objects,
                        children,
                    },
                );
            }
            WireMsg::TCont {
                query_id,
                objects,
                children,
            } => {
                let mut state = self
                    .queries
                    .remove(&query_id)
                    .expect("T_CONT for a live query");
                let found = objects.len();
                state.results.extend(objects);
                state.coord.record_visit(found, children);
                if !self.drive(query_id, &mut state) {
                    self.queries.insert(query_id, state);
                }
            }
            WireMsg::Pin { query_id, keywords } => {
                self.stats.scans += 1;
                let bits = self.hasher.vertex_for(&keywords).bits();
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted pin");
                let objects = self
                    .tables
                    .get(&bits)
                    .map(|t| t.objects_with(&keywords).map(|o| o.raw()).collect())
                    .unwrap_or_default();
                let client = self.client_slot();
                self.send(client, &WireMsg::PinResults { query_id, objects });
            }
            WireMsg::Flush { token } => {
                let client = self.client_slot();
                let worker = self.index;
                self.send(client, &WireMsg::FlushAck { token, worker });
            }
            // Client-bound and control frames never reach a worker's
            // handler (Shutdown is intercepted in the loop).
            WireMsg::QueryDone { .. } | WireMsg::PinResults { .. } | WireMsg::FlushAck { .. } => {
                debug_assert!(false, "client-bound frame delivered to a worker");
            }
            WireMsg::Shutdown => unreachable!("intercepted by the event loop"),
        }
    }

    /// Advances one query until it finishes (results to the client;
    /// returns `true`) or suspends on a remote visit (`T_QUERY` sent;
    /// returns `false`).
    fn drive(&mut self, query_id: u64, state: &mut QueryState) -> bool {
        loop {
            match state.coord.next_step() {
                Step::Finished => {
                    state.results.truncate(state.threshold);
                    let objects = std::mem::take(&mut state.results);
                    let client = self.client_slot();
                    self.send(client, &WireMsg::QueryDone { query_id, objects });
                    return true;
                }
                Step::Visit { bits, via_dim } => {
                    let owner = self.shards.owner_of(bits);
                    if owner == self.index {
                        self.stats.scans += 1;
                        let found = scan_table(
                            self.tables.get(&bits),
                            state.coord.keywords(),
                            state.coord.remaining(),
                        );
                        let vertex =
                            Vertex::from_bits(self.shape, bits).expect("coordinator stays in cube");
                        let count = found.len();
                        state
                            .results
                            .extend(found.iter().map(|r| (r.object.raw(), r.extra_keywords)));
                        state
                            .coord
                            .record_visit(count, SupersetCoordinator::children_of(vertex, via_dim));
                    } else {
                        let keywords: KeywordSet = (**state.coord.keywords()).clone();
                        self.send(
                            owner as usize,
                            &WireMsg::TQuery {
                                query_id,
                                bits,
                                keywords,
                                remaining: state.coord.remaining() as u64,
                                via_dim,
                                coord: self.index,
                            },
                        );
                        return false;
                    }
                }
            }
        }
    }

    fn send(&mut self, dest: usize, msg: &WireMsg) {
        self.outbox[dest].push_back(msg.encode());
        self.flush_outbox(dest);
    }

    fn flush_outboxes(&mut self) {
        for dest in 0..self.outbox.len() {
            self.flush_outbox(dest);
        }
    }

    fn flush_outbox(&mut self, dest: usize) {
        let Some(tx) = &self.links[dest] else {
            debug_assert!(self.outbox[dest].is_empty(), "frames addressed to self");
            return;
        };
        while let Some(frame) = self.outbox[dest].pop_front() {
            match tx.try_send(frame) {
                Ok(()) => self.stats.frames_sent += 1,
                Err(TrySendError::Full(frame)) => {
                    // Bounded channel pushed back: park the frame and
                    // retry on the next loop iteration.
                    self.stats.backpressure_hits += 1;
                    self.outbox[dest].push_front(frame);
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    // Only possible after the barrier, when no protocol
                    // frame can still be pending; drop silently.
                    debug_assert!(false, "send to a disconnected endpoint");
                    return;
                }
            }
        }
    }

    fn outboxes_empty(&self) -> bool {
        self.outbox.iter().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    fn loaded(workers: u32) -> NodeRuntime {
        let mut rt = NodeRuntime::start(RuntimeConfig::new(8, workers).seed(42)).unwrap();
        for (id, kws) in [
            (1, "a"),
            (2, "a b"),
            (3, "a b c"),
            (4, "a c"),
            (5, "b c"),
            (6, "a d e"),
            (7, "x y"),
            (8, "a b d"),
        ] {
            rt.insert(oid(id), set(kws)).unwrap();
        }
        rt.flush();
        rt
    }

    #[test]
    fn insert_pin_superset_roundtrip() {
        for workers in [1, 2, 4] {
            let mut rt = loaded(workers);
            let pin = rt.pin_search(&set("a b"));
            assert_eq!(pin, vec![oid(2)], "{workers} workers");

            let mut ids: Vec<u64> = rt
                .superset_search(&set("a"), usize::MAX - 1)
                .unwrap()
                .iter()
                .map(|m| m.object.raw())
                .collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![1, 2, 3, 4, 6, 8], "{workers} workers");

            let report = rt.shutdown();
            report.assert_conserved();
        }
    }

    #[test]
    fn threshold_caps_results() {
        let mut rt = loaded(4);
        let out = rt.superset_search(&set("a"), 2).unwrap();
        assert_eq!(out.len(), 2);
        rt.shutdown().assert_conserved();
    }

    #[test]
    fn zero_threshold_is_rejected() {
        let mut rt = loaded(2);
        assert!(matches!(
            rt.superset_search(&set("a"), 0),
            Err(Error::ZeroThreshold)
        ));
        rt.shutdown().assert_conserved();
    }

    #[test]
    fn empty_insert_is_rejected_client_side() {
        let mut rt = NodeRuntime::start(RuntimeConfig::new(6, 2)).unwrap();
        assert!(matches!(
            rt.insert(oid(1), KeywordSet::new()),
            Err(Error::EmptyKeywordSet)
        ));
        rt.shutdown().assert_conserved();
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() {
        let corpus: Vec<(ObjectId, KeywordSet)> = [(1, "a b"), (2, "a"), (3, "a b c")]
            .into_iter()
            .map(|(id, k)| (oid(id), set(k)))
            .collect();

        let mut inc = NodeRuntime::start(RuntimeConfig::new(8, 3).seed(7)).unwrap();
        for (id, k) in &corpus {
            inc.insert(*id, k.clone()).unwrap();
        }
        inc.flush();

        let mut bulk = NodeRuntime::start(RuntimeConfig::new(8, 3).seed(7)).unwrap();
        bulk.bulk_load(corpus.iter().map(|(id, k)| (*id, k)))
            .unwrap();
        bulk.flush();

        for query in ["a", "a b", "zzz"] {
            let mut a: Vec<u64> = inc
                .superset_search(&set(query), 100)
                .unwrap()
                .iter()
                .map(|m| m.object.raw())
                .collect();
            let mut b: Vec<u64> = bulk
                .superset_search(&set(query), 100)
                .unwrap()
                .iter()
                .map(|m| m.object.raw())
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {query}");
        }
        inc.shutdown().assert_conserved();
        bulk.shutdown().assert_conserved();
    }

    #[test]
    fn batch_matches_one_at_a_time() {
        let mut rt = loaded(4);
        let requests = vec![
            Request::Superset {
                keywords: set("a"),
                threshold: 100,
            },
            Request::Pin(set("a b")),
            Request::Superset {
                keywords: set("b"),
                threshold: 100,
            },
            Request::Pin(set("zzz")),
        ];
        let batch = rt.run_batch(&requests, 4);
        assert_eq!(batch.len(), 4);

        let mut solo: Vec<u64> = rt
            .superset_search(&set("a"), 100)
            .unwrap()
            .iter()
            .map(|m| m.object.raw())
            .collect();
        solo.sort_unstable();
        let mut batched: Vec<u64> = batch[0].objects.iter().map(|o| o.raw()).collect();
        batched.sort_unstable();
        assert_eq!(batched, solo);
        assert_eq!(batch[1].objects, vec![oid(2)]);
        assert!(batch[3].objects.is_empty());
        rt.shutdown().assert_conserved();
    }

    #[test]
    fn conservation_holds_on_an_idle_runtime() {
        let rt = NodeRuntime::start(RuntimeConfig::new(8, 8)).unwrap();
        let report = rt.shutdown();
        report.assert_conserved();
        // Flush (8) + acks (8) + shutdowns (8).
        assert_eq!(report.total_sent(), 24);
    }

    #[test]
    fn tiny_channels_still_complete_under_backpressure() {
        // Capacity 1 forces constant try_send rejections; the outbox
        // discipline must still deliver everything.
        let mut rt =
            NodeRuntime::start(RuntimeConfig::new(8, 4).seed(3).channel_capacity(1)).unwrap();
        for i in 0..200u64 {
            rt.insert(oid(i), set(&format!("common tag{}", i % 5)))
                .unwrap();
        }
        rt.flush();
        let out = rt.superset_search(&set("common"), usize::MAX - 1).unwrap();
        assert_eq!(out.len(), 200);
        let report = rt.shutdown();
        report.assert_conserved();
    }
}
