//! The threaded node runtime: sharded workers, bounded channels,
//! explicit backpressure, fault injection, and supervised recovery.
//!
//! # Shard ownership
//!
//! [`NodeRuntime::start`] spawns `workers` OS threads. Each owns the
//! disjoint set of hypercube vertices [`ShardMap`] assigns to it —
//! `IndexTable`s, interners, and per-query coordinator state live on
//! exactly one thread and are never shared, never locked. Everything
//! that crosses a thread boundary is a length-prefixed byte frame
//! ([`crate::wire`]), so the worker boundary behaves like a socket.
//!
//! # Channel topology and backpressure
//!
//! Every endpoint (each worker, plus the client handle) has one
//! bounded `std::sync::mpsc::sync_channel` inbox. The client may
//! block on `send` — workers always return to draining their inboxes,
//! so a blocked client always unblocks. Workers themselves **never**
//! block on a send: a full peer inbox would otherwise deadlock two
//! workers sending to each other. Instead a worker `try_send`s, and on
//! `Full` parks the frame in a per-destination outbox that is
//! re-flushed on every loop iteration, counting the event in
//! [`WorkerStats::backpressure_hits`]. When a worker is fully idle —
//! no parked frames, no armed deadlines — it blocks on `recv` and
//! burns no CPU ([`WorkerStats::wakeups`] counts the timed polls it
//! did need).
//!
//! # Queries
//!
//! The worker owning `F_h(K)` coordinates each query. The sequential
//! path ([`NodeRuntime::superset_search`]) runs the same
//! [`SupersetCoordinator`] machine as the simulator and the direct
//! engine, one visit outstanding at a time. The fault-tolerant path
//! ([`NodeRuntime::superset_search_ft`]) runs the shared
//! [`FtCoordinator`] machine — the very one `ProtocolSim` drives under
//! virtual time — with wall-clock deadlines, retry backoff, and
//! subtree re-delegation (Lemma 3.2), so all three executors share one
//! recovery implementation.
//!
//! # Faults and supervision
//!
//! [`NodeRuntime::start_faulted`] arms a seeded [`FaultPlan`]: worker→
//! worker traversal frames may be dropped, duplicated, or delayed
//! (which reorders), and whole workers crash-stop at scheduled points,
//! losing every byte of in-memory state. A supervisor thread owns the
//! worker join handles; when a worker reports a crash the supervisor
//! respawns it **on the same inbox channel** (peers never observe a
//! disconnect — exactly a process restart behind a stable address),
//! replays the crashed shard's index state from the client's load
//! journal as `Handoff` frames, and finishes with `RepairDone`. Until
//! repair completes the respawned worker parks query frames, so scans
//! never run against a half-restored table. If recovery cannot finish
//! within the client's deadline, [`NodeRuntime::superset_search_ft`]
//! degrades gracefully: it returns a partial result whose
//! [`CoverageReport`] accounts every unreached vertex exactly.
//!
//! # Shutdown protocol and conservation
//!
//! [`NodeRuntime::shutdown`] first runs the flush barrier (a `Flush`
//! token to every worker, answered by `FlushAck` after all prior
//! frames on that inbox were processed), then hands control to the
//! supervisor, which sends `Shutdown`, collects every worker's exit,
//! and drains the exited inboxes. The conservation law generalizes to
//! injected faults:
//!
//! ```text
//! sent + duplicated == received + dropped + drained
//! ```
//!
//! where `dropped` counts injector drops, abandoned delay stashes, and
//! frames lost inside crashed workers, and `drained` counts frames
//! still buffered on an inbox after its worker exited. The parity
//! harness and the bench assert it on every run, faulted or not.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hyperdex_core::{
    CoverageReport, Error, KeywordHasher, KeywordSet, ObjectId, RecoveryStrategy, StoreBackend,
};
use hyperdex_hypercube::Shape;

use crate::fault::{FaultInjector, FaultPlan};
use crate::transport::{count_frames, take_frame, ChannelTransport};
use crate::worker::{run_worker, ExitCause, WorkerContext, WorkerExit, WorkerStats};

/// The insert journal: `(vertex bits, encoded frame)` per applied
/// insert, shared between the client handle and the supervisor so a
/// respawned worker's shard can be replayed.
type Journal = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;
use crate::shard::{ShardMap, ShardPolicy};
use crate::wire::WireMsg;

/// How a [`NodeRuntime`] is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Hypercube dimension `r` (1 ..= 63).
    pub r: u8,
    /// Seed for keyword hashing and shard placement.
    pub seed: u64,
    /// Worker threads (each owns one shard); at least 1.
    pub workers: u32,
    /// Bound of every inbox channel, in frames.
    pub channel_capacity: usize,
    /// Vertex → worker placement. Defaults to [`ShardPolicy::Prefix`]
    /// (locality-preserving); [`ShardPolicy::Hash`] is the legacy
    /// scatter, kept selectable so benches report both.
    pub policy: ShardPolicy,
    /// Posting-storage backend for every shard table. Defaults to the
    /// `HYPERDEX_STORE` environment selection (DESIGN.md §17).
    pub store: StoreBackend,
}

impl RuntimeConfig {
    /// A config with the default seed (0), channel bound (256), and
    /// prefix shard placement.
    pub fn new(r: u8, workers: u32) -> RuntimeConfig {
        RuntimeConfig {
            r,
            seed: 0,
            workers,
            channel_capacity: 256,
            policy: ShardPolicy::default(),
            store: StoreBackend::from_env(),
        }
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> RuntimeConfig {
        self.seed = seed;
        self
    }

    /// Overrides the per-inbox channel bound.
    pub fn channel_capacity(mut self, frames: usize) -> RuntimeConfig {
        self.channel_capacity = frames.max(1);
        self
    }

    /// Overrides the posting-storage backend.
    pub fn store(mut self, store: StoreBackend) -> RuntimeConfig {
        self.store = store;
        self
    }

    /// Overrides the shard placement policy.
    pub fn policy(mut self, policy: ShardPolicy) -> RuntimeConfig {
        self.policy = policy;
        self
    }

    /// The [`ShardMap`] this config's runtime routes with — exposed so
    /// tests and benches can compute ownership (e.g. pick a crash
    /// victim that provably holds data) without duplicating the
    /// construction recipe.
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::with_policy(self.policy, self.r, self.workers.max(1), self.seed)
    }
}

/// The supervisor thread's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Workers respawned after a crash.
    pub respawns: u64,
    /// Journal frames replayed into respawned workers.
    pub replayed_frames: u64,
    /// Frames the supervisor itself sent (replays, `RepairDone`,
    /// `Shutdown`).
    pub frames_sent: u64,
    /// Frames drained from inboxes after their workers exited.
    pub frames_drained: u64,
}

/// Frame accounting for a whole runtime run, built at shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Frames the client handle sent.
    pub client_sent: u64,
    /// Frames the client handle received (including the final drain).
    pub client_received: u64,
    /// Per-worker counters, indexed by shard (all incarnations
    /// merged).
    pub workers: Vec<WorkerStats>,
    /// The supervisor's counters.
    pub supervisor: SupervisorStats,
}

impl ShutdownReport {
    /// Logical frames sent by every endpoint (client, workers,
    /// supervisor).
    pub fn total_sent(&self) -> u64 {
        self.client_sent
            + self.supervisor.frames_sent
            + self.workers.iter().map(|w| w.frames_sent).sum::<u64>()
    }

    /// Frames received by every endpoint.
    pub fn total_received(&self) -> u64 {
        self.client_received + self.workers.iter().map(|w| w.frames_received).sum::<u64>()
    }

    /// Frames lost to injection or crashes.
    pub fn total_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.frames_dropped).sum()
    }

    /// Extra copies the injector delivered.
    pub fn total_duplicated(&self) -> u64 {
        self.workers.iter().map(|w| w.frames_duplicated).sum()
    }

    /// Frames unaccounted for after every thread exited. The
    /// conservation law says this is zero: every logical send was
    /// either delivered (possibly twice), dropped with a count, or
    /// drained from a dead worker's inbox.
    pub fn in_flight(&self) -> u64 {
        (self.total_sent() + self.total_duplicated()).saturating_sub(
            self.total_received() + self.total_dropped() + self.supervisor.frames_drained,
        )
    }

    /// Panics unless `sent + duplicated == received + dropped +
    /// drained` (no frame lost or conjured, even under injection).
    pub fn assert_conserved(&self) {
        assert_eq!(
            self.total_sent() + self.total_duplicated(),
            self.total_received() + self.total_dropped() + self.supervisor.frames_drained,
            "message conservation violated: {self:?}"
        );
    }
}

/// One match from a runtime superset search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeMatch {
    /// The matching object.
    pub object: ObjectId,
    /// `|K'| − |K|`: how many keywords beyond the query it carries.
    pub extra_keywords: u32,
}

/// One request of a pipelined [`NodeRuntime::run_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Exact-match pin lookup.
    Pin(KeywordSet),
    /// Superset search wanting up to `threshold` results.
    Superset {
        /// The queried keyword set.
        keywords: KeywordSet,
        /// Results wanted.
        threshold: usize,
    },
}

/// One completed batch request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult {
    /// Matching object ids (set semantics; order is arrival order).
    pub objects: Vec<ObjectId>,
    /// Send-to-completion wall time for this request.
    pub latency: Duration,
}

/// Knobs for [`NodeRuntime::superset_search_ft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtSearchOptions {
    /// Recovery behaviour on a missed deadline. The runtime arms real
    /// timers only for [`RecoveryStrategy::RetryOnly`] and
    /// [`RecoveryStrategy::Redelegate`]; `Naive` never recovers (the
    /// client deadline is its only bound) and `ReplicatedFailover`
    /// re-delegates without the simulator-only secondary sweep.
    pub strategy: RecoveryStrategy,
    /// Retransmissions per child before declaring it dead.
    pub max_retries: u32,
    /// First-attempt child deadline in milliseconds; doubles per
    /// retry.
    pub base_timeout_ms: u64,
    /// Overall per-attempt client deadline in milliseconds. If the
    /// coordinator itself dies, the client re-issues the query after
    /// this long.
    pub attempt_timeout_ms: u64,
    /// How many times the client re-issues the query before returning
    /// a degraded result.
    pub attempts: u32,
}

impl Default for FtSearchOptions {
    fn default() -> FtSearchOptions {
        FtSearchOptions {
            strategy: RecoveryStrategy::Redelegate,
            max_retries: 2,
            base_timeout_ms: 25,
            attempt_timeout_ms: 2_000,
            attempts: 3,
        }
    }
}

/// Outcome of a fault-tolerant runtime search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtSearchOutcome {
    /// The matches collected (complete or partial).
    pub matches: Vec<RuntimeMatch>,
    /// `true` when every subcube vertex was either scanned or the
    /// threshold was met — the result set is exactly what a fault-free
    /// run returns.
    pub complete: bool,
    /// Client attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// The coordinator's exact coverage accounting; `None` when no
    /// coordinator ever answered (every attempt timed out).
    pub coverage: Option<CoverageReport>,
}

/// Client handle to a running sharded cluster. All methods are
/// synchronous from the caller's point of view; concurrency lives in
/// the worker threads ([`NodeRuntime::run_batch`] keeps a window of
/// requests in flight to exploit it).
#[derive(Debug)]
pub struct NodeRuntime {
    r: u8,
    hasher: KeywordHasher,
    shards: ShardMap,
    to_worker: Vec<SyncSender<Vec<u8>>>,
    inbox: Receiver<Vec<u8>>,
    /// Frames decoded out of a multi-frame packet, ahead of the inbox.
    pending: VecDeque<WireMsg>,
    supervisor_tx: Sender<SupervisorEvent>,
    supervisor: Option<JoinHandle<(Vec<WorkerStats>, SupervisorStats)>>,
    journal: Option<Journal>,
    next_id: u64,
    client_sent: u64,
    client_received: u64,
}

impl NodeRuntime {
    /// Spawns the worker threads (fault-free) and returns the client
    /// handle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] when `r` is outside `1..=63`.
    pub fn start(cfg: RuntimeConfig) -> Result<NodeRuntime, Error> {
        NodeRuntime::start_faulted(cfg, FaultPlan::default())
    }

    /// Spawns the worker threads under a seeded fault plan. Injection
    /// applies to worker→worker traversal frames only; loads and
    /// control frames stay reliable (see [`crate::fault`]). Crash
    /// recovery requires the load journal, which is kept exactly when
    /// the plan schedules crashes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] when `r` is outside `1..=63`.
    pub fn start_faulted(cfg: RuntimeConfig, plan: FaultPlan) -> Result<NodeRuntime, Error> {
        let hasher = KeywordHasher::new(cfg.r, cfg.seed)?;
        let shape = Shape::new(cfg.r)?;
        let workers = cfg.workers.max(1);
        let shards = cfg.shard_map();
        let cap = cfg.channel_capacity.max(1);

        let mut worker_tx = Vec::with_capacity(workers as usize);
        let mut worker_rx = Vec::with_capacity(workers as usize);
        for _ in 0..workers {
            let (tx, rx) = sync_channel::<Vec<u8>>(cap);
            worker_tx.push(tx);
            worker_rx.push(rx);
        }
        // The client inbox absorbs replies from every worker; scale its
        // bound so a reply burst cannot stall the whole fleet.
        let (client_tx, client_rx) = sync_channel::<Vec<u8>>(cap * workers as usize);
        let (event_tx, event_rx) = channel::<SupervisorEvent>();

        let journal =
            (!plan.crashes.is_empty()).then(|| Arc::new(Mutex::new(Vec::<(u64, Vec<u8>)>::new())));

        let spawner = Spawner {
            shape,
            hasher,
            shards,
            store: cfg.store,
            worker_tx: worker_tx.clone(),
            client_tx,
            event_tx: event_tx.clone(),
        };
        let mut handles: Vec<Option<JoinHandle<()>>> = Vec::with_capacity(workers as usize);
        for (index, rx) in worker_rx.into_iter().enumerate() {
            let injector = plan
                .is_active()
                .then(|| FaultInjector::new(plan.clone(), index as u32));
            handles.push(Some(spawner.spawn(index as u32, rx, injector, false)));
        }
        let sup_journal = journal.clone();
        let supervisor = std::thread::Builder::new()
            .name("hyperdex-supervisor".into())
            .spawn(move || supervise(spawner, handles, sup_journal, event_rx))
            .expect("spawn supervisor thread");

        Ok(NodeRuntime {
            r: cfg.r,
            hasher,
            shards,
            to_worker: worker_tx,
            inbox: client_rx,
            pending: VecDeque::new(),
            supervisor_tx: event_tx,
            supervisor: Some(supervisor),
            journal,
            next_id: 0,
            client_sent: 0,
            client_received: 0,
        })
    }

    /// The number of worker threads.
    pub fn workers(&self) -> u32 {
        self.shards.workers()
    }

    /// The hypercube dimension `r`.
    pub fn r(&self) -> u8 {
        self.r
    }

    /// Routes one `T_INSERT` to the owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeywordSet`] when `keywords` is empty.
    pub fn insert(&mut self, object: ObjectId, keywords: KeywordSet) -> Result<(), Error> {
        if keywords.is_empty() {
            return Err(Error::EmptyKeywordSet);
        }
        let bits = self.hasher.vertex_for(&keywords).bits();
        let owner = self.shards.owner_of(bits);
        let msg = WireMsg::Insert {
            object: object.raw(),
            keywords,
        };
        self.journal_frame(bits, &msg);
        self.send_frame(owner, &msg);
        Ok(())
    }

    /// Installs whole vertex tables at once (bulk load): entries are
    /// grouped by vertex and shipped as `Handoff` frames to the owning
    /// shards.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyKeywordSet`] if any entry's set is empty.
    pub fn bulk_load<'a, I>(&mut self, entries: I) -> Result<(), Error>
    where
        I: IntoIterator<Item = (ObjectId, &'a KeywordSet)>,
    {
        let mut by_vertex: HashMap<u64, Vec<(KeywordSet, Vec<u64>)>> = HashMap::new();
        for (object, keywords) in entries {
            if keywords.is_empty() {
                return Err(Error::EmptyKeywordSet);
            }
            let bits = self.hasher.vertex_for(keywords).bits();
            by_vertex
                .entry(bits)
                .or_default()
                .push((keywords.clone(), vec![object.raw()]));
        }
        // Deterministic ship order keeps table construction identical
        // across runs regardless of HashMap iteration.
        let mut vertices: Vec<u64> = by_vertex.keys().copied().collect();
        vertices.sort_unstable();
        for bits in vertices {
            let entries = by_vertex.remove(&bits).expect("key listed");
            let owner = self.shards.owner_of(bits);
            let msg = WireMsg::Handoff { bits, entries };
            self.journal_frame(bits, &msg);
            self.send_frame(owner, &msg);
        }
        Ok(())
    }

    /// Drain barrier: returns once every worker has processed every
    /// frame enqueued on its inbox before this call. Must not be
    /// called with queries outstanding (only `FlushAck`s may arrive).
    pub fn flush(&mut self) {
        self.next_id += 1;
        let token = self.next_id;
        for w in 0..self.workers() {
            self.send_frame(w, &WireMsg::Flush { token });
        }
        let mut pending = self.workers();
        while pending > 0 {
            match self.recv_frame() {
                WireMsg::FlushAck { token: t, .. } if t == token => pending -= 1,
                other => panic!("unexpected frame during flush barrier: {other:?}"),
            }
        }
    }

    /// Pin search (§3.2): one frame to `F_h(K)`'s owner, one reply.
    pub fn pin_search(&mut self, keywords: &KeywordSet) -> Vec<ObjectId> {
        self.next_id += 1;
        let id = self.next_id;
        let bits = self.hasher.vertex_for(keywords).bits();
        let owner = self.shards.owner_of(bits);
        self.send_frame(
            owner,
            &WireMsg::Pin {
                query_id: id,
                keywords: keywords.clone(),
            },
        );
        match self.recv_frame() {
            WireMsg::PinResults { query_id, objects } if query_id == id => {
                objects.into_iter().map(ObjectId::from_raw).collect()
            }
            other => panic!("unexpected frame awaiting pin results: {other:?}"),
        }
    }

    /// Superset search (§3.3), coordinated by the worker owning the
    /// query root. Blocks until the traversal finishes. This is the
    /// perfect-transport path — under an active fault plan use
    /// [`NodeRuntime::superset_search_ft`], which recovers from loss
    /// and crashes instead of hanging on them.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroThreshold`] when `threshold == 0`.
    pub fn superset_search(
        &mut self,
        keywords: &KeywordSet,
        threshold: usize,
    ) -> Result<Vec<RuntimeMatch>, Error> {
        if threshold == 0 {
            return Err(Error::ZeroThreshold);
        }
        self.next_id += 1;
        let id = self.next_id;
        let owner = self.coordinator_for(id);
        self.send_frame(
            owner,
            &WireMsg::Query {
                query_id: id,
                keywords: keywords.clone(),
                threshold: threshold as u64,
            },
        );
        match self.recv_frame() {
            WireMsg::QueryDone { query_id, objects } if query_id == id => Ok(objects
                .into_iter()
                .map(|(raw, extra)| RuntimeMatch {
                    object: ObjectId::from_raw(raw),
                    extra_keywords: extra,
                })
                .collect()),
            other => panic!("unexpected frame awaiting query results: {other:?}"),
        }
    }

    /// Fault-tolerant superset search (§3.4 ported to the runtime):
    /// the coordinator arms per-child deadlines, retries with
    /// exponential backoff, and re-delegates dead subtrees; the client
    /// re-issues the whole query if the coordinator itself dies, and
    /// returns a coverage-accounted partial result when recovery
    /// cannot finish in time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroThreshold`] when `threshold == 0` and
    /// [`Error::ZeroTimeout`] when `opts.base_timeout_ms == 0`.
    pub fn superset_search_ft(
        &mut self,
        keywords: &KeywordSet,
        threshold: usize,
        opts: &FtSearchOptions,
    ) -> Result<FtSearchOutcome, Error> {
        if threshold == 0 {
            return Err(Error::ZeroThreshold);
        }
        if opts.base_timeout_ms == 0 {
            return Err(Error::ZeroTimeout);
        }
        let root_bits = self.hasher.vertex_for(keywords).bits();
        let owner = self.shards.owner_of(root_bits);
        let attempts = opts.attempts.max(1);
        for attempt in 1..=attempts {
            self.next_id += 1;
            let id = self.next_id;
            self.send_frame(
                owner,
                &WireMsg::FtQuery {
                    query_id: id,
                    keywords: keywords.clone(),
                    threshold: threshold as u64,
                    strategy: opts.strategy,
                    max_retries: opts.max_retries,
                    base_timeout_ms: opts.base_timeout_ms,
                },
            );
            let deadline = Instant::now() + Duration::from_millis(opts.attempt_timeout_ms.max(1));
            while let Some(msg) = self.recv_frame_within(deadline) {
                match msg {
                    WireMsg::FtQueryDone {
                        query_id,
                        objects,
                        subcube,
                        reached,
                        retries,
                        timeouts,
                        redelegations,
                        queries_sent,
                        conts,
                        result_messages,
                        skipped,
                    } if query_id == id => {
                        let complete = skipped.is_empty();
                        return Ok(FtSearchOutcome {
                            matches: objects
                                .into_iter()
                                .map(|(raw, extra)| RuntimeMatch {
                                    object: ObjectId::from_raw(raw),
                                    extra_keywords: extra,
                                })
                                .collect(),
                            complete,
                            attempts: attempt,
                            coverage: Some(CoverageReport {
                                strategy: opts.strategy,
                                subcube_vertices: subcube,
                                vertices_reached: reached,
                                vertices_skipped: skipped.len() as u64,
                                skipped,
                                queries_sent,
                                conts,
                                result_messages,
                                retries,
                                timeouts,
                                redelegations,
                                pruned_subtrees: 0,
                                vertices_pruned: 0,
                                failed_over: false,
                                secondary_reached: 0,
                                secondary_skipped: 0,
                                // Wall-clock runs have no virtual time.
                                elapsed: hyperdex_simnet::time::SimDuration::ZERO,
                            }),
                        });
                    }
                    // A completion for an abandoned attempt: the old
                    // coordinator was slow, not dead. Discard by id.
                    WireMsg::FtQueryDone { .. } => {}
                    other => panic!("unexpected frame awaiting FT results: {other:?}"),
                }
            }
        }
        // Every attempt timed out — no coordinator ever answered.
        // Degrade with an honest "nothing confirmed" report.
        Ok(FtSearchOutcome {
            matches: Vec::new(),
            complete: false,
            attempts,
            coverage: None,
        })
    }

    /// Coordinator for sequential query `id`: plain round-robin. Any
    /// worker can coordinate any query — the root's region reaches its
    /// owner as a delegated batch like every other region — and
    /// spreading coordinators keeps one popular root prefix from
    /// serializing a whole mix on a single thread.
    fn coordinator_for(&self, id: u64) -> u32 {
        (id % self.to_worker.len() as u64) as u32
    }

    /// Runs `requests` keeping up to `window` of them in flight — the
    /// throughput path: queries rooted on different workers make
    /// progress concurrently while the client collects completions.
    pub fn run_batch(&mut self, requests: &[Request], window: usize) -> Vec<BatchResult> {
        let window = window.max(1);
        let mut out: Vec<Option<BatchResult>> = requests.iter().map(|_| None).collect();
        let mut in_flight: HashMap<u64, (usize, Instant)> = HashMap::new();
        let mut next = 0usize;
        let mut completed = 0usize;

        while completed < requests.len() {
            while next < requests.len() && in_flight.len() < window {
                self.next_id += 1;
                let id = self.next_id;
                let started = Instant::now();
                match &requests[next] {
                    Request::Pin(keywords) => {
                        let bits = self.hasher.vertex_for(keywords).bits();
                        let owner = self.shards.owner_of(bits);
                        self.send_frame(
                            owner,
                            &WireMsg::Pin {
                                query_id: id,
                                keywords: keywords.clone(),
                            },
                        );
                    }
                    Request::Superset {
                        keywords,
                        threshold,
                    } => {
                        let owner = self.coordinator_for(id);
                        self.send_frame(
                            owner,
                            &WireMsg::Query {
                                query_id: id,
                                keywords: keywords.clone(),
                                threshold: *threshold as u64,
                            },
                        );
                    }
                }
                in_flight.insert(id, (next, started));
                next += 1;
            }

            let (query_id, objects) = match self.recv_frame() {
                WireMsg::PinResults { query_id, objects } => (
                    query_id,
                    objects.into_iter().map(ObjectId::from_raw).collect(),
                ),
                WireMsg::QueryDone { query_id, objects } => (
                    query_id,
                    objects
                        .into_iter()
                        .map(|(raw, _)| ObjectId::from_raw(raw))
                        .collect::<Vec<ObjectId>>(),
                ),
                other => panic!("unexpected frame during batch: {other:?}"),
            };
            let (slot, started) = in_flight
                .remove(&query_id)
                .expect("completion for an in-flight request");
            out[slot] = Some(BatchResult {
                objects,
                latency: started.elapsed(),
            });
            completed += 1;
        }

        out.into_iter().map(|r| r.expect("all completed")).collect()
    }

    /// Runs the drain barrier, hands shutdown to the supervisor, joins
    /// it, and returns the conservation report.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.flush();
        self.supervisor_tx
            .send(SupervisorEvent::ClientShutdown)
            .expect("supervisor alive");
        let NodeRuntime {
            to_worker,
            inbox,
            supervisor,
            client_sent,
            mut client_received,
            ..
        } = self;
        drop(to_worker);
        let (workers, supervisor_stats) = supervisor
            .expect("supervisor handle present")
            .join()
            .expect("supervisor thread panicked");
        // Drain stragglers buffered on the client inbox (none are
        // expected after the barrier, but every frame must be counted
        // for conservation to be exact).
        while let Ok(packet) = inbox.recv() {
            client_received += count_frames(&packet);
        }
        ShutdownReport {
            client_sent,
            client_received,
            workers,
            supervisor: supervisor_stats,
        }
    }

    fn journal_frame(&mut self, bits: u64, msg: &WireMsg) {
        if let Some(journal) = &self.journal {
            journal
                .lock()
                .expect("journal lock")
                .push((bits, msg.encode()));
        }
    }

    fn send_frame(&mut self, worker: u32, msg: &WireMsg) {
        // Blocking send is safe from the client: workers always return
        // to their inboxes (a crashed worker's channel survives into
        // its respawn), so a full channel always drains.
        self.to_worker[worker as usize]
            .send(msg.encode())
            .expect("worker channel alive");
        self.client_sent += 1;
    }

    /// Splits a fabric packet (one or more coalesced frames) into the
    /// pending queue, counting every logical frame as received.
    fn absorb_packet(&mut self, packet: &[u8]) {
        let mut rest = packet;
        while !rest.is_empty() {
            let (frame, tail) = take_frame(rest).expect("workers emit well-formed frames");
            rest = tail;
            self.client_received += 1;
            self.pending
                .push_back(WireMsg::decode_exact(frame).expect("workers emit well-formed frames"));
        }
    }

    fn recv_frame(&mut self) -> WireMsg {
        loop {
            if let Some(msg) = self.pending.pop_front() {
                return msg;
            }
            let packet = self.inbox.recv().expect("worker threads alive");
            self.absorb_packet(&packet);
        }
    }

    fn recv_frame_within(&mut self, deadline: Instant) -> Option<WireMsg> {
        loop {
            if let Some(msg) = self.pending.pop_front() {
                return Some(msg);
            }
            let wait = deadline.saturating_duration_since(Instant::now());
            if wait.is_zero() {
                return None;
            }
            match self.inbox.recv_timeout(wait) {
                Ok(packet) => self.absorb_packet(&packet),
                Err(_) => return None,
            }
        }
    }
}

/// Everything the supervisor needs to (re)build a worker.
struct Spawner {
    shape: Shape,
    hasher: KeywordHasher,
    shards: ShardMap,
    store: StoreBackend,
    worker_tx: Vec<SyncSender<Vec<u8>>>,
    client_tx: SyncSender<Vec<u8>>,
    event_tx: Sender<SupervisorEvent>,
}

impl Spawner {
    /// Spawns (or respawns) worker `index` on `inbox`. A respawn
    /// starts in repair mode: query frames park until `RepairDone`.
    fn spawn(
        &self,
        index: u32,
        inbox: Receiver<Vec<u8>>,
        injector: Option<FaultInjector>,
        repairing: bool,
    ) -> JoinHandle<()> {
        let links: Vec<Option<SyncSender<Vec<u8>>>> = self
            .worker_tx
            .iter()
            .enumerate()
            .map(|(j, tx)| (j != index as usize).then(|| tx.clone()))
            .chain(std::iter::once(Some(self.client_tx.clone())))
            .collect();
        let ctx = WorkerContext {
            index,
            shape: self.shape,
            hasher: self.hasher,
            shards: self.shards,
            store: self.store,
            injector,
            repairing,
        };
        let event_tx = self.event_tx.clone();
        std::thread::Builder::new()
            .name(format!("hyperdex-worker-{index}"))
            .spawn(move || {
                let exit = run_worker(ctx, Box::new(ChannelTransport::new(links)), inbox);
                let _ = event_tx.send(SupervisorEvent::Exited(exit));
            })
            .expect("spawn worker thread")
    }
}

enum SupervisorEvent {
    Exited(WorkerExit),
    ClientShutdown,
}

/// The supervisor loop: collect exits, respawn+repair crashed workers,
/// broadcast shutdown, and drain dead inboxes so conservation closes.
fn supervise(
    spawner: Spawner,
    mut handles: Vec<Option<JoinHandle<()>>>,
    journal: Option<Journal>,
    events: Receiver<SupervisorEvent>,
) -> (Vec<WorkerStats>, SupervisorStats) {
    let workers = spawner.worker_tx.len();
    let mut stats: Vec<WorkerStats> = (0..workers)
        .map(|i| WorkerStats {
            worker: i as u32,
            ..WorkerStats::default()
        })
        .collect();
    let mut sup = SupervisorStats::default();
    let mut exited: Vec<Option<Receiver<Vec<u8>>>> = (0..workers).map(|_| None).collect();
    let mut live = workers;
    let mut shutting = false;

    while live > 0 {
        let event = if shutting {
            // Poll so frames parked behind a full dead inbox keep
            // draining while the last workers flush and exit.
            match events.recv_timeout(Duration::from_millis(1)) {
                Ok(e) => Some(e),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match events.recv() {
                Ok(e) => Some(e),
                Err(_) => break,
            }
        };
        match event {
            Some(SupervisorEvent::ClientShutdown) => {
                shutting = true;
                for tx in &spawner.worker_tx {
                    tx.send(WireMsg::Shutdown.encode())
                        .expect("worker channel alive");
                    sup.frames_sent += 1;
                }
            }
            Some(SupervisorEvent::Exited(exit)) => {
                let i = exit.stats.worker as usize;
                if let Some(handle) = handles[i].take() {
                    let _ = handle.join();
                }
                stats[i].merge(&exit.stats);
                match exit.cause {
                    ExitCause::Clean => {
                        exited[i] = Some(exit.inbox);
                        live -= 1;
                    }
                    ExitCause::Crashed if shutting => {
                        // The run is over; a respawn would only race the
                        // barrier. Treat the crash as this worker's exit
                        // and drain whatever it never read.
                        exited[i] = Some(exit.inbox);
                        live -= 1;
                    }
                    ExitCause::Crashed => {
                        sup.respawns += 1;
                        // Respawn FIRST so the backlog (and our replay)
                        // drains; respawned workers run fault-free.
                        handles[i] = Some(spawner.spawn(i as u32, exit.inbox, None, true));
                        if let Some(journal) = &journal {
                            let entries = journal.lock().expect("journal lock");
                            for (bits, frame) in entries.iter() {
                                if spawner.shards.owner_of(*bits) == i as u32 {
                                    spawner.worker_tx[i]
                                        .send(frame.clone())
                                        .expect("worker channel alive");
                                    sup.frames_sent += 1;
                                    sup.replayed_frames += 1;
                                }
                            }
                        }
                        spawner.worker_tx[i]
                            .send(WireMsg::RepairDone { worker: i as u32 }.encode())
                            .expect("worker channel alive");
                        sup.frames_sent += 1;
                    }
                }
            }
            None => {}
        }
        if shutting {
            for rx in exited.iter().flatten() {
                while let Ok(packet) = rx.try_recv() {
                    sup.frames_drained += count_frames(&packet);
                }
            }
        }
    }
    // All workers have exited: nothing can still be sending. One final
    // sweep closes the books.
    for rx in exited.iter().flatten() {
        while let Ok(packet) = rx.try_recv() {
            sup.frames_drained += count_frames(&packet);
        }
    }
    (stats, sup)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    const CORPUS: &[(u64, &str)] = &[
        (1, "a"),
        (2, "a b"),
        (3, "a b c"),
        (4, "a c"),
        (5, "b c"),
        (6, "a d e"),
        (7, "x y"),
        (8, "a b d"),
    ];

    fn loaded(workers: u32) -> NodeRuntime {
        loaded_faulted(workers, FaultPlan::default())
    }

    fn loaded_faulted(workers: u32, plan: FaultPlan) -> NodeRuntime {
        let mut rt =
            NodeRuntime::start_faulted(RuntimeConfig::new(8, workers).seed(42), plan).unwrap();
        for &(id, kws) in CORPUS {
            rt.insert(oid(id), set(kws)).unwrap();
        }
        rt.flush();
        rt
    }

    #[test]
    fn insert_pin_superset_roundtrip() {
        for workers in [1, 2, 4] {
            let mut rt = loaded(workers);
            let pin = rt.pin_search(&set("a b"));
            assert_eq!(pin, vec![oid(2)], "{workers} workers");

            let mut ids: Vec<u64> = rt
                .superset_search(&set("a"), usize::MAX - 1)
                .unwrap()
                .iter()
                .map(|m| m.object.raw())
                .collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![1, 2, 3, 4, 6, 8], "{workers} workers");

            let report = rt.shutdown();
            report.assert_conserved();
        }
    }

    #[test]
    fn threshold_caps_results() {
        let mut rt = loaded(4);
        let out = rt.superset_search(&set("a"), 2).unwrap();
        assert_eq!(out.len(), 2);
        rt.shutdown().assert_conserved();
    }

    #[test]
    fn zero_threshold_is_rejected() {
        let mut rt = loaded(2);
        assert!(matches!(
            rt.superset_search(&set("a"), 0),
            Err(Error::ZeroThreshold)
        ));
        assert!(matches!(
            rt.superset_search_ft(&set("a"), 0, &FtSearchOptions::default()),
            Err(Error::ZeroThreshold)
        ));
        rt.shutdown().assert_conserved();
    }

    #[test]
    fn empty_insert_is_rejected_client_side() {
        let mut rt = NodeRuntime::start(RuntimeConfig::new(6, 2)).unwrap();
        assert!(matches!(
            rt.insert(oid(1), KeywordSet::new()),
            Err(Error::EmptyKeywordSet)
        ));
        rt.shutdown().assert_conserved();
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() {
        let corpus: Vec<(ObjectId, KeywordSet)> = [(1, "a b"), (2, "a"), (3, "a b c")]
            .into_iter()
            .map(|(id, k)| (oid(id), set(k)))
            .collect();

        let mut inc = NodeRuntime::start(RuntimeConfig::new(8, 3).seed(7)).unwrap();
        for (id, k) in &corpus {
            inc.insert(*id, k.clone()).unwrap();
        }
        inc.flush();

        let mut bulk = NodeRuntime::start(RuntimeConfig::new(8, 3).seed(7)).unwrap();
        bulk.bulk_load(corpus.iter().map(|(id, k)| (*id, k)))
            .unwrap();
        bulk.flush();

        for query in ["a", "a b", "zzz"] {
            let mut a: Vec<u64> = inc
                .superset_search(&set(query), 100)
                .unwrap()
                .iter()
                .map(|m| m.object.raw())
                .collect();
            let mut b: Vec<u64> = bulk
                .superset_search(&set(query), 100)
                .unwrap()
                .iter()
                .map(|m| m.object.raw())
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {query}");
        }
        inc.shutdown().assert_conserved();
        bulk.shutdown().assert_conserved();
    }

    #[test]
    fn batch_matches_one_at_a_time() {
        let mut rt = loaded(4);
        let requests = vec![
            Request::Superset {
                keywords: set("a"),
                threshold: 100,
            },
            Request::Pin(set("a b")),
            Request::Superset {
                keywords: set("b"),
                threshold: 100,
            },
            Request::Pin(set("zzz")),
        ];
        let batch = rt.run_batch(&requests, 4);
        assert_eq!(batch.len(), 4);

        let mut solo: Vec<u64> = rt
            .superset_search(&set("a"), 100)
            .unwrap()
            .iter()
            .map(|m| m.object.raw())
            .collect();
        solo.sort_unstable();
        let mut batched: Vec<u64> = batch[0].objects.iter().map(|o| o.raw()).collect();
        batched.sort_unstable();
        assert_eq!(batched, solo);
        assert_eq!(batch[1].objects, vec![oid(2)]);
        assert!(batch[3].objects.is_empty());
        rt.shutdown().assert_conserved();
    }

    #[test]
    fn conservation_holds_on_an_idle_runtime() {
        let rt = NodeRuntime::start(RuntimeConfig::new(8, 8)).unwrap();
        let report = rt.shutdown();
        report.assert_conserved();
        // Flush (8) + acks (8) + shutdowns (8).
        assert_eq!(report.total_sent(), 24);
    }

    #[test]
    fn batch_frames_count_once_but_deliver_many_entries() {
        // Under the hash policy almost every SBT hop is remote, so a
        // broad scan must form multi-entry batches. One batch frame is
        // one ledger frame on both sides — conservation closes — while
        // the entry counter records the logical traversal volume the
        // batching collapsed.
        let mut rt =
            NodeRuntime::start(RuntimeConfig::new(8, 4).seed(42).policy(ShardPolicy::Hash))
                .unwrap();
        for &(id, kws) in CORPUS {
            rt.insert(ObjectId::from_raw(id), set(kws)).unwrap();
        }
        rt.flush();
        let mut ids: Vec<u64> = rt
            .superset_search(&set("a"), usize::MAX - 1)
            .unwrap()
            .iter()
            .map(|m| m.object.raw())
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 6, 8]);
        let report = rt.shutdown();
        report.assert_conserved();
        let batch_frames: u64 = report.workers.iter().map(|w| w.batch_frames_sent).sum();
        let batch_entries: u64 = report.workers.iter().map(|w| w.batch_entries_sent).sum();
        assert!(batch_frames > 0, "broad scan across shards must batch");
        assert!(
            batch_entries > batch_frames,
            "batches must aggregate ({batch_entries} entries in {batch_frames} frames)"
        );
    }

    #[test]
    fn prefix_policy_cuts_scan_frames_versus_hash() {
        // The point of the locality policy, asserted at runtime scale:
        // the same broad scan ships fewer frames under prefix sharding
        // than under hash sharding at the same worker count.
        let frames_under = |policy: ShardPolicy| {
            let mut rt =
                NodeRuntime::start(RuntimeConfig::new(8, 8).seed(42).policy(policy)).unwrap();
            for &(id, kws) in CORPUS {
                rt.insert(ObjectId::from_raw(id), set(kws)).unwrap();
            }
            rt.flush();
            let mut ids: Vec<u64> = rt
                .superset_search(&set("a"), usize::MAX - 1)
                .unwrap()
                .iter()
                .map(|m| m.object.raw())
                .collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![1, 2, 3, 4, 6, 8]);
            let report = rt.shutdown();
            report.assert_conserved();
            report.total_sent()
        };
        let hash = frames_under(ShardPolicy::Hash);
        let prefix = frames_under(ShardPolicy::Prefix);
        assert!(
            prefix < hash,
            "prefix sharding must ship fewer frames ({prefix} vs {hash})"
        );
    }

    #[test]
    fn idle_workers_block_instead_of_spinning() {
        let rt = NodeRuntime::start(RuntimeConfig::new(8, 4)).unwrap();
        // Long enough that a 1 ms poll loop would rack up ~100 wakeups
        // per worker; a blocking worker records none.
        std::thread::sleep(Duration::from_millis(120));
        let report = rt.shutdown();
        report.assert_conserved();
        for w in &report.workers {
            assert_eq!(w.wakeups, 0, "worker {} busy-waited while idle", w.worker);
        }
    }

    #[test]
    fn tiny_channels_still_complete_under_backpressure() {
        // Capacity 1 forces constant try_send rejections; the outbox
        // discipline must still deliver everything.
        let mut rt =
            NodeRuntime::start(RuntimeConfig::new(8, 4).seed(3).channel_capacity(1)).unwrap();
        for i in 0..200u64 {
            rt.insert(oid(i), set(&format!("common tag{}", i % 5)))
                .unwrap();
        }
        rt.flush();
        let out = rt.superset_search(&set("common"), usize::MAX - 1).unwrap();
        assert_eq!(out.len(), 200);
        let report = rt.shutdown();
        report.assert_conserved();
    }

    #[test]
    fn ft_search_matches_sequential_on_a_clean_runtime() {
        let mut rt = loaded(4);
        let out = rt
            .superset_search_ft(&set("a"), usize::MAX - 1, &FtSearchOptions::default())
            .unwrap();
        assert!(out.complete);
        assert_eq!(out.attempts, 1);
        let cov = out.coverage.expect("coordinator answered");
        assert_eq!(cov.vertices_reached, cov.subcube_vertices);
        assert!(cov.skipped.is_empty());
        let mut ids: Vec<u64> = out.matches.iter().map(|m| m.object.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 6, 8]);
        rt.shutdown().assert_conserved();
    }

    #[test]
    fn ft_search_survives_frame_loss_with_redelegation() {
        // 10% drop + 5% duplicate + 5% delay on the traversal path.
        let plan = FaultPlan::lossy(9, 100, 50, 50);
        let mut rt = loaded_faulted(4, plan);
        let out = rt
            .superset_search_ft(&set("a"), usize::MAX - 1, &FtSearchOptions::default())
            .unwrap();
        // Recall must be total even though a few (empty) vertices may
        // have exhausted their retry budget and been written off.
        let mut ids: Vec<u64> = out.matches.iter().map(|m| m.object.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 6, 8]);
        let cov = out.coverage.expect("coordinator answered");
        assert_eq!(
            cov.vertices_reached + cov.vertices_skipped,
            cov.subcube_vertices,
            "coverage accounting must be exact: {cov:?}"
        );
        let report = rt.shutdown();
        report.assert_conserved();
        assert!(
            report.total_dropped() + report.total_duplicated() > 0,
            "the plan should actually have injected faults: {report:?}"
        );
    }

    #[test]
    fn duplicated_frames_do_not_double_count_results() {
        // Duplicate a third of all traversal frames; dedup at the
        // coordinator must keep the result set exact.
        let plan = FaultPlan::lossy(5, 0, 333, 0);
        let mut rt = loaded_faulted(4, plan);
        let out = rt
            .superset_search_ft(&set("a"), usize::MAX - 1, &FtSearchOptions::default())
            .unwrap();
        assert!(out.complete);
        let mut ids: Vec<u64> = out.matches.iter().map(|m| m.object.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 6, 8]);
        let report = rt.shutdown();
        report.assert_conserved();
        assert!(report.total_duplicated() > 0);
    }

    #[test]
    fn crashed_worker_is_respawned_and_recovers_state() {
        // Crash the worker owning object 2's vertex on its first
        // query-path frame: its in-memory tables (which provably hold
        // data) vanish mid-traversal, and the supervisor must replay
        // its shard before the retried query can see every object.
        let hasher = KeywordHasher::new(8, 42).unwrap();
        let victim = RuntimeConfig::new(8, 4)
            .seed(42)
            .shard_map()
            .owner_of(hasher.vertex_for(&set("a b")).bits());
        let plan = FaultPlan::default().crash(victim, 1);
        let mut rt = loaded_faulted(4, plan);
        let opts = FtSearchOptions {
            base_timeout_ms: 15,
            attempt_timeout_ms: 2_000,
            ..FtSearchOptions::default()
        };
        let out = rt
            .superset_search_ft(&set("a"), usize::MAX - 1, &opts)
            .unwrap();
        assert!(out.complete, "recovery must restore full recall: {out:?}");
        let mut ids: Vec<u64> = out.matches.iter().map(|m| m.object.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 6, 8]);
        let report = rt.shutdown();
        report.assert_conserved();
        assert_eq!(report.supervisor.respawns, 1, "{report:?}");
        assert!(report.supervisor.replayed_frames > 0);
    }

    #[test]
    fn degraded_outcome_reports_no_coverage_when_nobody_answers() {
        // Crash every worker's first query frame with no retries and a
        // tiny client budget: the root coordinator dies, the respawn
        // has no chance to finish in time, and the client must return
        // an honest empty degraded outcome instead of hanging.
        let mut plan = FaultPlan::default();
        for w in 0..4 {
            plan = plan.crash(w, 1);
        }
        let mut rt = loaded_faulted(4, plan);
        let opts = FtSearchOptions {
            attempts: 1,
            attempt_timeout_ms: 40,
            ..FtSearchOptions::default()
        };
        let out = rt
            .superset_search_ft(&set("a"), usize::MAX - 1, &opts)
            .unwrap();
        assert!(!out.complete);
        assert!(out.matches.is_empty());
        assert!(out.coverage.is_none());
        rt.shutdown().assert_conserved();
    }
}
