//! The shard-owning worker event loop, factored out of the in-process
//! runtime so any [`Transport`] can host it.
//!
//! A worker is a pure protocol engine: it drains one inbox of packets
//! (each packet one or more length-prefixed [`WireMsg`] frames),
//! mutates only its own shard's `IndexTable`s, and emits frames
//! through a [`Transport`]. Nothing in here knows whether the fabric
//! is a bounded channel ([`crate::transport::ChannelTransport`], the
//! [`crate::runtime::NodeRuntime`] deployment) or a TCP mesh
//! (`hyperdex-net`'s multi-process deployment) — which is exactly what
//! lets the parity harness demand identical results from both.
//!
//! [`run_worker`] is the entry point: it consumes a [`WorkerContext`],
//! runs the loop until shutdown or a scheduled crash, and returns a
//! [`WorkerExit`] carrying the lifetime counters and the still-open
//! inbox (so a supervisor can respawn the shard on the same address).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hyperdex_core::protocol::{scan_table, Step, SupersetCoordinator};
use hyperdex_core::{
    FtCmd, FtCoordinator, FtPolicy, IndexTable, KeywordHasher, KeywordInterner, KeywordSet,
    ObjectId,
};
use hyperdex_hypercube::{Shape, Vertex};

use crate::fault::{Fate, FaultInjector};
use crate::shard::ShardMap;
use crate::transport::{count_frames, take_frame, FlushStatus, Transport};
use crate::wire::WireMsg;

/// One worker's lifetime counters, returned when its thread exits.
/// After a crash the supervisor merges the counters of every
/// incarnation of the shard into one entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// The worker's shard index.
    pub worker: u32,
    /// Frames this worker decided to send (logical sends, before the
    /// fault injector rolled their fate).
    pub frames_sent: u64,
    /// Frames received and decoded from the inbox.
    pub frames_received: u64,
    /// Flush attempts the fabric pushed back on, parking frames in an
    /// outbox.
    pub backpressure_hits: u64,
    /// Objects newly indexed on this shard.
    pub inserts: u64,
    /// Vertex scans served (local visits, `T_QUERY`s, and pins).
    pub scans: u64,
    /// Superset queries this worker coordinated (sequential + FT).
    pub queries_coordinated: u64,
    /// Frames the injector dropped, plus delay-stash remnants and
    /// outbox/stash frames lost in a crash.
    pub frames_dropped: u64,
    /// Frames the injector delivered twice (counted once per extra
    /// copy).
    pub frames_duplicated: u64,
    /// Frames the injector stashed behind a later send.
    pub frames_delayed: u64,
    /// Timed `recv` polls that expired without a frame. Zero on an
    /// idle worker — idleness blocks, it doesn't spin.
    pub wakeups: u64,
}

impl WorkerStats {
    /// Folds another incarnation's counters into this entry.
    pub fn merge(&mut self, other: &WorkerStats) {
        debug_assert_eq!(self.worker, other.worker);
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.backpressure_hits += other.backpressure_hits;
        self.inserts += other.inserts;
        self.scans += other.scans;
        self.queries_coordinated += other.queries_coordinated;
        self.frames_dropped += other.frames_dropped;
        self.frames_duplicated += other.frames_duplicated;
        self.frames_delayed += other.frames_delayed;
        self.wakeups += other.wakeups;
    }
}

/// Why a worker's event loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCause {
    /// Processed `Shutdown` and flushed everything.
    Clean,
    /// Hit a scheduled crash point; in-memory state is gone.
    Crashed,
}

/// A worker's parting message to its supervisor. The inbox `Receiver`
/// rides along so the channel never disconnects: a respawned worker
/// resumes the same address, and peers' sends keep landing.
#[derive(Debug)]
pub struct WorkerExit {
    /// Clean shutdown or crash-stop.
    pub cause: ExitCause,
    /// The incarnation's lifetime counters.
    pub stats: WorkerStats,
    /// The still-open inbox, for respawn or draining.
    pub inbox: Receiver<Vec<u8>>,
}

/// Everything a worker needs besides its transport and inbox.
#[derive(Debug)]
pub struct WorkerContext {
    /// The worker's global shard index.
    pub index: u32,
    /// Hypercube shape (dimension `r`).
    pub shape: Shape,
    /// The keyword → vertex hash every endpoint shares.
    pub hasher: KeywordHasher,
    /// The global vertex → worker map.
    pub shards: ShardMap,
    /// Seeded fault injector, when the deployment schedules faults.
    pub injector: Option<FaultInjector>,
    /// `true` when respawning after a crash: query frames park until
    /// the supervisor's `RepairDone` arrives.
    pub repairing: bool,
}

/// Runs one worker to completion on the calling thread. The transport
/// decides where frames physically go; the loop is identical across
/// deployments.
pub fn run_worker(
    ctx: WorkerContext,
    transport: Box<dyn Transport>,
    inbox: Receiver<Vec<u8>>,
) -> WorkerExit {
    let endpoints = transport.endpoints();
    let worker = Worker {
        index: ctx.index,
        shape: ctx.shape,
        hasher: ctx.hasher,
        shards: ctx.shards,
        tables: HashMap::new(),
        interner: KeywordInterner::new(),
        transport,
        outbox: (0..endpoints).map(|_| VecDeque::new()).collect(),
        stash: (0..endpoints).map(|_| VecDeque::new()).collect(),
        queries: HashMap::new(),
        ft_queries: HashMap::new(),
        timers: BinaryHeap::new(),
        timer_seq: 0,
        injector: ctx.injector,
        repair: ctx.repairing.then(Vec::new),
        stats: WorkerStats {
            worker: ctx.index,
            ..WorkerStats::default()
        },
    };
    worker.run(inbox)
}

/// In-progress sequential query on its coordinator worker.
#[derive(Debug)]
struct QueryState {
    coord: SupersetCoordinator,
    results: Vec<(u64, u32)>,
    threshold: usize,
}

/// In-progress fault-tolerant query on its coordinator worker. Wraps
/// the shared sans-I/O [`FtCoordinator`] machine; the worker supplies
/// transport, wall-clock timers, local scans, and result dedup.
struct FtQueryState {
    core: FtCoordinator,
    results: Vec<(u64, u32)>,
    seen: HashSet<u64>,
    threshold: usize,
    /// Current timer generation per pending vertex; a heap entry whose
    /// generation no longer matches is stale (cancelled or retried).
    timer_gen: HashMap<u64, u64>,
    conts: u64,
    result_messages: u64,
}

impl FtQueryState {
    /// Records scan results, deduplicating by object id (duplicate
    /// frame delivery must not double-count toward the threshold —
    /// mirrors the simulator's `ft_record`).
    fn record(&mut self, objects: Vec<(u64, u32)>) -> usize {
        let mut added = 0;
        for (raw, extra) in objects {
            if self.seen.insert(raw) {
                self.results.push((raw, extra));
                added += 1;
            }
        }
        added
    }
}

/// One shard-owning thread. Transport endpoints `0..W` address fellow
/// workers, endpoint `W` the client.
struct Worker {
    index: u32,
    shape: Shape,
    hasher: KeywordHasher,
    shards: ShardMap,
    tables: HashMap<u64, IndexTable>,
    interner: KeywordInterner,
    transport: Box<dyn Transport>,
    outbox: Vec<VecDeque<Vec<u8>>>,
    /// Injector-delayed frames, per destination; released behind the
    /// next same-destination send.
    stash: Vec<VecDeque<Vec<u8>>>,
    queries: HashMap<u64, QueryState>,
    ft_queries: HashMap<u64, FtQueryState>,
    /// `(deadline, query_id, vertex bits, generation)` — min-heap by
    /// deadline.
    timers: BinaryHeap<Reverse<(Instant, u64, u64, u64)>>,
    timer_seq: u64,
    injector: Option<FaultInjector>,
    /// `Some` while repairing after a respawn: parked frames awaiting
    /// `RepairDone`.
    repair: Option<Vec<WireMsg>>,
    stats: WorkerStats,
}

impl Worker {
    fn client_slot(&self) -> usize {
        self.transport.endpoints() - 1
    }

    fn run(mut self, inbox: Receiver<Vec<u8>>) -> WorkerExit {
        let mut shutting_down = false;
        loop {
            self.fire_expired_timers();
            self.flush_outboxes();
            if shutting_down && self.outboxes_empty() {
                break;
            }
            // Pick the cheapest wait that can't stall anything: poll
            // only while parked frames need re-flushing, sleep until
            // the earliest FT deadline when one is armed, and block
            // outright when idle (zero wakeups, zero CPU).
            let recv = if !self.outboxes_empty() || shutting_down {
                inbox.recv_timeout(Duration::from_millis(1))
            } else if let Some(deadline) = self.next_timer_deadline() {
                let wait = deadline.saturating_duration_since(Instant::now());
                if wait.is_zero() {
                    continue;
                }
                inbox.recv_timeout(wait)
            } else {
                inbox.recv().map_err(|_| RecvTimeoutError::Disconnected)
            };
            let packet = match recv {
                Ok(packet) => packet,
                Err(RecvTimeoutError::Timeout) => {
                    self.stats.wakeups += 1;
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            };
            // A packet may coalesce several frames; every one is a
            // logical receive.
            let mut rest: &[u8] = &packet;
            while !rest.is_empty() {
                let (frame, tail) =
                    take_frame(rest).expect("runtime peers emit well-formed frames");
                rest = tail;
                self.stats.frames_received += 1;
                let msg =
                    WireMsg::decode_exact(frame).expect("runtime peers emit well-formed frames");
                if matches!(msg, WireMsg::Shutdown) {
                    shutting_down = true;
                    // Delayed frames still stashed will never be
                    // released; account them as dropped so conservation
                    // closes.
                    self.abandon_stash();
                    continue;
                }
                if self.is_query_path(&msg)
                    && self
                        .injector
                        .as_mut()
                        .is_some_and(FaultInjector::should_crash)
                {
                    // Frames packed behind the crash trigger die with
                    // the worker, exactly like bytes buffered in a
                    // killed process.
                    self.stats.frames_dropped += count_frames(rest);
                    return self.crash(inbox);
                }
                if let Some(parked) = self.repair.as_mut() {
                    match msg {
                        WireMsg::RepairDone { worker } => {
                            debug_assert_eq!(worker, self.index, "misrouted RepairDone");
                            let backlog = self.repair.take().expect("repair mode");
                            for parked_msg in backlog {
                                self.handle(parked_msg);
                            }
                        }
                        // Load frames restore state — exactly what
                        // repair is replaying — and are idempotent;
                        // apply them.
                        WireMsg::Insert { .. } | WireMsg::Handoff { .. } => self.handle(msg),
                        other => parked.push(other),
                    }
                    continue;
                }
                self.handle(msg);
            }
        }
        self.abandon_stash();
        WorkerExit {
            cause: ExitCause::Clean,
            stats: self.stats,
            inbox,
        }
    }

    /// Crash-stop: everything in memory is lost. Frames parked in
    /// outboxes or the delay stash were promised to the network but
    /// will never leave — count them dropped so conservation closes.
    fn crash(mut self, inbox: Receiver<Vec<u8>>) -> WorkerExit {
        let lost: u64 = self
            .outbox
            .iter()
            .chain(self.stash.iter())
            .flatten()
            .map(|f| count_frames(f))
            .sum();
        self.stats.frames_dropped += lost;
        WorkerExit {
            cause: ExitCause::Crashed,
            stats: self.stats,
            inbox,
        }
    }

    /// Frames that count toward a crash point: the traversal and
    /// lookup path, not loads or control.
    fn is_query_path(&self, msg: &WireMsg) -> bool {
        matches!(
            msg,
            WireMsg::Query { .. }
                | WireMsg::FtQuery { .. }
                | WireMsg::TQuery { .. }
                | WireMsg::TCont { .. }
                | WireMsg::Pin { .. }
        )
    }

    fn handle(&mut self, msg: WireMsg) {
        match msg {
            WireMsg::Insert { object, keywords } => {
                let kw = self.interner.intern(keywords);
                let bits = self.hasher.vertex_for(&kw).bits();
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted insert");
                if self
                    .tables
                    .entry(bits)
                    .or_default()
                    .insert_arc(kw, ObjectId::from_raw(object))
                {
                    self.stats.inserts += 1;
                }
            }
            WireMsg::Handoff { bits, entries } => {
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted handoff");
                let table = self.tables.entry(bits).or_default();
                for (set, objects) in entries {
                    let kw = self.interner.intern(set);
                    for raw in objects {
                        if table.insert_arc(Arc::clone(&kw), ObjectId::from_raw(raw)) {
                            self.stats.inserts += 1;
                        }
                    }
                }
            }
            WireMsg::Query {
                query_id,
                keywords,
                threshold,
            } => {
                self.stats.queries_coordinated += 1;
                let kw = self.interner.intern(keywords);
                let root = self.hasher.vertex_for(&kw);
                debug_assert_eq!(
                    self.shards.owner_of(root.bits()),
                    self.index,
                    "query routed to a non-root worker"
                );
                let mut state = QueryState {
                    coord: SupersetCoordinator::new(root, kw, threshold as usize),
                    results: Vec::new(),
                    threshold: threshold as usize,
                };
                if !self.drive(query_id, &mut state) {
                    self.queries.insert(query_id, state);
                }
            }
            WireMsg::FtQuery {
                query_id,
                keywords,
                threshold,
                strategy,
                max_retries,
                base_timeout_ms,
            } => {
                self.stats.queries_coordinated += 1;
                let kw = self.interner.intern(keywords);
                let root = self.hasher.vertex_for(&kw);
                debug_assert_eq!(
                    self.shards.owner_of(root.bits()),
                    self.index,
                    "FT query routed to a non-root worker"
                );
                let mut state = FtQueryState {
                    core: FtCoordinator::new(
                        root,
                        kw,
                        threshold.max(1) as usize,
                        FtPolicy {
                            strategy,
                            max_retries,
                            base_timeout: base_timeout_ms.max(1),
                        },
                    ),
                    results: Vec::new(),
                    seen: HashSet::new(),
                    threshold: threshold.max(1) as usize,
                    timer_gen: HashMap::new(),
                    conts: 0,
                    result_messages: 0,
                };
                let mut cmds = Vec::new();
                state.core.start(&mut cmds);
                self.ft_exec(query_id, &mut state, cmds);
                self.ft_settle(query_id, state);
            }
            WireMsg::TQuery {
                query_id,
                bits,
                keywords,
                remaining,
                via_dim,
                coord,
            } => {
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted T_QUERY");
                self.stats.scans += 1;
                let found = scan_table(self.tables.get(&bits), &keywords, remaining as usize);
                let vertex =
                    Vertex::from_bits(self.shape, bits).expect("coordinators stay in the cube");
                // Lemma 3.2: children derive from bits + arrival dim.
                let children = SupersetCoordinator::children_of(vertex, via_dim);
                let objects = found
                    .iter()
                    .map(|r| (r.object.raw(), r.extra_keywords))
                    .collect();
                self.send(
                    coord as usize,
                    &WireMsg::TCont {
                        query_id,
                        bits,
                        objects,
                        children,
                    },
                );
            }
            WireMsg::TCont {
                query_id,
                bits,
                objects,
                children,
            } => {
                if let Some(mut state) = self.ft_queries.remove(&query_id) {
                    state.conts += 1;
                    let added = state.record(objects);
                    if added > 0 {
                        state.result_messages += 1;
                    }
                    let mut cmds = Vec::new();
                    state
                        .core
                        .on_reply(bits, added, &children, |_, _| false, &mut cmds);
                    self.ft_exec(query_id, &mut state, cmds);
                    self.ft_settle(query_id, state);
                } else if let Some(mut state) = self.queries.remove(&query_id) {
                    let found = objects.len();
                    state.results.extend(objects);
                    state.coord.record_visit(found, children);
                    if !self.drive(query_id, &mut state) {
                        self.queries.insert(query_id, state);
                    }
                }
                // else: a duplicate or post-completion continuation —
                // injected faults make these normal; drop it.
            }
            WireMsg::Pin { query_id, keywords } => {
                self.stats.scans += 1;
                let bits = self.hasher.vertex_for(&keywords).bits();
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted pin");
                let objects = self
                    .tables
                    .get(&bits)
                    .map(|t| t.objects_with(&keywords).map(|o| o.raw()).collect())
                    .unwrap_or_default();
                let client = self.client_slot();
                self.send(client, &WireMsg::PinResults { query_id, objects });
            }
            WireMsg::Flush { token } => {
                let client = self.client_slot();
                let worker = self.index;
                self.send(client, &WireMsg::FlushAck { token, worker });
            }
            // A RepairDone outside repair mode is a duplicate (repair
            // frames are reliable, so this should not happen).
            WireMsg::RepairDone { .. } => {
                debug_assert!(false, "RepairDone outside repair mode");
            }
            // Client-bound and control frames never reach a worker's
            // handler (Shutdown is intercepted in the loop).
            WireMsg::QueryDone { .. }
            | WireMsg::FtQueryDone { .. }
            | WireMsg::PinResults { .. }
            | WireMsg::FlushAck { .. } => {
                debug_assert!(false, "client-bound frame delivered to a worker");
            }
            WireMsg::Shutdown => unreachable!("intercepted by the event loop"),
        }
    }

    /// Advances one sequential query until it finishes (results to the
    /// client; returns `true`) or suspends on a remote visit
    /// (`T_QUERY` sent; returns `false`).
    fn drive(&mut self, query_id: u64, state: &mut QueryState) -> bool {
        loop {
            match state.coord.next_step() {
                Step::Finished => {
                    state.results.truncate(state.threshold);
                    let objects = std::mem::take(&mut state.results);
                    let client = self.client_slot();
                    self.send(client, &WireMsg::QueryDone { query_id, objects });
                    return true;
                }
                Step::Visit { bits, via_dim } => {
                    let owner = self.shards.owner_of(bits);
                    if owner == self.index {
                        self.stats.scans += 1;
                        let found = scan_table(
                            self.tables.get(&bits),
                            state.coord.keywords(),
                            state.coord.remaining(),
                        );
                        let vertex =
                            Vertex::from_bits(self.shape, bits).expect("coordinator stays in cube");
                        let count = found.len();
                        state
                            .results
                            .extend(found.iter().map(|r| (r.object.raw(), r.extra_keywords)));
                        state
                            .coord
                            .record_visit(count, SupersetCoordinator::children_of(vertex, via_dim));
                    } else {
                        let keywords: KeywordSet = (**state.coord.keywords()).clone();
                        self.send(
                            owner as usize,
                            &WireMsg::TQuery {
                                query_id,
                                bits,
                                keywords,
                                remaining: state.coord.remaining() as u64,
                                via_dim,
                                coord: self.index,
                            },
                        );
                        return false;
                    }
                }
            }
        }
    }

    /// Executes a batch of [`FtCmd`]s from the shared machine: local
    /// scans run inline (their replies may emit more commands, hence
    /// the work queue), remote visits become `T_QUERY` frames with a
    /// wall-clock deadline.
    fn ft_exec(&mut self, query_id: u64, state: &mut FtQueryState, cmds: Vec<FtCmd>) {
        let mut queue: VecDeque<FtCmd> = cmds.into();
        while let Some(cmd) = queue.pop_front() {
            match cmd {
                // The runtime's requester is the client, which cannot
                // coordinate; and the root scan is always local to this
                // worker, so the root can never time out here.
                FtCmd::Promote => debug_assert!(false, "root cannot die on its own coordinator"),
                FtCmd::Cancel { bits } => {
                    state.timer_gen.remove(&bits);
                }
                FtCmd::Send {
                    bits,
                    via_dim,
                    attempt: _,
                    timeout,
                } => {
                    let owner = self.shards.owner_of(bits);
                    if owner == self.index {
                        self.stats.scans += 1;
                        let kw = Arc::clone(state.core.keywords());
                        let found = scan_table(self.tables.get(&bits), &kw, state.core.remaining());
                        let vertex =
                            Vertex::from_bits(self.shape, bits).expect("coordinator stays in cube");
                        let added = state.record(
                            found
                                .iter()
                                .map(|r| (r.object.raw(), r.extra_keywords))
                                .collect(),
                        );
                        let children = SupersetCoordinator::children_of(vertex, via_dim);
                        let mut more = Vec::new();
                        state
                            .core
                            .on_reply(bits, added, &children, |_, _| false, &mut more);
                        queue.extend(more);
                    } else {
                        let keywords: KeywordSet = (**state.core.keywords()).clone();
                        self.send(
                            owner as usize,
                            &WireMsg::TQuery {
                                query_id,
                                bits,
                                keywords,
                                remaining: state.core.remaining() as u64,
                                via_dim,
                                coord: self.index,
                            },
                        );
                        if let Some(ms) = timeout {
                            self.timer_seq += 1;
                            let gen = self.timer_seq;
                            state.timer_gen.insert(bits, gen);
                            self.timers.push(Reverse((
                                Instant::now() + Duration::from_millis(ms),
                                query_id,
                                bits,
                                gen,
                            )));
                        }
                    }
                }
            }
        }
    }

    /// Re-files an in-progress FT query, or completes it when nothing
    /// is left in flight.
    fn ft_settle(&mut self, query_id: u64, mut state: FtQueryState) {
        if state.core.in_flight() > 0 {
            self.ft_queries.insert(query_id, state);
            return;
        }
        let cov = state.core.finish();
        state.results.truncate(state.threshold);
        let client = self.client_slot();
        self.send(
            client,
            &WireMsg::FtQueryDone {
                query_id,
                objects: state.results,
                subcube: cov.subcube_vertices,
                reached: cov.reached,
                retries: cov.retries,
                timeouts: cov.timeouts,
                redelegations: cov.redelegations,
                queries_sent: cov.queries_sent,
                conts: state.conts,
                result_messages: state.result_messages,
                skipped: cov.skipped,
            },
        );
    }

    fn next_timer_deadline(&self) -> Option<Instant> {
        self.timers.peek().map(|Reverse((deadline, ..))| *deadline)
    }

    /// Fires every expired FT deadline through the shared machine.
    /// Heap entries whose generation no longer matches the query's
    /// current one are stale (answered or already retried) and skip.
    fn fire_expired_timers(&mut self) {
        loop {
            let now = Instant::now();
            match self.timers.peek() {
                Some(Reverse((deadline, ..))) if *deadline <= now => {}
                _ => return,
            }
            let Reverse((_, query_id, bits, gen)) = self.timers.pop().expect("peeked");
            let Some(mut state) = self.ft_queries.remove(&query_id) else {
                continue;
            };
            if state.timer_gen.get(&bits) != Some(&gen) {
                self.ft_queries.insert(query_id, state);
                continue;
            }
            state.timer_gen.remove(&bits);
            let mut cmds = Vec::new();
            state.core.on_timeout(bits, |_, _| false, &mut cmds);
            self.ft_exec(query_id, &mut state, cmds);
            self.ft_settle(query_id, state);
        }
    }

    /// Queues one frame for `dest`, rolling its fate when the fault
    /// injector covers it (worker→worker traversal frames only).
    /// Delivery happens at the next flush point, which is what lets
    /// every frame emitted while handling one packet coalesce into a
    /// single fabric operation per destination.
    fn send(&mut self, dest: usize, msg: &WireMsg) {
        self.stats.frames_sent += 1;
        let frame = msg.encode();
        let injectable = dest != self.client_slot()
            && matches!(msg, WireMsg::TQuery { .. } | WireMsg::TCont { .. });
        if injectable {
            if let Some(injector) = &mut self.injector {
                match injector.fate(dest as u32) {
                    Fate::Deliver => {}
                    Fate::Drop => {
                        self.stats.frames_dropped += 1;
                        return;
                    }
                    Fate::Duplicate => {
                        self.stats.frames_duplicated += 1;
                        self.outbox[dest].push_back(frame.clone());
                    }
                    Fate::Delay => {
                        self.stats.frames_delayed += 1;
                        self.stash[dest].push_back(frame);
                        return;
                    }
                }
            }
        }
        self.outbox[dest].push_back(frame);
        // A delivered frame releases anything stashed for this
        // destination *behind* it — delay == reorder.
        while let Some(stashed) = self.stash[dest].pop_front() {
            self.outbox[dest].push_back(stashed);
        }
    }

    /// Writes off frames still sitting in the delay stash (shutdown or
    /// crash): they were counted as sent but will never travel.
    fn abandon_stash(&mut self) {
        let stranded: usize = self.stash.iter().map(VecDeque::len).sum();
        self.stats.frames_dropped += stranded as u64;
        for q in &mut self.stash {
            q.clear();
        }
    }

    fn flush_outboxes(&mut self) {
        for dest in 0..self.outbox.len() {
            self.flush_outbox(dest);
        }
    }

    fn flush_outbox(&mut self, dest: usize) {
        if self.outbox[dest].is_empty() {
            return;
        }
        match self.transport.flush(dest, &mut self.outbox[dest]) {
            FlushStatus::Done => {}
            FlushStatus::Full => {
                // Fabric pushed back: frames stay parked and re-flush
                // on the next loop iteration.
                self.stats.backpressure_hits += 1;
            }
            FlushStatus::Closed { frames_dropped } => {
                // Destination gone (only possible once the run is
                // over); the transport counted what it discarded.
                self.stats.frames_dropped += frames_dropped;
            }
        }
    }

    fn outboxes_empty(&self) -> bool {
        self.outbox.iter().all(VecDeque::is_empty)
    }
}
