//! The shard-owning worker event loop, factored out of the in-process
//! runtime so any [`Transport`] can host it.
//!
//! A worker is a pure protocol engine: it drains one inbox of packets
//! (each packet one or more length-prefixed [`WireMsg`] frames),
//! mutates only its own shard's `IndexTable`s, and emits frames
//! through a [`Transport`]. Nothing in here knows whether the fabric
//! is a bounded channel ([`crate::transport::ChannelTransport`], the
//! [`crate::runtime::NodeRuntime`] deployment) or a TCP mesh
//! (`hyperdex-net`'s multi-process deployment) — which is exactly what
//! lets the parity harness demand identical results from both.
//!
//! [`run_worker`] is the entry point: it consumes a [`WorkerContext`],
//! runs the loop until shutdown or a scheduled crash, and returns a
//! [`WorkerExit`] carrying the lifetime counters and the still-open
//! inbox (so a supervisor can respawn the shard on the same address).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hyperdex_core::protocol::{scan_store, SupersetCoordinator};
use hyperdex_core::{
    FtCmd, FtCoordinator, FtPolicy, KeywordHasher, KeywordInterner, KeywordSet, ObjectId,
    PostingStore, StoreBackend,
};
use hyperdex_hypercube::{Shape, Vertex};

use crate::fault::{Fate, FaultInjector};
use crate::shard::ShardMap;
use crate::transport::{count_frames, take_frame, FlushStatus, Transport};
use crate::wire::WireMsg;

/// Self-owned visits run from the in-worker queue in slices of this
/// many scans per loop iteration, so a deep local subtree cannot
/// starve the inbox (the loop polls for frames between slices).
const LOCAL_WORK_BUDGET: usize = 32;

/// Retained encode/packet buffers. Inbound packets are recycled into
/// the frame send path, so a steady one-in-one-out worker (the pin
/// mix) stops allocating per frame.
const FRAME_POOL_CAP: usize = 32;

/// One worker's lifetime counters, returned when its thread exits.
/// After a crash the supervisor merges the counters of every
/// incarnation of the shard into one entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// The worker's shard index.
    pub worker: u32,
    /// Frames this worker decided to send (logical sends, before the
    /// fault injector rolled their fate).
    pub frames_sent: u64,
    /// Frames received and decoded from the inbox.
    pub frames_received: u64,
    /// Flush attempts the fabric pushed back on, parking frames in an
    /// outbox.
    pub backpressure_hits: u64,
    /// Objects newly indexed on this shard.
    pub inserts: u64,
    /// Vertex scans served (local visits, `T_QUERY`s, and pins).
    pub scans: u64,
    /// Superset queries this worker coordinated (sequential + FT).
    pub queries_coordinated: u64,
    /// Frames the injector dropped, plus delay-stash remnants and
    /// outbox/stash frames lost in a crash.
    pub frames_dropped: u64,
    /// Frames the injector delivered twice (counted once per extra
    /// copy).
    pub frames_duplicated: u64,
    /// Frames the injector stashed behind a later send.
    pub frames_delayed: u64,
    /// Timed `recv` polls that expired without a frame. Zero on an
    /// idle worker — idleness blocks, it doesn't spin.
    pub wakeups: u64,
    /// Batch frames (`TQueryBatch`/`TContBatch`) among `frames_sent`.
    /// Each counts **once** in the frame ledger no matter how many
    /// entries it aggregates.
    pub batch_frames_sent: u64,
    /// Logical per-vertex entries carried inside those batch frames —
    /// the traversal volume the batching collapsed.
    pub batch_entries_sent: u64,
}

impl WorkerStats {
    /// Folds another incarnation's counters into this entry.
    pub fn merge(&mut self, other: &WorkerStats) {
        debug_assert_eq!(self.worker, other.worker);
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.backpressure_hits += other.backpressure_hits;
        self.inserts += other.inserts;
        self.scans += other.scans;
        self.queries_coordinated += other.queries_coordinated;
        self.frames_dropped += other.frames_dropped;
        self.frames_duplicated += other.frames_duplicated;
        self.frames_delayed += other.frames_delayed;
        self.wakeups += other.wakeups;
        self.batch_frames_sent += other.batch_frames_sent;
        self.batch_entries_sent += other.batch_entries_sent;
    }
}

/// Why a worker's event loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCause {
    /// Processed `Shutdown` and flushed everything.
    Clean,
    /// Hit a scheduled crash point; in-memory state is gone.
    Crashed,
}

/// A worker's parting message to its supervisor. The inbox `Receiver`
/// rides along so the channel never disconnects: a respawned worker
/// resumes the same address, and peers' sends keep landing.
#[derive(Debug)]
pub struct WorkerExit {
    /// Clean shutdown or crash-stop.
    pub cause: ExitCause,
    /// The incarnation's lifetime counters.
    pub stats: WorkerStats,
    /// The still-open inbox, for respawn or draining.
    pub inbox: Receiver<Vec<u8>>,
}

/// Everything a worker needs besides its transport and inbox.
#[derive(Debug)]
pub struct WorkerContext {
    /// The worker's global shard index.
    pub index: u32,
    /// Hypercube shape (dimension `r`).
    pub shape: Shape,
    /// The keyword → vertex hash every endpoint shares.
    pub hasher: KeywordHasher,
    /// The global vertex → worker map.
    pub shards: ShardMap,
    /// Posting-storage backend for every shard table this worker owns
    /// (`HYPERDEX_STORE`; DESIGN.md §17).
    pub store: StoreBackend,
    /// Seeded fault injector, when the deployment schedules faults.
    pub injector: Option<FaultInjector>,
    /// `true` when respawning after a crash: query frames park until
    /// the supervisor's `RepairDone` arrives.
    pub repairing: bool,
}

/// Runs one worker to completion on the calling thread. The transport
/// decides where frames physically go; the loop is identical across
/// deployments.
pub fn run_worker(
    ctx: WorkerContext,
    transport: Box<dyn Transport>,
    inbox: Receiver<Vec<u8>>,
) -> WorkerExit {
    let endpoints = transport.endpoints();
    let worker = Worker {
        index: ctx.index,
        shape: ctx.shape,
        hasher: ctx.hasher,
        shards: ctx.shards,
        tables: HashMap::new(),
        store: ctx.store,
        interner: KeywordInterner::new(),
        transport,
        outbox: (0..endpoints).map(|_| VecDeque::new()).collect(),
        stash: (0..endpoints).map(|_| VecDeque::new()).collect(),
        queries: HashMap::new(),
        ft_queries: HashMap::new(),
        local_work: VecDeque::new(),
        frame_pool: Vec::new(),
        timers: BinaryHeap::new(),
        timer_seq: 0,
        injector: ctx.injector,
        repair: ctx.repairing.then(Vec::new),
        stats: WorkerStats {
            worker: ctx.index,
            ..WorkerStats::default()
        },
    };
    worker.run(inbox)
}

/// In-progress sequential query on its coordinator worker.
///
/// The batched drive keeps many visits outstanding at once, but the
/// fold order is pinned: `pending` records the dispatch order (which
/// equals the sequential machine's visit order), and replies park in
/// `replies` until their vertex reaches the front. Folding strictly
/// in dispatch order, truncating each reply to the budget live at
/// fold time, makes the batched traversal result-identical to the
/// one-visit-at-a-time machine — including under a binding threshold.
/// One folded visit: the vertex's matching objects plus its frontier
/// children as `(bits, via_dim)` pairs.
type VisitReply = (Vec<(u64, u32)>, Vec<(u64, u8)>);

#[derive(Debug)]
struct QueryState {
    coord: SupersetCoordinator,
    results: Vec<(u64, u32)>,
    threshold: usize,
    /// Dispatched, not-yet-folded vertices in dispatch order.
    pending: VecDeque<u64>,
    /// Replies that arrived out of order, keyed by vertex bits.
    replies: HashMap<u64, VisitReply>,
    /// Cross-cut children a remote expansion already forwarded to
    /// their owner on this query's behalf (chained delegation): their
    /// replies arrive unsolicited, so the dispatcher must not ship a
    /// second visit when they surface in the frontier.
    predelegated: HashSet<u64>,
}

/// In-progress fault-tolerant query on its coordinator worker. Wraps
/// the shared sans-I/O [`FtCoordinator`] machine; the worker supplies
/// transport, wall-clock timers, local scans, and result dedup.
struct FtQueryState {
    core: FtCoordinator,
    results: Vec<(u64, u32)>,
    seen: HashSet<u64>,
    threshold: usize,
    /// Current timer generation per pending vertex; a heap entry whose
    /// generation no longer matches is stale (cancelled or retried).
    timer_gen: HashMap<u64, u64>,
    conts: u64,
    result_messages: u64,
}

impl FtQueryState {
    /// Records scan results, deduplicating by object id (duplicate
    /// frame delivery must not double-count toward the threshold —
    /// mirrors the simulator's `ft_record`).
    fn record(&mut self, objects: Vec<(u64, u32)>) -> usize {
        let mut added = 0;
        for (raw, extra) in objects {
            if self.seen.insert(raw) {
                self.results.push((raw, extra));
                added += 1;
            }
        }
        added
    }
}

/// One shard-owning thread. Transport endpoints `0..W` address fellow
/// workers, endpoint `W` the client.
struct Worker {
    index: u32,
    shape: Shape,
    hasher: KeywordHasher,
    shards: ShardMap,
    tables: HashMap<u64, PostingStore>,
    /// Backend every lazily-created shard table uses.
    store: StoreBackend,
    interner: KeywordInterner,
    transport: Box<dyn Transport>,
    outbox: Vec<VecDeque<Vec<u8>>>,
    /// Injector-delayed frames, per destination; released behind the
    /// next same-destination send.
    stash: Vec<VecDeque<Vec<u8>>>,
    queries: HashMap<u64, QueryState>,
    ft_queries: HashMap<u64, FtQueryState>,
    /// Self-owned visits awaiting a local scan, as `(query_id, bits,
    /// via_dim)` — the fast path that skips encode/decode entirely.
    /// Entries whose query has since completed are skipped on pop.
    local_work: VecDeque<(u64, u64, Option<u8>)>,
    /// Recycled buffers for [`Worker::send`]'s `encode_into` and
    /// consumed inbox packets (capped at [`FRAME_POOL_CAP`]).
    frame_pool: Vec<Vec<u8>>,
    /// `(deadline, query_id, vertex bits, generation)` — min-heap by
    /// deadline.
    timers: BinaryHeap<Reverse<(Instant, u64, u64, u64)>>,
    timer_seq: u64,
    injector: Option<FaultInjector>,
    /// `Some` while repairing after a respawn: parked frames awaiting
    /// `RepairDone`.
    repair: Option<Vec<WireMsg>>,
    stats: WorkerStats,
}

impl Worker {
    fn client_slot(&self) -> usize {
        self.transport.endpoints() - 1
    }

    fn run(mut self, inbox: Receiver<Vec<u8>>) -> WorkerExit {
        let mut shutting_down = false;
        loop {
            self.fire_expired_timers();
            self.run_local_work();
            self.flush_outboxes();
            self.transport.reclaim(&mut self.frame_pool, FRAME_POOL_CAP);
            if shutting_down && self.outboxes_empty() && self.local_work.is_empty() {
                // Window close on the way out: a batching transport may
                // still hold accepted-but-unshipped frames.
                if self.transport.pending() > 0 {
                    self.drain_transport();
                }
                if self.transport.pending() == 0 {
                    break;
                }
            }
            // Pick the cheapest wait that can't stall anything: drain
            // the inbox without waiting while local work is queued
            // (the fast path must not starve peers), poll only while
            // parked frames need re-flushing, sleep until the earliest
            // FT deadline when one is armed, and block outright when
            // idle (zero wakeups, zero CPU). Any wait is a window
            // close: frames a batching transport accumulated cannot
            // grow their batch further, so they drain to the fabric
            // first.
            let recv = if !self.local_work.is_empty() {
                match inbox.try_recv() {
                    Ok(packet) => Ok(packet),
                    // Not a wakeup: the loop turn does local scans.
                    Err(std::sync::mpsc::TryRecvError::Empty) => continue,
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        Err(RecvTimeoutError::Disconnected)
                    }
                }
            } else if !self.outboxes_empty() || shutting_down {
                self.drain_transport();
                inbox.recv_timeout(Duration::from_millis(1))
            } else {
                match inbox.try_recv() {
                    // More inbound work is immediately available: keep
                    // the window open so outbound frames keep batching.
                    Ok(packet) => Ok(packet),
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        Err(RecvTimeoutError::Disconnected)
                    }
                    Err(std::sync::mpsc::TryRecvError::Empty) => {
                        self.drain_transport();
                        if self.transport.pending() > 0 {
                            // Fabric pushed back on the drain: poll.
                            inbox.recv_timeout(Duration::from_millis(1))
                        } else if let Some(deadline) = self.next_timer_deadline() {
                            let wait = deadline.saturating_duration_since(Instant::now());
                            if wait.is_zero() {
                                continue;
                            }
                            inbox.recv_timeout(wait)
                        } else {
                            inbox.recv().map_err(|_| RecvTimeoutError::Disconnected)
                        }
                    }
                }
            };
            let packet = match recv {
                Ok(packet) => packet,
                Err(RecvTimeoutError::Timeout) => {
                    self.stats.wakeups += 1;
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            };
            // A packet may coalesce several frames; every one is a
            // logical receive.
            let mut rest: &[u8] = &packet;
            while !rest.is_empty() {
                let (frame, tail) =
                    take_frame(rest).expect("runtime peers emit well-formed frames");
                rest = tail;
                self.stats.frames_received += 1;
                let msg =
                    WireMsg::decode_exact(frame).expect("runtime peers emit well-formed frames");
                if matches!(msg, WireMsg::Shutdown) {
                    shutting_down = true;
                    // Delayed frames still stashed will never be
                    // released; account them as dropped so conservation
                    // closes.
                    self.abandon_stash();
                    continue;
                }
                if self.is_query_path(&msg)
                    && self
                        .injector
                        .as_mut()
                        .is_some_and(FaultInjector::should_crash)
                {
                    // Frames packed behind the crash trigger die with
                    // the worker, exactly like bytes buffered in a
                    // killed process.
                    self.stats.frames_dropped += count_frames(rest);
                    return self.crash(inbox);
                }
                if let Some(parked) = self.repair.as_mut() {
                    match msg {
                        WireMsg::RepairDone { worker } => {
                            debug_assert_eq!(worker, self.index, "misrouted RepairDone");
                            let backlog = self.repair.take().expect("repair mode");
                            for parked_msg in backlog {
                                self.handle(parked_msg);
                            }
                        }
                        // Load frames restore state — exactly what
                        // repair is replaying — and are idempotent;
                        // apply them.
                        WireMsg::Insert { .. } | WireMsg::Handoff { .. } => self.handle(msg),
                        other => parked.push(other),
                    }
                    continue;
                }
                self.handle(msg);
            }
            self.recycle(packet);
        }
        self.abandon_stash();
        WorkerExit {
            cause: ExitCause::Clean,
            stats: self.stats,
            inbox,
        }
    }

    /// Crash-stop: everything in memory is lost. Frames parked in
    /// outboxes, the delay stash, or a batching transport's
    /// accumulation buffer were promised to the network but will never
    /// leave — count them dropped so conservation closes.
    fn crash(mut self, inbox: Receiver<Vec<u8>>) -> WorkerExit {
        let lost: u64 = self
            .outbox
            .iter()
            .chain(self.stash.iter())
            .flatten()
            .map(|f| count_frames(f))
            .sum();
        self.stats.frames_dropped += lost + self.transport.pending();
        WorkerExit {
            cause: ExitCause::Crashed,
            stats: self.stats,
            inbox,
        }
    }

    /// Frames that count toward a crash point: the traversal and
    /// lookup path, not loads or control.
    fn is_query_path(&self, msg: &WireMsg) -> bool {
        matches!(
            msg,
            WireMsg::Query { .. }
                | WireMsg::FtQuery { .. }
                | WireMsg::TQuery { .. }
                | WireMsg::TQueryBatch { .. }
                | WireMsg::TCont { .. }
                | WireMsg::TContBatch { .. }
                | WireMsg::Pin { .. }
        )
    }

    fn handle(&mut self, msg: WireMsg) {
        match msg {
            WireMsg::Insert { object, keywords } => {
                let kw = self.interner.intern(keywords);
                let bits = self.hasher.vertex_for(&kw).bits();
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted insert");
                let store = self.store;
                if self
                    .tables
                    .entry(bits)
                    .or_insert_with(|| PostingStore::new(store))
                    .insert_arc(kw, ObjectId::from_raw(object))
                {
                    self.stats.inserts += 1;
                }
            }
            WireMsg::Handoff { bits, entries } => {
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted handoff");
                let store = self.store;
                let table = self
                    .tables
                    .entry(bits)
                    .or_insert_with(|| PostingStore::new(store));
                for (set, objects) in entries {
                    let kw = self.interner.intern(set);
                    for raw in objects {
                        if table.insert_arc(Arc::clone(&kw), ObjectId::from_raw(raw)) {
                            self.stats.inserts += 1;
                        }
                    }
                }
            }
            WireMsg::Query {
                query_id,
                keywords,
                threshold,
            } => {
                // Any worker coordinates: the client round-robins
                // sequential queries, and a remote root region is
                // delegated to its owner like every other region.
                self.stats.queries_coordinated += 1;
                let kw = self.interner.intern(keywords);
                let root = self.hasher.vertex_for(&kw);
                let mut state = QueryState {
                    coord: SupersetCoordinator::new(root, kw, threshold as usize),
                    results: Vec::new(),
                    threshold: threshold as usize,
                    pending: VecDeque::new(),
                    replies: HashMap::new(),
                    predelegated: HashSet::new(),
                };
                if !self.drive(query_id, &mut state) {
                    self.queries.insert(query_id, state);
                }
            }
            WireMsg::FtQuery {
                query_id,
                keywords,
                threshold,
                strategy,
                max_retries,
                base_timeout_ms,
            } => {
                self.stats.queries_coordinated += 1;
                let kw = self.interner.intern(keywords);
                let root = self.hasher.vertex_for(&kw);
                debug_assert_eq!(
                    self.shards.owner_of(root.bits()),
                    self.index,
                    "FT query routed to a non-root worker"
                );
                let mut state = FtQueryState {
                    core: FtCoordinator::new(
                        root,
                        kw,
                        threshold.max(1) as usize,
                        FtPolicy {
                            strategy,
                            max_retries,
                            base_timeout: base_timeout_ms.max(1),
                        },
                    ),
                    results: Vec::new(),
                    seen: HashSet::new(),
                    threshold: threshold.max(1) as usize,
                    timer_gen: HashMap::new(),
                    conts: 0,
                    result_messages: 0,
                };
                let mut cmds = Vec::new();
                state.core.start(&mut cmds);
                self.ft_exec(query_id, &mut state, cmds);
                self.ft_settle(query_id, state);
            }
            WireMsg::TQuery {
                query_id,
                bits,
                keywords,
                remaining,
                via_dim,
                coord,
            } => {
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted T_QUERY");
                self.stats.scans += 1;
                let found = scan_store(self.tables.get(&bits), &keywords, remaining as usize);
                let vertex =
                    Vertex::from_bits(self.shape, bits).expect("coordinators stay in the cube");
                // Lemma 3.2: children derive from bits + arrival dim.
                let children = SupersetCoordinator::children_of(vertex, via_dim);
                let objects = found
                    .iter()
                    .map(|r| (r.object.raw(), r.extra_keywords))
                    .collect();
                self.send(
                    coord as usize,
                    &WireMsg::TCont {
                        query_id,
                        bits,
                        objects,
                        children,
                    },
                );
            }
            WireMsg::TQueryBatch {
                query_id,
                keywords,
                remaining,
                coord,
                entries,
            } => {
                // Expand each entry's whole locally-owned subtree
                // region right here: a discovered child that this
                // worker also owns is scanned immediately instead of
                // bouncing through the coordinator, so one delegation
                // covers the region and the per-query frame count is
                // bounded by the number of ownership cuts, not the
                // subcube size. The reply still carries one entry per
                // vertex (with its full child list), and the
                // coordinator folds them in sequential dispatch order
                // — the traversal's observable behaviour is identical
                // to per-vertex hops. Scans run against the shared
                // budget; the coordinator re-truncates each reply to
                // its live budget at fold time, so over-scanning here
                // is safe.
                let mut queue: VecDeque<(u64, u8)> = entries.into();
                let mut replies = Vec::with_capacity(queue.len());
                // Cross-cut children grouped per owner in discovery
                // order (deterministic), forwarded straight to their
                // owners below — chained delegation — so the region
                // pipeline is one hop per ownership cut instead of a
                // coordinator round trip per cut.
                let mut forwards: Vec<(u32, Vec<(u64, u8)>)> = Vec::new();
                while let Some((bits, via_dim)) = queue.pop_front() {
                    debug_assert_eq!(
                        self.shards.owner_of(bits),
                        self.index,
                        "misrouted batch entry"
                    );
                    self.stats.scans += 1;
                    let found = scan_store(self.tables.get(&bits), &keywords, remaining as usize);
                    let vertex =
                        Vertex::from_bits(self.shape, bits).expect("coordinators stay in the cube");
                    let children = SupersetCoordinator::children_of(vertex, Some(via_dim));
                    for &(child, dim) in &children {
                        let owner = self.shards.owner_of(child);
                        if owner == self.index {
                            queue.push_back((child, dim));
                        } else if owner != coord {
                            // The coordinator's own children stay in
                            // the reply only: it runs them through its
                            // local fast path when they surface.
                            match forwards.iter_mut().find(|(o, _)| *o == owner) {
                                Some((_, group)) => group.push((child, dim)),
                                None => forwards.push((owner, vec![(child, dim)])),
                            }
                        }
                    }
                    let objects = found
                        .iter()
                        .map(|r| (r.object.raw(), r.extra_keywords))
                        .collect();
                    replies.push((bits, objects, children));
                }
                for (owner, group) in forwards {
                    self.send(
                        owner as usize,
                        &WireMsg::TQueryBatch {
                            query_id,
                            keywords: keywords.clone(),
                            remaining,
                            coord,
                            entries: group,
                        },
                    );
                }
                self.send(
                    coord as usize,
                    &WireMsg::TContBatch {
                        query_id,
                        entries: replies,
                    },
                );
            }
            WireMsg::TCont {
                query_id,
                bits,
                objects,
                children,
            } => {
                if let Some(mut state) = self.ft_queries.remove(&query_id) {
                    state.conts += 1;
                    let added = state.record(objects);
                    if added > 0 {
                        state.result_messages += 1;
                    }
                    let mut cmds = Vec::new();
                    state
                        .core
                        .on_reply(bits, added, &children, |_, _| false, &mut cmds);
                    self.ft_exec(query_id, &mut state, cmds);
                    self.ft_settle(query_id, state);
                } else if let Some(mut state) = self.queries.remove(&query_id) {
                    state.replies.insert(bits, (objects, children));
                    if !self.drive(query_id, &mut state) {
                        self.queries.insert(query_id, state);
                    }
                }
                // else: a duplicate or post-completion continuation —
                // injected faults make these normal; drop it.
            }
            WireMsg::TContBatch { query_id, entries } => {
                if let Some(mut state) = self.queries.remove(&query_id) {
                    let mut listed: Vec<u64> = Vec::new();
                    for (bits, objects, children) in entries {
                        listed.extend(children.iter().map(|&(child, _)| child));
                        state.replies.insert(bits, (objects, children));
                    }
                    // A remote child this batch lists but does not
                    // answer (here or in an already-parked reply) was
                    // forwarded onward by the expanding worker; its
                    // reply arrives unsolicited, so mark it
                    // dispatch-exempt. Our own children go through the
                    // local fast path as usual.
                    for child in listed {
                        if self.shards.owner_of(child) != self.index
                            && !state.replies.contains_key(&child)
                        {
                            state.predelegated.insert(child);
                        }
                    }
                    if !self.drive(query_id, &mut state) {
                        self.queries.insert(query_id, state);
                    }
                }
                // else: duplicate or post-completion (threshold met
                // mid-burst) — drop, like a stray TCont.
            }
            WireMsg::Pin { query_id, keywords } => {
                self.stats.scans += 1;
                let bits = self.hasher.vertex_for(&keywords).bits();
                debug_assert_eq!(self.shards.owner_of(bits), self.index, "misrouted pin");
                let objects = self
                    .tables
                    .get(&bits)
                    .map(|t| t.objects_with(&keywords).map(|o| o.raw()).collect())
                    .unwrap_or_default();
                let client = self.client_slot();
                self.send(client, &WireMsg::PinResults { query_id, objects });
            }
            WireMsg::Flush { token } => {
                let client = self.client_slot();
                let worker = self.index;
                self.send(client, &WireMsg::FlushAck { token, worker });
            }
            // A RepairDone outside repair mode is a duplicate (repair
            // frames are reliable, so this should not happen).
            WireMsg::RepairDone { .. } => {
                debug_assert!(false, "RepairDone outside repair mode");
            }
            // Client-bound and control frames never reach a worker's
            // handler (Shutdown is intercepted in the loop).
            WireMsg::QueryDone { .. }
            | WireMsg::FtQueryDone { .. }
            | WireMsg::PinResults { .. }
            | WireMsg::FlushAck { .. } => {
                debug_assert!(false, "client-bound frame delivered to a worker");
            }
            WireMsg::Shutdown => unreachable!("intercepted by the event loop"),
        }
    }

    /// Advances one batched sequential query: folds buffered replies
    /// strictly in dispatch order, then — once the whole outstanding
    /// wave has folded — dispatches the next frontier at once,
    /// self-owned visits onto the local work queue, remote visits
    /// grouped per owner into `TQueryBatch` frames. Returns `true`
    /// when the query finished (`QueryDone` sent), `false` while
    /// visits are outstanding.
    fn drive(&mut self, query_id: u64, state: &mut QueryState) -> bool {
        loop {
            // Fold in dispatch order only — a reply for a later vertex
            // parks until everything dispatched before it has folded,
            // which reproduces the sequential machine's budget
            // accounting exactly.
            while !state.coord.is_done() {
                let Some(&bits) = state.pending.front() else {
                    break;
                };
                let Some((objects, children)) = state.replies.remove(&bits) else {
                    break;
                };
                state.pending.pop_front();
                // The scan ran under the budget live at dispatch (or
                // scan) time, which is ≥ the budget live now; the scan
                // order is deterministic, so the fold-time prefix is
                // exactly what a sequential visit would have returned.
                let take = objects.len().min(state.coord.remaining());
                state.results.extend(objects.into_iter().take(take));
                state.coord.record_visit(take, children);
            }
            if state.coord.is_done() {
                // Threshold met: replies still in flight (or parked,
                // or queued locally) are discarded on arrival.
                self.finish_query(query_id, state);
                return true;
            }
            if !state.pending.is_empty() {
                // Wave barrier: the next frontier ships only once
                // every visit from the current one has folded, so
                // burst composition — and with it the batch-frame
                // count — is a pure function of the traversal, never
                // of reply arrival timing.
                return false;
            }
            let mut burst = Vec::new();
            state.coord.drain_frontier(&mut burst);
            if burst.is_empty() {
                // Frontier exhausted, nothing outstanding: the
                // traversal covered its subcube.
                self.finish_query(query_id, state);
                return true;
            }
            self.dispatch_burst(query_id, state, burst);
        }
    }

    /// Ships one frontier burst: `pending` records the burst order,
    /// self-owned vertices queue for the local fast path, and remote
    /// vertices group per owner into `TQueryBatch` frames. Vertices
    /// whose reply is already parked — delivered ahead of time by a
    /// remote worker's eager region expansion — enter `pending` but
    /// are never re-dispatched.
    fn dispatch_burst(
        &mut self,
        query_id: u64,
        state: &mut QueryState,
        burst: Vec<(u64, Option<u8>)>,
    ) {
        let remaining = state.coord.remaining() as u64;
        // Insertion-ordered grouping keeps frame emission (and thus
        // the bench's frame counts) deterministic.
        let mut groups: Vec<(u32, Vec<(u64, u8)>)> = Vec::new();
        for (bits, via_dim) in burst {
            state.pending.push_back(bits);
            if state.replies.contains_key(&bits) {
                // Already answered by the owning worker's eager
                // expansion; the fold loop will consume it in order.
                state.predelegated.remove(&bits);
                continue;
            }
            if state.predelegated.remove(&bits) {
                // A remote expansion already forwarded this visit to
                // its owner; the reply is on its way unsolicited.
                continue;
            }
            let owner = self.shards.owner_of(bits);
            if owner == self.index {
                self.local_work.push_back((query_id, bits, via_dim));
                continue;
            }
            match via_dim {
                Some(dim) => match groups.iter_mut().find(|(o, _)| *o == owner) {
                    Some((_, entries)) => entries.push((bits, dim)),
                    None => groups.push((owner, vec![(bits, dim)])),
                },
                // Only the traversal root lacks a dimension. An
                // arrival dim of `r` spans every free dim below it —
                // exactly the root's frontier — so the root rides the
                // same batch path and its region expands eagerly at
                // the owner like any other.
                None => {
                    let dim = self.shape.r();
                    match groups.iter_mut().find(|(o, _)| *o == owner) {
                        Some((_, entries)) => entries.push((bits, dim)),
                        None => groups.push((owner, vec![(bits, dim)])),
                    }
                }
            }
        }
        for (owner, entries) in groups {
            // Always a batch, even for a single entry: the batch
            // handler eagerly expands the receiver's whole region, so
            // a lone cross-cut edge still delegates the subtree below
            // it instead of bouncing every child through here.
            let keywords: KeywordSet = (**state.coord.keywords()).clone();
            self.send(
                owner as usize,
                &WireMsg::TQueryBatch {
                    query_id,
                    keywords,
                    remaining,
                    coord: self.index,
                    entries,
                },
            );
        }
    }

    /// Completes one sequential query: truncates to the threshold and
    /// ships `QueryDone` to the client.
    fn finish_query(&mut self, query_id: u64, state: &mut QueryState) {
        state.coord.stop();
        state.results.truncate(state.threshold);
        let objects = std::mem::take(&mut state.results);
        let client = self.client_slot();
        self.send(client, &WireMsg::QueryDone { query_id, objects });
    }

    /// Runs up to [`LOCAL_WORK_BUDGET`] queued self-owned visits: scan
    /// inline (no encode/decode), park the reply, re-drive the query.
    /// Entries whose query has completed (threshold met while they
    /// waited) are skipped, mirroring a dropped late continuation.
    fn run_local_work(&mut self) {
        for _ in 0..LOCAL_WORK_BUDGET {
            let Some((query_id, bits, via_dim)) = self.local_work.pop_front() else {
                return;
            };
            let Some(mut state) = self.queries.remove(&query_id) else {
                continue;
            };
            self.stats.scans += 1;
            let found = scan_store(
                self.tables.get(&bits),
                state.coord.keywords(),
                state.coord.remaining(),
            );
            let vertex = Vertex::from_bits(self.shape, bits).expect("coordinator stays in cube");
            let children = SupersetCoordinator::children_of(vertex, via_dim);
            let objects = found
                .iter()
                .map(|r| (r.object.raw(), r.extra_keywords))
                .collect();
            state.replies.insert(bits, (objects, children));
            if !self.drive(query_id, &mut state) {
                self.queries.insert(query_id, state);
            }
        }
    }

    /// Executes a batch of [`FtCmd`]s from the shared machine: local
    /// scans run inline (their replies may emit more commands, hence
    /// the work queue), remote visits become `T_QUERY` frames with a
    /// wall-clock deadline.
    fn ft_exec(&mut self, query_id: u64, state: &mut FtQueryState, cmds: Vec<FtCmd>) {
        let mut queue: VecDeque<FtCmd> = cmds.into();
        while let Some(cmd) = queue.pop_front() {
            match cmd {
                // The runtime's requester is the client, which cannot
                // coordinate; and the root scan is always local to this
                // worker, so the root can never time out here.
                FtCmd::Promote => debug_assert!(false, "root cannot die on its own coordinator"),
                FtCmd::Cancel { bits } => {
                    state.timer_gen.remove(&bits);
                }
                FtCmd::Send {
                    bits,
                    via_dim,
                    attempt: _,
                    timeout,
                } => {
                    let owner = self.shards.owner_of(bits);
                    if owner == self.index {
                        self.stats.scans += 1;
                        let kw = Arc::clone(state.core.keywords());
                        let found = scan_store(self.tables.get(&bits), &kw, state.core.remaining());
                        let vertex =
                            Vertex::from_bits(self.shape, bits).expect("coordinator stays in cube");
                        let added = state.record(
                            found
                                .iter()
                                .map(|r| (r.object.raw(), r.extra_keywords))
                                .collect(),
                        );
                        let children = SupersetCoordinator::children_of(vertex, via_dim);
                        let mut more = Vec::new();
                        state
                            .core
                            .on_reply(bits, added, &children, |_, _| false, &mut more);
                        queue.extend(more);
                    } else {
                        let keywords: KeywordSet = (**state.core.keywords()).clone();
                        self.send(
                            owner as usize,
                            &WireMsg::TQuery {
                                query_id,
                                bits,
                                keywords,
                                remaining: state.core.remaining() as u64,
                                via_dim,
                                coord: self.index,
                            },
                        );
                        if let Some(ms) = timeout {
                            self.timer_seq += 1;
                            let gen = self.timer_seq;
                            state.timer_gen.insert(bits, gen);
                            self.timers.push(Reverse((
                                Instant::now() + Duration::from_millis(ms),
                                query_id,
                                bits,
                                gen,
                            )));
                        }
                    }
                }
            }
        }
    }

    /// Re-files an in-progress FT query, or completes it when nothing
    /// is left in flight.
    fn ft_settle(&mut self, query_id: u64, mut state: FtQueryState) {
        if state.core.in_flight() > 0 {
            self.ft_queries.insert(query_id, state);
            return;
        }
        let cov = state.core.finish();
        state.results.truncate(state.threshold);
        let client = self.client_slot();
        self.send(
            client,
            &WireMsg::FtQueryDone {
                query_id,
                objects: state.results,
                subcube: cov.subcube_vertices,
                reached: cov.reached,
                retries: cov.retries,
                timeouts: cov.timeouts,
                redelegations: cov.redelegations,
                queries_sent: cov.queries_sent,
                conts: state.conts,
                result_messages: state.result_messages,
                skipped: cov.skipped,
            },
        );
    }

    fn next_timer_deadline(&self) -> Option<Instant> {
        self.timers.peek().map(|Reverse((deadline, ..))| *deadline)
    }

    /// Fires every expired FT deadline through the shared machine.
    /// Heap entries whose generation no longer matches the query's
    /// current one are stale (answered or already retried) and skip.
    fn fire_expired_timers(&mut self) {
        loop {
            let now = Instant::now();
            match self.timers.peek() {
                Some(Reverse((deadline, ..))) if *deadline <= now => {}
                _ => return,
            }
            let Reverse((_, query_id, bits, gen)) = self.timers.pop().expect("peeked");
            let Some(mut state) = self.ft_queries.remove(&query_id) else {
                continue;
            };
            if state.timer_gen.get(&bits) != Some(&gen) {
                self.ft_queries.insert(query_id, state);
                continue;
            }
            state.timer_gen.remove(&bits);
            let mut cmds = Vec::new();
            state.core.on_timeout(bits, |_, _| false, &mut cmds);
            self.ft_exec(query_id, &mut state, cmds);
            self.ft_settle(query_id, state);
        }
    }

    /// Queues one frame for `dest`, rolling its fate when the fault
    /// injector covers it (worker→worker traversal frames only).
    /// Delivery happens at the next flush point, which is what lets
    /// every frame emitted while handling one packet coalesce into a
    /// single fabric operation per destination.
    fn send(&mut self, dest: usize, msg: &WireMsg) {
        self.stats.frames_sent += 1;
        if let WireMsg::TQueryBatch { entries, .. } = msg {
            self.stats.batch_frames_sent += 1;
            self.stats.batch_entries_sent += entries.len() as u64;
        }
        if let WireMsg::TContBatch { entries, .. } = msg {
            self.stats.batch_frames_sent += 1;
            self.stats.batch_entries_sent += entries.len() as u64;
        }
        let mut frame = self.frame_pool.pop().unwrap_or_default();
        msg.encode_into(&mut frame);
        let injectable = dest != self.client_slot()
            && matches!(
                msg,
                WireMsg::TQuery { .. }
                    | WireMsg::TQueryBatch { .. }
                    | WireMsg::TCont { .. }
                    | WireMsg::TContBatch { .. }
            );
        if injectable {
            if let Some(injector) = &mut self.injector {
                match injector.fate(dest as u32) {
                    Fate::Deliver => {}
                    Fate::Drop => {
                        self.stats.frames_dropped += 1;
                        return;
                    }
                    Fate::Duplicate => {
                        self.stats.frames_duplicated += 1;
                        self.outbox[dest].push_back(frame.clone());
                    }
                    Fate::Delay => {
                        self.stats.frames_delayed += 1;
                        self.stash[dest].push_back(frame);
                        return;
                    }
                }
            }
        }
        self.outbox[dest].push_back(frame);
        // A delivered frame releases anything stashed for this
        // destination *behind* it — delay == reorder.
        while let Some(stashed) = self.stash[dest].pop_front() {
            self.outbox[dest].push_back(stashed);
        }
    }

    /// Returns a consumed packet buffer to the pool so the next
    /// [`Worker::send`] encodes into it instead of allocating.
    fn recycle(&mut self, buf: Vec<u8>) {
        if self.frame_pool.len() < FRAME_POOL_CAP {
            self.frame_pool.push(buf);
        }
    }

    /// Writes off frames still sitting in the delay stash (shutdown or
    /// crash): they were counted as sent but will never travel.
    fn abandon_stash(&mut self) {
        let stranded: usize = self.stash.iter().map(VecDeque::len).sum();
        self.stats.frames_dropped += stranded as u64;
        for q in &mut self.stash {
            q.clear();
        }
    }

    fn flush_outboxes(&mut self) {
        for dest in 0..self.outbox.len() {
            self.flush_outbox(dest);
        }
    }

    fn flush_outbox(&mut self, dest: usize) {
        if self.outbox[dest].is_empty() {
            return;
        }
        match self.transport.flush(dest, &mut self.outbox[dest]) {
            FlushStatus::Done => {}
            FlushStatus::Full => {
                // Fabric pushed back: frames stay parked and re-flush
                // on the next loop iteration.
                self.stats.backpressure_hits += 1;
            }
            FlushStatus::Closed { frames_dropped } => {
                // Destination gone (only possible once the run is
                // over); the transport counted what it discarded.
                self.stats.frames_dropped += frames_dropped;
            }
        }
    }

    fn outboxes_empty(&self) -> bool {
        self.outbox.iter().all(VecDeque::is_empty)
    }

    /// Window close: asks a batching transport to push its accumulated
    /// frames to the fabric, folding the outcome into the same
    /// counters a flush uses.
    fn drain_transport(&mut self) {
        match self.transport.drain() {
            FlushStatus::Done => {}
            FlushStatus::Full => self.stats.backpressure_hits += 1,
            FlushStatus::Closed { frames_dropped } => self.stats.frames_dropped += frames_dropped,
        }
    }
}
