//! Hand-rolled length-prefixed wire codec for the runtime's protocol
//! frames.
//!
//! Workers exchange `Vec<u8>` frames, never structs — the thread
//! boundary is byte-defined, exactly as a socket boundary would be, so
//! moving a worker onto a real transport changes nothing above this
//! module. A frame is
//!
//! ```text
//! [ body_len: u32 LE ][ tag: u8 ][ fields... ]
//!   └─ prefix ─┘       └───── body (body_len bytes) ─────┘
//! ```
//!
//! All integers are little-endian and fixed-width. Variable-length
//! fields carry their own count: keywords are `u16 count` then per
//! keyword `u16 len + UTF-8 bytes`; object lists are `u32 count` of
//! fixed-width records. `Option<u8>` dimensions encode as a single
//! byte with `0xFF` for `None` (dimensions never exceed 62).
//!
//! [`decode_exact`] is strict: a frame must parse completely — a short
//! buffer is [`WireError::Truncated`], excess bytes (after the frame
//! or inside the declared body) are [`WireError::TrailingGarbage`],
//! and an unknown tag is [`WireError::BadTag`]. The roundtrip tests
//! sweep every variant through every truncation point.

use std::fmt;

use hyperdex_core::{Keyword, KeywordSet, RecoveryStrategy};

/// Upper bound on a frame body; larger declared lengths are rejected
/// before any allocation ([`WireError::Oversized`]).
pub const MAX_BODY_LEN: u32 = 16 * 1024 * 1024;

/// The length prefix's width in bytes.
pub const PREFIX_LEN: usize = 4;

/// One protocol frame between runtime endpoints (workers, or the
/// client handle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// Client → vertex owner: index `object` under `keywords`
    /// (`T_INSERT`; the owner recomputes `F_h(K)` itself — the frame
    /// carries no derived state).
    Insert {
        /// The object's raw id.
        object: u64,
        /// Its full keyword set.
        keywords: KeywordSet,
    },
    /// Client → root owner: start a superset search. The receiving
    /// worker owns `F_h(K)` and becomes the query's coordinator.
    Query {
        /// Client-assigned correlation id.
        query_id: u64,
        /// The queried keyword set `K`.
        keywords: KeywordSet,
        /// Results wanted (the paper's `c`).
        threshold: u64,
    },
    /// Coordinator → vertex owner: visit one SBT node (`T_QUERY`).
    TQuery {
        /// Correlation id of the driving query.
        query_id: u64,
        /// The vertex to scan.
        bits: u64,
        /// The queried keyword set.
        keywords: KeywordSet,
        /// Results still wanted.
        remaining: u64,
        /// Arrival dimension (`None` only for a root visit).
        via_dim: Option<u8>,
        /// Worker index of the coordinator (where to send `TCont`).
        coord: u32,
    },
    /// Vertex owner → coordinator: scan results plus SBT children
    /// (`T_CONT`; a threshold-satisfying node simply reports enough
    /// results for the coordinator to stop — no separate `T_STOP`).
    TCont {
        /// Correlation id of the driving query.
        query_id: u64,
        /// The scanned vertex. Sequential coordination has exactly one
        /// visit outstanding, but the fault-tolerant coordinator keeps
        /// many in flight — replies must name their vertex.
        bits: u64,
        /// Matches as `(object id, extra keyword count)` pairs.
        objects: Vec<(u64, u32)>,
        /// SBT child contacts `(vertex bits, dimension)`.
        children: Vec<(u64, u8)>,
    },
    /// Coordinator → vertex owner: visit several SBT nodes of one
    /// query in a single frame (frontier aggregation). All entries
    /// share the query's keywords and the coordinator's result budget
    /// at dispatch time; each entry carries its own vertex and arrival
    /// dimension. Batch entries are never traversal roots — the root
    /// is always owned by its own coordinator — so the dimension is a
    /// plain byte. One batch frame counts as **one** frame in the
    /// conservation ledger; per-entry volume is tracked by the
    /// worker's `batch_entries_sent` counter.
    TQueryBatch {
        /// Correlation id of the driving query.
        query_id: u64,
        /// The queried keyword set.
        keywords: KeywordSet,
        /// Results still wanted when the batch was dispatched.
        remaining: u64,
        /// Worker index of the coordinator (where to send the reply).
        coord: u32,
        /// The vertices to scan, as `(bits, via_dim)` pairs in
        /// dispatch order.
        entries: Vec<(u64, u8)>,
    },
    /// Vertex owner → coordinator: the replies to a whole
    /// [`WireMsg::TQueryBatch`], one entry per scanned vertex, in the
    /// batch's order.
    TContBatch {
        /// Correlation id of the driving query.
        query_id: u64,
        /// Per-vertex replies.
        entries: Vec<BatchReply>,
    },
    /// Coordinator → client: the search finished.
    QueryDone {
        /// Correlation id of the finished query.
        query_id: u64,
        /// All matches, truncated to the threshold.
        objects: Vec<(u64, u32)>,
    },
    /// Client → vertex owner: exact-match pin lookup.
    Pin {
        /// Client-assigned correlation id.
        query_id: u64,
        /// The full keyword set to pin.
        keywords: KeywordSet,
    },
    /// Vertex owner → client: the pin matches (sent even when empty,
    /// so the client observes completion).
    PinResults {
        /// Correlation id of the pin.
        query_id: u64,
        /// Exact-match object ids.
        objects: Vec<u64>,
    },
    /// Client → vertex owner: install a whole vertex table at once
    /// (bulk load / rebalancing, the runtime's handoff).
    Handoff {
        /// The vertex receiving the entries.
        bits: u64,
        /// `⟨K', objects⟩` entries to install.
        entries: Vec<(KeywordSet, Vec<u64>)>,
    },
    /// Client → worker: drain barrier. The worker replies `FlushAck`
    /// after processing everything queued before this frame.
    Flush {
        /// Barrier token echoed in the ack.
        token: u64,
    },
    /// Worker → client: barrier reached.
    FlushAck {
        /// The echoed barrier token.
        token: u64,
        /// The acknowledging worker's index.
        worker: u32,
    },
    /// Client → worker: flush outboxes and exit the event loop.
    Shutdown,
    /// Client → root owner: start a *fault-tolerant* superset search
    /// (§3.4). The receiving worker coordinates the traversal with
    /// deadlines, retries, and the named recovery strategy.
    FtQuery {
        /// Client-assigned correlation id.
        query_id: u64,
        /// The queried keyword set `K`.
        keywords: KeywordSet,
        /// Results wanted (the paper's `c`).
        threshold: u64,
        /// Recovery behaviour on a missed deadline.
        strategy: RecoveryStrategy,
        /// Retransmissions per child before declaring it dead.
        max_retries: u32,
        /// First-attempt deadline in milliseconds; doubles per retry.
        base_timeout_ms: u64,
    },
    /// Coordinator → client: the fault-tolerant search finished, with
    /// its exact coverage accounting.
    FtQueryDone {
        /// Correlation id of the finished query.
        query_id: u64,
        /// All matches, truncated to the threshold.
        objects: Vec<(u64, u32)>,
        /// Vertices in the query's induced subcube.
        subcube: u64,
        /// Distinct vertices that answered.
        reached: u64,
        /// Retransmissions after a missed deadline.
        retries: u64,
        /// Children declared dead after the retry budget ran out.
        timeouts: u64,
        /// Dead children whose subtrees were re-delegated.
        redelegations: u64,
        /// `T_QUERY` transmissions, including retransmissions.
        queries_sent: u64,
        /// Continuation messages the coordinator received.
        conts: u64,
        /// Continuations that carried at least one fresh result.
        result_messages: u64,
        /// Bits of the vertices given up on, sorted ascending.
        skipped: Vec<u64>,
    },
    /// Supervisor → respawned worker: the journal replay for its shard
    /// is complete; parked frames may now be processed.
    RepairDone {
        /// The recovering worker's index.
        worker: u32,
    },
}

/// One scanned vertex's reply inside a [`WireMsg::TContBatch`]:
/// `(bits, objects, children)` — the same payload a standalone
/// [`WireMsg::TCont`] carries for that vertex.
pub type BatchReply = (u64, Vec<(u64, u32)>, Vec<(u64, u8)>);

const TAG_INSERT: u8 = 0;
const TAG_QUERY: u8 = 1;
const TAG_TQUERY: u8 = 2;
const TAG_TCONT: u8 = 3;
const TAG_QUERY_DONE: u8 = 4;
const TAG_PIN: u8 = 5;
const TAG_PIN_RESULTS: u8 = 6;
const TAG_HANDOFF: u8 = 7;
const TAG_FLUSH: u8 = 8;
const TAG_FLUSH_ACK: u8 = 9;
const TAG_SHUTDOWN: u8 = 10;
const TAG_FT_QUERY: u8 = 11;
const TAG_FT_QUERY_DONE: u8 = 12;
const TAG_REPAIR_DONE: u8 = 13;
const TAG_TQUERY_BATCH: u8 = 14;
const TAG_TCONT_BATCH: u8 = 15;

/// The `via_dim` byte that stands for `None`.
const DIM_NONE: u8 = 0xFF;

/// Decode failure. Every variant pinpoints what the bytes got wrong;
/// none of them allocates proportionally to attacker-controlled
/// lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes it had left.
        have: usize,
    },
    /// Bytes remain after the frame (or after the body's last field).
    TrailingGarbage {
        /// How many bytes were left over.
        extra: usize,
    },
    /// Unknown message tag.
    BadTag(u8),
    /// Declared body length exceeds [`MAX_BODY_LEN`].
    Oversized {
        /// The declared length.
        len: u32,
    },
    /// A keyword's bytes are not valid UTF-8.
    BadUtf8,
    /// A keyword failed [`Keyword::new`]'s validation (empty after
    /// normalization).
    BadKeyword,
    /// An `FtQuery`'s strategy byte names no [`RecoveryStrategy`].
    BadStrategy(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} more bytes, had {have}")
            }
            WireError::TrailingGarbage { extra } => {
                write!(f, "{extra} trailing bytes after the frame")
            }
            WireError::BadTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            WireError::Oversized { len } => {
                write!(f, "declared body length {len} exceeds {MAX_BODY_LEN}")
            }
            WireError::BadUtf8 => write!(f, "keyword bytes are not valid UTF-8"),
            WireError::BadKeyword => write!(f, "keyword failed validation"),
            WireError::BadStrategy(b) => write!(f, "unknown recovery strategy byte {b:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireMsg {
    /// Serializes the message into a complete frame (length prefix
    /// included).
    pub fn encode(&self) -> Vec<u8> {
        let mut frame = Vec::with_capacity(64);
        self.encode_into(&mut frame);
        frame
    }

    /// Serializes the message into `frame` (cleared first), producing
    /// the same bytes as [`WireMsg::encode`]. Hot send paths reuse one
    /// scratch buffer across frames instead of allocating per frame.
    pub fn encode_into(&self, frame: &mut Vec<u8>) {
        frame.clear();
        frame.resize(PREFIX_LEN, 0);
        let body = frame;
        match self {
            WireMsg::Insert { object, keywords } => {
                body.push(TAG_INSERT);
                put_u64(body, *object);
                put_keywords(body, keywords);
            }
            WireMsg::Query {
                query_id,
                keywords,
                threshold,
            } => {
                body.push(TAG_QUERY);
                put_u64(body, *query_id);
                put_u64(body, *threshold);
                put_keywords(body, keywords);
            }
            WireMsg::TQuery {
                query_id,
                bits,
                keywords,
                remaining,
                via_dim,
                coord,
            } => {
                body.push(TAG_TQUERY);
                put_u64(body, *query_id);
                put_u64(body, *bits);
                put_u64(body, *remaining);
                body.push(via_dim.unwrap_or(DIM_NONE));
                put_u32(body, *coord);
                put_keywords(body, keywords);
            }
            WireMsg::TCont {
                query_id,
                bits,
                objects,
                children,
            } => {
                body.push(TAG_TCONT);
                put_u64(body, *query_id);
                put_u64(body, *bits);
                put_u32(body, objects.len() as u32);
                for (id, extra) in objects {
                    put_u64(body, *id);
                    put_u32(body, *extra);
                }
                put_u16(body, children.len() as u16);
                for (bits, dim) in children {
                    put_u64(body, *bits);
                    body.push(*dim);
                }
            }
            WireMsg::TQueryBatch {
                query_id,
                keywords,
                remaining,
                coord,
                entries,
            } => {
                body.push(TAG_TQUERY_BATCH);
                put_u64(body, *query_id);
                put_u64(body, *remaining);
                put_u32(body, *coord);
                put_keywords(body, keywords);
                put_u16(body, entries.len() as u16);
                for (bits, dim) in entries {
                    put_u64(body, *bits);
                    body.push(*dim);
                }
            }
            WireMsg::TContBatch { query_id, entries } => {
                body.push(TAG_TCONT_BATCH);
                put_u64(body, *query_id);
                put_u16(body, entries.len() as u16);
                for (bits, objects, children) in entries {
                    put_u64(body, *bits);
                    put_u32(body, objects.len() as u32);
                    for (id, extra) in objects {
                        put_u64(body, *id);
                        put_u32(body, *extra);
                    }
                    put_u16(body, children.len() as u16);
                    for (bits, dim) in children {
                        put_u64(body, *bits);
                        body.push(*dim);
                    }
                }
            }
            WireMsg::QueryDone { query_id, objects } => {
                body.push(TAG_QUERY_DONE);
                put_u64(body, *query_id);
                put_u32(body, objects.len() as u32);
                for (id, extra) in objects {
                    put_u64(body, *id);
                    put_u32(body, *extra);
                }
            }
            WireMsg::Pin { query_id, keywords } => {
                body.push(TAG_PIN);
                put_u64(body, *query_id);
                put_keywords(body, keywords);
            }
            WireMsg::PinResults { query_id, objects } => {
                body.push(TAG_PIN_RESULTS);
                put_u64(body, *query_id);
                put_u32(body, objects.len() as u32);
                for id in objects {
                    put_u64(body, *id);
                }
            }
            WireMsg::Handoff { bits, entries } => {
                body.push(TAG_HANDOFF);
                put_u64(body, *bits);
                put_u32(body, entries.len() as u32);
                for (set, objects) in entries {
                    put_keywords(body, set);
                    put_u32(body, objects.len() as u32);
                    for id in objects {
                        put_u64(body, *id);
                    }
                }
            }
            WireMsg::Flush { token } => {
                body.push(TAG_FLUSH);
                put_u64(body, *token);
            }
            WireMsg::FlushAck { token, worker } => {
                body.push(TAG_FLUSH_ACK);
                put_u64(body, *token);
                put_u32(body, *worker);
            }
            WireMsg::Shutdown => body.push(TAG_SHUTDOWN),
            WireMsg::FtQuery {
                query_id,
                keywords,
                threshold,
                strategy,
                max_retries,
                base_timeout_ms,
            } => {
                body.push(TAG_FT_QUERY);
                put_u64(body, *query_id);
                put_u64(body, *threshold);
                body.push(strategy_byte(*strategy));
                put_u32(body, *max_retries);
                put_u64(body, *base_timeout_ms);
                put_keywords(body, keywords);
            }
            WireMsg::FtQueryDone {
                query_id,
                objects,
                subcube,
                reached,
                retries,
                timeouts,
                redelegations,
                queries_sent,
                conts,
                result_messages,
                skipped,
            } => {
                body.push(TAG_FT_QUERY_DONE);
                put_u64(body, *query_id);
                put_u64(body, *subcube);
                put_u64(body, *reached);
                put_u64(body, *retries);
                put_u64(body, *timeouts);
                put_u64(body, *redelegations);
                put_u64(body, *queries_sent);
                put_u64(body, *conts);
                put_u64(body, *result_messages);
                put_u32(body, objects.len() as u32);
                for (id, extra) in objects {
                    put_u64(body, *id);
                    put_u32(body, *extra);
                }
                put_u32(body, skipped.len() as u32);
                for bits in skipped {
                    put_u64(body, *bits);
                }
            }
            WireMsg::RepairDone { worker } => {
                body.push(TAG_REPAIR_DONE);
                put_u32(body, *worker);
            }
        }
        let body_len = (body.len() - PREFIX_LEN) as u32;
        debug_assert!(body_len <= MAX_BODY_LEN);
        body[..PREFIX_LEN].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Parses one frame from the front of `buf`, returning the message
    /// and how many bytes it consumed (stream decoding: the caller may
    /// hold several concatenated frames).
    pub fn decode(buf: &[u8]) -> Result<(WireMsg, usize), WireError> {
        if buf.len() < PREFIX_LEN {
            return Err(WireError::Truncated {
                needed: PREFIX_LEN - buf.len(),
                have: buf.len(),
            });
        }
        let body_len = u32::from_le_bytes(buf[..PREFIX_LEN].try_into().expect("4 bytes"));
        if body_len > MAX_BODY_LEN {
            return Err(WireError::Oversized { len: body_len });
        }
        let body_len = body_len as usize;
        let rest = &buf[PREFIX_LEN..];
        if rest.len() < body_len {
            return Err(WireError::Truncated {
                needed: body_len - rest.len(),
                have: rest.len(),
            });
        }
        let mut r = Reader {
            buf: &rest[..body_len],
            pos: 0,
        };
        let msg = decode_body(&mut r)?;
        // Every body byte must belong to a field — a frame whose body
        // outruns its fields is corrupt, not padded.
        if r.pos != r.buf.len() {
            return Err(WireError::TrailingGarbage {
                extra: r.buf.len() - r.pos,
            });
        }
        Ok((msg, PREFIX_LEN + body_len))
    }

    /// [`WireMsg::decode`] for exactly-one-frame buffers: any byte
    /// beyond the frame is [`WireError::TrailingGarbage`]. This is the
    /// entry point workers use — channels deliver whole frames.
    pub fn decode_exact(buf: &[u8]) -> Result<WireMsg, WireError> {
        let (msg, used) = WireMsg::decode(buf)?;
        if used != buf.len() {
            return Err(WireError::TrailingGarbage {
                extra: buf.len() - used,
            });
        }
        Ok(msg)
    }
}

fn decode_body(r: &mut Reader<'_>) -> Result<WireMsg, WireError> {
    let tag = r.u8()?;
    match tag {
        TAG_INSERT => Ok(WireMsg::Insert {
            object: r.u64()?,
            keywords: get_keywords(r)?,
        }),
        TAG_QUERY => Ok(WireMsg::Query {
            query_id: r.u64()?,
            threshold: r.u64()?,
            keywords: get_keywords(r)?,
        }),
        TAG_TQUERY => Ok(WireMsg::TQuery {
            query_id: r.u64()?,
            bits: r.u64()?,
            remaining: r.u64()?,
            via_dim: match r.u8()? {
                DIM_NONE => None,
                d => Some(d),
            },
            coord: r.u32()?,
            keywords: get_keywords(r)?,
        }),
        TAG_TCONT => {
            let query_id = r.u64()?;
            let bits = r.u64()?;
            let n = r.u32()? as usize;
            let mut objects = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                objects.push((r.u64()?, r.u32()?));
            }
            let n = r.u16()? as usize;
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push((r.u64()?, r.u8()?));
            }
            Ok(WireMsg::TCont {
                query_id,
                bits,
                objects,
                children,
            })
        }
        TAG_QUERY_DONE => {
            let query_id = r.u64()?;
            let n = r.u32()? as usize;
            let mut objects = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                objects.push((r.u64()?, r.u32()?));
            }
            Ok(WireMsg::QueryDone { query_id, objects })
        }
        TAG_PIN => Ok(WireMsg::Pin {
            query_id: r.u64()?,
            keywords: get_keywords(r)?,
        }),
        TAG_PIN_RESULTS => {
            let query_id = r.u64()?;
            let n = r.u32()? as usize;
            let mut objects = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                objects.push(r.u64()?);
            }
            Ok(WireMsg::PinResults { query_id, objects })
        }
        TAG_HANDOFF => {
            let bits = r.u64()?;
            let n = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let set = get_keywords(r)?;
                let m = r.u32()? as usize;
                let mut objects = Vec::with_capacity(m.min(1024));
                for _ in 0..m {
                    objects.push(r.u64()?);
                }
                entries.push((set, objects));
            }
            Ok(WireMsg::Handoff { bits, entries })
        }
        TAG_FLUSH => Ok(WireMsg::Flush { token: r.u64()? }),
        TAG_FLUSH_ACK => Ok(WireMsg::FlushAck {
            token: r.u64()?,
            worker: r.u32()?,
        }),
        TAG_SHUTDOWN => Ok(WireMsg::Shutdown),
        TAG_FT_QUERY => Ok(WireMsg::FtQuery {
            query_id: r.u64()?,
            threshold: r.u64()?,
            strategy: strategy_from_byte(r.u8()?)?,
            max_retries: r.u32()?,
            base_timeout_ms: r.u64()?,
            keywords: get_keywords(r)?,
        }),
        TAG_FT_QUERY_DONE => {
            let query_id = r.u64()?;
            let subcube = r.u64()?;
            let reached = r.u64()?;
            let retries = r.u64()?;
            let timeouts = r.u64()?;
            let redelegations = r.u64()?;
            let queries_sent = r.u64()?;
            let conts = r.u64()?;
            let result_messages = r.u64()?;
            let n = r.u32()? as usize;
            let mut objects = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                objects.push((r.u64()?, r.u32()?));
            }
            let n = r.u32()? as usize;
            let mut skipped = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                skipped.push(r.u64()?);
            }
            Ok(WireMsg::FtQueryDone {
                query_id,
                objects,
                subcube,
                reached,
                retries,
                timeouts,
                redelegations,
                queries_sent,
                conts,
                result_messages,
                skipped,
            })
        }
        TAG_REPAIR_DONE => Ok(WireMsg::RepairDone { worker: r.u32()? }),
        TAG_TQUERY_BATCH => {
            let query_id = r.u64()?;
            let remaining = r.u64()?;
            let coord = r.u32()?;
            let keywords = get_keywords(r)?;
            let n = r.u16()? as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((r.u64()?, r.u8()?));
            }
            Ok(WireMsg::TQueryBatch {
                query_id,
                keywords,
                remaining,
                coord,
                entries,
            })
        }
        TAG_TCONT_BATCH => {
            let query_id = r.u64()?;
            let n = r.u16()? as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let bits = r.u64()?;
                let m = r.u32()? as usize;
                let mut objects = Vec::with_capacity(m.min(1024));
                for _ in 0..m {
                    objects.push((r.u64()?, r.u32()?));
                }
                let c = r.u16()? as usize;
                let mut children = Vec::with_capacity(c);
                for _ in 0..c {
                    children.push((r.u64()?, r.u8()?));
                }
                entries.push((bits, objects, children));
            }
            Ok(WireMsg::TContBatch { query_id, entries })
        }
        other => Err(WireError::BadTag(other)),
    }
}

fn strategy_byte(s: RecoveryStrategy) -> u8 {
    match s {
        RecoveryStrategy::Naive => 0,
        RecoveryStrategy::RetryOnly => 1,
        RecoveryStrategy::Redelegate => 2,
        RecoveryStrategy::ReplicatedFailover => 3,
    }
}

fn strategy_from_byte(b: u8) -> Result<RecoveryStrategy, WireError> {
    match b {
        0 => Ok(RecoveryStrategy::Naive),
        1 => Ok(RecoveryStrategy::RetryOnly),
        2 => Ok(RecoveryStrategy::Redelegate),
        3 => Ok(RecoveryStrategy::ReplicatedFailover),
        other => Err(WireError::BadStrategy(other)),
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_keywords(out: &mut Vec<u8>, set: &KeywordSet) {
    put_u16(out, set.len() as u16);
    for kw in set.iter() {
        let bytes = kw.as_bytes();
        put_u16(out, bytes.len() as u16);
        out.extend_from_slice(bytes);
    }
}

fn get_keywords(r: &mut Reader<'_>) -> Result<KeywordSet, WireError> {
    let n = r.u16()? as usize;
    let mut set = KeywordSet::new();
    for _ in 0..n {
        let len = r.u16()? as usize;
        let bytes = r.bytes(len)?;
        let text = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
        let kw = Keyword::new(text).map_err(|_| WireError::BadKeyword)?;
        set.insert(kw);
    }
    Ok(set)
}

/// Bounds-checked body reader; every miss is a precise `Truncated`.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(WireError::Truncated {
                needed: n - have,
                have,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    /// One exemplar per variant, with non-trivial field values so every
    /// encoder branch is exercised.
    fn exemplars() -> Vec<WireMsg> {
        vec![
            WireMsg::Insert {
                object: 0xDEAD_BEEF,
                keywords: set("alpha beta gamma"),
            },
            WireMsg::Query {
                query_id: 7,
                keywords: set("alpha"),
                threshold: u64::MAX - 1,
            },
            WireMsg::TQuery {
                query_id: 8,
                bits: 0b1010_1100,
                keywords: set("alpha beta"),
                remaining: 41,
                via_dim: Some(5),
                coord: 3,
            },
            WireMsg::TQuery {
                query_id: 9,
                bits: 0,
                keywords: set("x"),
                remaining: 1,
                via_dim: None,
                coord: 0,
            },
            WireMsg::TCont {
                query_id: 8,
                bits: 0b1010_1100,
                objects: vec![(1, 0), (99, 2)],
                children: vec![(0b1110_1100, 4), (0b1010_1101, 0)],
            },
            WireMsg::TCont {
                query_id: 10,
                bits: 0,
                objects: vec![],
                children: vec![],
            },
            WireMsg::QueryDone {
                query_id: 8,
                objects: vec![(1, 0), (2, 1), (3, 7)],
            },
            WireMsg::Pin {
                query_id: 11,
                keywords: set("exact match terms"),
            },
            WireMsg::PinResults {
                query_id: 11,
                objects: vec![5, 6, 7],
            },
            WireMsg::Handoff {
                bits: 0b11,
                entries: vec![
                    (set("a b"), vec![1, 2]),
                    (set("a b c"), vec![3]),
                    (set("z"), vec![]),
                ],
            },
            WireMsg::Flush { token: 1234 },
            WireMsg::FlushAck {
                token: 1234,
                worker: 7,
            },
            WireMsg::Shutdown,
            WireMsg::FtQuery {
                query_id: 21,
                keywords: set("alpha beta"),
                threshold: 40,
                strategy: RecoveryStrategy::Redelegate,
                max_retries: 2,
                base_timeout_ms: 16,
            },
            WireMsg::FtQuery {
                query_id: 22,
                keywords: set("x"),
                threshold: 1,
                strategy: RecoveryStrategy::Naive,
                max_retries: 0,
                base_timeout_ms: 0,
            },
            WireMsg::FtQueryDone {
                query_id: 21,
                objects: vec![(4, 1), (5, 0)],
                subcube: 8,
                reached: 6,
                retries: 3,
                timeouts: 1,
                redelegations: 1,
                queries_sent: 11,
                conts: 6,
                result_messages: 2,
                skipped: vec![0b0101, 0b0111],
            },
            WireMsg::FtQueryDone {
                query_id: 22,
                objects: vec![],
                subcube: 1,
                reached: 1,
                retries: 0,
                timeouts: 0,
                redelegations: 0,
                queries_sent: 1,
                conts: 0,
                result_messages: 0,
                skipped: vec![],
            },
            WireMsg::RepairDone { worker: 3 },
            WireMsg::TQueryBatch {
                query_id: 30,
                keywords: set("alpha beta"),
                remaining: 17,
                coord: 2,
                entries: vec![(0b1010_1100, 5), (0b1010_1101, 0), (0b1110_1100, 4)],
            },
            WireMsg::TQueryBatch {
                query_id: 31,
                keywords: set("x"),
                remaining: 1,
                coord: 0,
                entries: vec![],
            },
            WireMsg::TContBatch {
                query_id: 30,
                entries: vec![
                    (0b1010_1100, vec![(1, 0), (99, 2)], vec![(0b1011_1100, 4)]),
                    (0b1010_1101, vec![], vec![]),
                ],
            },
            WireMsg::TContBatch {
                query_id: 31,
                entries: vec![],
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for msg in exemplars() {
            let frame = msg.encode();
            let back =
                WireMsg::decode_exact(&frame).unwrap_or_else(|e| panic!("decode {msg:?}: {e}"));
            assert_eq!(back, msg);
            // Stream decode agrees on the consumed length.
            let (back2, used) = WireMsg::decode(&frame).unwrap();
            assert_eq!(back2, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_encode() {
        // One scratch buffer across every exemplar, in both growing
        // and shrinking order: the bytes must equal a fresh encode.
        let mut scratch = Vec::new();
        for msg in exemplars().iter().chain(exemplars().iter().rev()) {
            msg.encode_into(&mut scratch);
            assert_eq!(scratch, msg.encode(), "{msg:?}");
        }
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        // Fuzz-style sweep: every strict prefix of every exemplar frame
        // must fail with Truncated — never panic, never mis-parse.
        for msg in exemplars() {
            let frame = msg.encode();
            for cut in 0..frame.len() {
                match WireMsg::decode_exact(&frame[..cut]) {
                    Err(WireError::Truncated { .. }) => {}
                    other => panic!("prefix {cut}/{} of {msg:?}: {other:?}", frame.len()),
                }
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        for msg in exemplars() {
            let mut frame = msg.encode();
            frame.push(0xAB);
            assert_eq!(
                WireMsg::decode_exact(&frame),
                Err(WireError::TrailingGarbage { extra: 1 }),
                "{msg:?}"
            );
        }
    }

    #[test]
    fn garbage_inside_the_declared_body_is_rejected() {
        // A body longer than its fields: Shutdown plus one stray byte,
        // with the prefix updated to cover it.
        let mut frame = WireMsg::Shutdown.encode();
        frame.push(0xCD);
        let body_len = (frame.len() - PREFIX_LEN) as u32;
        frame[..PREFIX_LEN].copy_from_slice(&body_len.to_le_bytes());
        assert_eq!(
            WireMsg::decode_exact(&frame),
            Err(WireError::TrailingGarbage { extra: 1 })
        );
    }

    #[test]
    fn bad_tag_is_rejected() {
        let frame = [1u8, 0, 0, 0, 0xEE];
        assert_eq!(WireMsg::decode_exact(&frame), Err(WireError::BadTag(0xEE)));
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(MAX_BODY_LEN + 1).to_le_bytes());
        frame.push(TAG_SHUTDOWN);
        assert_eq!(
            WireMsg::decode_exact(&frame),
            Err(WireError::Oversized {
                len: MAX_BODY_LEN + 1
            })
        );
    }

    #[test]
    fn bad_strategy_byte_is_rejected() {
        let mut frame = WireMsg::FtQuery {
            query_id: 1,
            keywords: set("a"),
            threshold: 1,
            strategy: RecoveryStrategy::RetryOnly,
            max_retries: 1,
            base_timeout_ms: 1,
        }
        .encode();
        // The strategy byte sits right after the tag and two u64s.
        let strategy_at = PREFIX_LEN + 1 + 8 + 8;
        frame[strategy_at] = 0x7F;
        assert_eq!(
            WireMsg::decode_exact(&frame),
            Err(WireError::BadStrategy(0x7F))
        );
    }

    #[test]
    fn invalid_utf8_keyword_is_rejected() {
        // Hand-build an Insert whose single keyword is invalid UTF-8.
        let mut body = vec![TAG_INSERT];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes()); // one keyword
        body.extend_from_slice(&2u16.to_le_bytes()); // two bytes
        body.extend_from_slice(&[0xFF, 0xFE]);
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        assert_eq!(WireMsg::decode_exact(&frame), Err(WireError::BadUtf8));
    }

    #[test]
    fn stream_decode_handles_concatenated_frames() {
        let a = WireMsg::Flush { token: 1 }.encode();
        let b = WireMsg::Shutdown.encode();
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let (m1, used1) = WireMsg::decode(&stream).unwrap();
        assert_eq!(m1, WireMsg::Flush { token: 1 });
        let (m2, used2) = WireMsg::decode(&stream[used1..]).unwrap();
        assert_eq!(m2, WireMsg::Shutdown);
        assert_eq!(used1 + used2, stream.len());
    }
}
