//! `hyperdex-runtime`: the hypercube keyword index on real OS threads.
//!
//! Everything the repo reproduced from the paper so far — pin lookup,
//! SBT superset traversal, inserts — executes here on a multithreaded
//! **shared-nothing** cluster: worker threads own disjoint vertex
//! shards, exchange length-prefixed protocol frames over bounded
//! channels with explicit backpressure, and run the *same*
//! [`hyperdex_core::protocol::SupersetCoordinator`] state machine as
//! the single-threaded simulator, which is what lets the [`parity`]
//! harness demand set-identical results at every thread count.
//!
//! The cluster also survives being hurt: [`fault`] injects seeded
//! drop/duplicate/delay faults and crash-stops on the wire path, while
//! the [`runtime`] supervisor respawns crashed workers and replays
//! their shards, and [`NodeRuntime::superset_search_ft`] runs the
//! shared [`hyperdex_core::FtCoordinator`] recovery machine (retries,
//! backoff, subtree re-delegation) against real wall-clock deadlines.
//!
//! Module map:
//!
//! * [`wire`] — the hand-rolled length-prefixed codec; the thread
//!   boundary is byte-defined, like a socket.
//! * [`shard`] — pure, seeded vertex → worker ownership.
//! * [`fault`] — deterministic fault plans and the per-worker
//!   injector.
//! * [`transport`] — the fabric abstraction ([`Transport`]) with the
//!   bounded-channel implementation and packet coalescing helpers;
//!   `hyperdex-net` plugs a TCP mesh into the same trait.
//! * [`worker`] — the shard-owning event loop, transport-agnostic so
//!   the same code runs in-process and inside a server binary.
//! * [`runtime`] — the client handle, the supervisor, the flush
//!   barrier, the shutdown/conservation protocol.
//! * [`parity`] — the runtime vs. simulator vs. direct-engine parity
//!   harness used by tests and the `runtime` bench, including faulted
//!   executions.
//!
//! ```
//! use hyperdex_runtime::{NodeRuntime, RuntimeConfig};
//! use hyperdex_core::{KeywordSet, ObjectId};
//!
//! let mut rt = NodeRuntime::start(RuntimeConfig::new(8, 4))?;
//! rt.insert(ObjectId::from_raw(1), KeywordSet::parse("rust p2p")?)?;
//! rt.flush();
//! assert_eq!(rt.pin_search(&KeywordSet::parse("rust p2p")?).len(), 1);
//! let report = rt.shutdown();
//! report.assert_conserved();
//! # Ok::<(), hyperdex_core::Error>(())
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod parity;
pub mod runtime;
pub mod shard;
pub mod transport;
pub mod wire;
pub mod worker;

pub use fault::{CrashPoint, Fate, FaultInjector, FaultPlan};
pub use parity::{
    assert_fault_parity, assert_sim_parity, assert_sim_parity_with, FaultParityReport, ParityReport,
};
pub use runtime::{
    BatchResult, FtSearchOptions, FtSearchOutcome, NodeRuntime, Request, RuntimeConfig,
    RuntimeMatch, ShutdownReport, SupervisorStats,
};
pub use shard::{ShardMap, ShardPolicy};
pub use transport::{coalesce, count_frames, take_frame, ChannelTransport, FlushStatus, Transport};
pub use wire::{WireError, WireMsg};
pub use worker::{run_worker, ExitCause, WorkerContext, WorkerExit, WorkerStats};
