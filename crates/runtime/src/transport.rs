//! The transport abstraction under the worker fabric.
//!
//! A worker never talks to an `mpsc` sender (or a socket) directly: it
//! parks outbound frames in a per-destination outbox and asks its
//! [`Transport`] to flush them. The trait captures exactly the
//! never-block discipline the runtime was built on — a flush either
//! ships frames, reports *Full* (fabric pushed back, frames stay
//! parked for a later retry), or reports *Closed* (destination gone,
//! frames dropped **with a count** so conservation still balances).
//!
//! Two implementations exist:
//!
//! * [`ChannelTransport`] — bounded in-process channels, the
//!   [`crate::runtime::NodeRuntime`] fabric;
//! * `hyperdex-net`'s TCP mesh transport — the same worker event loop
//!   across OS processes over loopback or a real network.
//!
//! # Coalescing
//!
//! A flush hands the transport the *whole* per-destination queue, so
//! many frames bound for one destination travel as a single fabric
//! operation: one channel message in-process, one `write` syscall on a
//! socket. The unit on the fabric is therefore a **packet** — one or
//! more length-prefixed [`crate::wire::WireMsg`] frames back to back —
//! and every receive path splits packets with [`take_frame`] and
//! counts logical frames, never fabric operations.

use std::collections::VecDeque;
use std::sync::mpsc::{SyncSender, TrySendError};

use crate::wire::{self, WireError};

/// What a [`Transport::flush`] did with the queued frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushStatus {
    /// Every queued frame was handed to the fabric.
    Done,
    /// The fabric pushed back; undelivered frames remain in the queue
    /// (possibly re-packed into one packet) for a later retry.
    Full,
    /// The destination is gone. The queue was drained and its frames
    /// discarded; the count keeps the conservation law balanced.
    Closed {
        /// Logical frames discarded.
        frames_dropped: u64,
    },
}

/// The worker fabric: endpoint-addressed, never-blocking frame
/// delivery. Endpoints `0..endpoints()-1` are workers (global shard
/// indices); the last endpoint is the client.
pub trait Transport: Send {
    /// Addressable endpoints, including the trailing client slot.
    fn endpoints(&self) -> usize;

    /// Tries to ship every frame queued for `dest`, coalescing
    /// adjacent frames into one fabric operation where the transport
    /// supports it. Must never block.
    ///
    /// A transport may *accept* frames without putting them on the
    /// fabric yet (accumulating toward a batch); such frames count in
    /// [`Transport::pending`] until a later flush or
    /// [`Transport::drain`] ships them.
    fn flush(&mut self, dest: usize, queue: &mut VecDeque<Vec<u8>>) -> FlushStatus;

    /// Logical frames `flush` accepted but is still buffering inside
    /// the transport (accumulated toward a batch, not yet handed to
    /// the fabric). Zero for transports that ship eagerly.
    fn pending(&self) -> u64 {
        0
    }

    /// Window close: pushes every accumulated frame toward the fabric.
    /// `Full` means some remain buffered (the fabric pushed back —
    /// retry later); `Closed` counts frames discarded toward a dead
    /// destination. Must never block.
    fn drain(&mut self) -> FlushStatus {
        FlushStatus::Done
    }

    /// Moves spent frame buffers (consumed and emptied by `flush`)
    /// into `pool` until it holds `cap` buffers, so the caller's
    /// encode path can reuse them instead of allocating.
    fn reclaim(&mut self, pool: &mut Vec<Vec<u8>>, cap: usize) {
        let _ = (pool, cap);
    }
}

/// Spent frame buffers a transport retains for reuse before
/// [`Transport::reclaim`] hands them back to the worker's pool.
pub const SPENT_POOL_CAP: usize = 32;

/// The in-process fabric: one bounded [`SyncSender`] per endpoint,
/// `None` at the owning worker's slot (frames to self never travel).
#[derive(Debug)]
pub struct ChannelTransport {
    links: Vec<Option<SyncSender<Vec<u8>>>>,
    /// Emptied frame buffers salvaged by the pooled coalesce, handed
    /// back to the worker via [`Transport::reclaim`].
    spent: Vec<Vec<u8>>,
}

impl ChannelTransport {
    /// Wraps the per-endpoint senders. `links[i] == None` marks the
    /// slot of the worker holding this transport.
    pub fn new(links: Vec<Option<SyncSender<Vec<u8>>>>) -> ChannelTransport {
        ChannelTransport {
            links,
            spent: Vec::new(),
        }
    }
}

impl Transport for ChannelTransport {
    fn endpoints(&self) -> usize {
        self.links.len()
    }

    fn flush(&mut self, dest: usize, queue: &mut VecDeque<Vec<u8>>) -> FlushStatus {
        let Some(tx) = &self.links[dest] else {
            debug_assert!(queue.is_empty(), "frames addressed to self");
            let dropped = drain_frames(queue);
            return if dropped == 0 {
                FlushStatus::Done
            } else {
                FlushStatus::Closed {
                    frames_dropped: dropped,
                }
            };
        };
        while !queue.is_empty() {
            let packet = coalesce_pooled(queue, &mut self.spent);
            match tx.try_send(packet) {
                Ok(()) => {}
                Err(TrySendError::Full(packet)) => {
                    // Park the (possibly multi-frame) packet back at the
                    // front; it re-flushes on the next loop iteration.
                    queue.push_front(packet);
                    return FlushStatus::Full;
                }
                Err(TrySendError::Disconnected(packet)) => {
                    // Only possible after the shutdown barrier, when no
                    // protocol frame can still be pending.
                    debug_assert!(false, "send to a disconnected endpoint");
                    let dropped = count_frames(&packet) + drain_frames(queue);
                    return FlushStatus::Closed {
                        frames_dropped: dropped,
                    };
                }
            }
        }
        FlushStatus::Done
    }

    fn reclaim(&mut self, pool: &mut Vec<Vec<u8>>, cap: usize) {
        while pool.len() < cap {
            let Some(buf) = self.spent.pop() else { return };
            pool.push(buf);
        }
    }
}

/// Pops the whole queue into one packet (frames concatenated, each
/// keeping its own length prefix). A single queued frame travels
/// as-is.
pub fn coalesce(queue: &mut VecDeque<Vec<u8>>) -> Vec<u8> {
    if queue.len() == 1 {
        return queue.pop_front().expect("checked non-empty");
    }
    let total: usize = queue.iter().map(Vec::len).sum();
    let mut packet = Vec::with_capacity(total);
    for frame in queue.drain(..) {
        packet.extend_from_slice(&frame);
    }
    packet
}

/// [`coalesce`] with buffer recycling: the packet buffer comes from
/// `pool` when one is available, and the emptied frame buffers go back
/// into `pool` (up to [`SPENT_POOL_CAP`]) instead of being dropped —
/// the steady-state coalesce path allocates nothing.
pub fn coalesce_pooled(queue: &mut VecDeque<Vec<u8>>, pool: &mut Vec<Vec<u8>>) -> Vec<u8> {
    if queue.len() == 1 {
        return queue.pop_front().expect("checked non-empty");
    }
    let total: usize = queue.iter().map(Vec::len).sum();
    let mut packet = pool.pop().unwrap_or_default();
    packet.clear();
    packet.reserve(total);
    for mut frame in queue.drain(..) {
        packet.extend_from_slice(&frame);
        if pool.len() < SPENT_POOL_CAP {
            frame.clear();
            pool.push(frame);
        }
    }
    packet
}

/// Splits one frame off the front of a packet: `(frame, rest)`, where
/// `frame` includes its length prefix (so [`WireMsg::decode_exact`]
/// accepts it verbatim).
///
/// # Errors
///
/// Returns the underlying [`WireError`] when the packet does not start
/// with a well-formed frame header.
pub fn take_frame(packet: &[u8]) -> Result<(&[u8], &[u8]), WireError> {
    if packet.len() < wire::PREFIX_LEN {
        return Err(WireError::Truncated {
            needed: wire::PREFIX_LEN - packet.len(),
            have: packet.len(),
        });
    }
    let body_len = u32::from_le_bytes(packet[..wire::PREFIX_LEN].try_into().expect("4 bytes"));
    if body_len > wire::MAX_BODY_LEN {
        return Err(WireError::Oversized { len: body_len });
    }
    let frame_len = wire::PREFIX_LEN + body_len as usize;
    if packet.len() < frame_len {
        return Err(WireError::Truncated {
            needed: frame_len - packet.len(),
            have: packet.len(),
        });
    }
    Ok(packet.split_at(frame_len))
}

/// Logical frames in a packet. Packets are built from well-formed
/// frames, so a parse failure is a bug; the count stops there (debug
/// builds assert).
pub fn count_frames(packet: &[u8]) -> u64 {
    let mut rest = packet;
    let mut n = 0;
    while !rest.is_empty() {
        match take_frame(rest) {
            Ok((_, tail)) => {
                n += 1;
                rest = tail;
            }
            Err(_) => {
                debug_assert!(false, "malformed packet in count_frames");
                break;
            }
        }
    }
    n
}

/// Empties the queue, returning how many logical frames it held.
fn drain_frames(queue: &mut VecDeque<Vec<u8>>) -> u64 {
    let n = queue.iter().map(|f| count_frames(f)).sum();
    queue.clear();
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireMsg;
    use std::sync::mpsc::sync_channel;

    fn frame(token: u64) -> Vec<u8> {
        WireMsg::Flush { token }.encode()
    }

    #[test]
    fn coalesce_concatenates_and_preserves_frames() {
        let mut q: VecDeque<Vec<u8>> = [frame(1), frame(2), frame(3)].into_iter().collect();
        let packet = coalesce(&mut q);
        assert!(q.is_empty());
        assert_eq!(count_frames(&packet), 3);
        let (f1, rest) = take_frame(&packet).unwrap();
        assert_eq!(
            WireMsg::decode_exact(f1).unwrap(),
            WireMsg::Flush { token: 1 }
        );
        let (f2, rest) = take_frame(rest).unwrap();
        assert_eq!(
            WireMsg::decode_exact(f2).unwrap(),
            WireMsg::Flush { token: 2 }
        );
        let (f3, rest) = take_frame(rest).unwrap();
        assert_eq!(
            WireMsg::decode_exact(f3).unwrap(),
            WireMsg::Flush { token: 3 }
        );
        assert!(rest.is_empty());
    }

    #[test]
    fn single_frame_passes_through_uncopied() {
        let f = frame(9);
        let mut q: VecDeque<Vec<u8>> = [f.clone()].into_iter().collect();
        assert_eq!(coalesce(&mut q), f);
    }

    #[test]
    fn channel_flush_coalesces_into_one_message() {
        let (tx, rx) = sync_channel::<Vec<u8>>(4);
        let mut t = ChannelTransport::new(vec![Some(tx)]);
        let mut q: VecDeque<Vec<u8>> = (0..5).map(frame).collect();
        assert_eq!(t.flush(0, &mut q), FlushStatus::Done);
        assert!(q.is_empty());
        let packet = rx.try_recv().expect("one packet");
        assert_eq!(count_frames(&packet), 5);
        assert!(rx.try_recv().is_err(), "five frames, one channel op");
    }

    #[test]
    fn channel_flush_reports_full_and_keeps_frames() {
        let (tx, _rx) = sync_channel::<Vec<u8>>(1);
        let mut t = ChannelTransport::new(vec![Some(tx)]);
        let mut q: VecDeque<Vec<u8>> = [frame(1)].into_iter().collect();
        assert_eq!(t.flush(0, &mut q), FlushStatus::Done);
        // Channel now full: the next flush must park, not lose.
        let mut q2: VecDeque<Vec<u8>> = [frame(2), frame(3)].into_iter().collect();
        assert_eq!(t.flush(0, &mut q2), FlushStatus::Full);
        assert_eq!(q2.iter().map(|f| count_frames(f)).sum::<u64>(), 2);
    }

    #[test]
    fn closed_destination_counts_dropped_frames() {
        let (tx, rx) = sync_channel::<Vec<u8>>(1);
        drop(rx);
        let mut t = ChannelTransport::new(vec![Some(tx)]);
        let mut q: VecDeque<Vec<u8>> = [frame(1), frame(2)].into_iter().collect();
        // debug_assert fires under cfg(debug_assertions); release-mode
        // behaviour is the counted drop. Run the release path only.
        if cfg!(debug_assertions) {
            return;
        }
        assert_eq!(
            t.flush(0, &mut q),
            FlushStatus::Closed { frames_dropped: 2 }
        );
        assert!(q.is_empty());
    }

    #[test]
    fn take_frame_rejects_short_and_oversized_headers() {
        assert!(matches!(
            take_frame(&[1, 2]),
            Err(WireError::Truncated { .. })
        ));
        let mut bad = (wire::MAX_BODY_LEN + 1).to_le_bytes().to_vec();
        bad.push(0);
        assert!(matches!(take_frame(&bad), Err(WireError::Oversized { .. })));
        let mut short = frame(1);
        short.pop();
        assert!(matches!(
            take_frame(&short),
            Err(WireError::Truncated { .. })
        ));
    }
}
