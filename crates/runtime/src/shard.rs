//! Deterministic vertex → worker ownership.
//!
//! Shared-nothing means exactly one worker may ever touch a vertex's
//! `IndexTable`. Ownership must also be computable by *anyone* (the
//! client routes inserts, coordinators route `T_QUERY`s) without
//! coordination, so it is a pure function of the vertex bits, the
//! runtime seed, and the worker count — the same recipe every node of
//! a real DHT uses to map keys to peers.

use hyperdex_dht::stable_hash64_seeded;

/// Domain-separation constant so shard placement never correlates with
/// the keyword hash positions derived from the same seed.
const SHARD_SALT: u64 = 0x5348_4152_445F_4D41; // "SHARD_MA"

/// Pure vertex → worker map. `Copy`, so every worker and the client
/// hold their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    workers: u32,
    seed: u64,
}

impl ShardMap {
    /// A map over `workers` shards (at least one) for a runtime seeded
    /// with `seed`.
    pub fn new(workers: u32, seed: u64) -> ShardMap {
        ShardMap {
            workers: workers.max(1),
            seed: seed ^ SHARD_SALT,
        }
    }

    /// How many shards the map spreads across.
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// The worker that owns vertex `bits`. Stable across runs for a
    /// given `(workers, seed)` pair.
    pub fn owner_of(&self, bits: u64) -> u32 {
        (stable_hash64_seeded(&bits.to_le_bytes(), self.seed) % u64::from(self.workers)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_and_in_range() {
        let map = ShardMap::new(8, 42);
        let again = ShardMap::new(8, 42);
        for bits in 0..4096u64 {
            let owner = map.owner_of(bits);
            assert!(owner < 8);
            assert_eq!(owner, again.owner_of(bits));
        }
    }

    #[test]
    fn single_worker_owns_everything() {
        let map = ShardMap::new(1, 7);
        assert!((0..1024).all(|b| map.owner_of(b) == 0));
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let map = ShardMap::new(0, 7);
        assert_eq!(map.workers(), 1);
        assert_eq!(map.owner_of(123), 0);
    }

    #[test]
    fn shards_spread_reasonably() {
        // Not a statistical test — just a guard against a degenerate
        // map that parks whole cubes on one worker.
        let map = ShardMap::new(4, 42);
        let mut counts = [0usize; 4];
        for bits in 0..1024u64 {
            counts[map.owner_of(bits) as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 128),
            "degenerate spread: {counts:?}"
        );
    }

    #[test]
    fn different_seeds_shuffle_placement() {
        let a = ShardMap::new(4, 1);
        let b = ShardMap::new(4, 2);
        let moved = (0..1024u64)
            .filter(|&v| a.owner_of(v) != b.owner_of(v))
            .count();
        assert!(moved > 256, "only {moved} of 1024 vertices moved");
    }
}
