//! Deterministic vertex → worker ownership.
//!
//! Shared-nothing means exactly one worker may ever touch a vertex's
//! `IndexTable`. Ownership must also be computable by *anyone* (the
//! client routes inserts, coordinators route `T_QUERY`s) without
//! coordination, so it is a pure function of the vertex bits, the
//! runtime seed, and the worker count — the same recipe every node of
//! a real DHT uses to map keys to peers.
//!
//! # Two placement policies
//!
//! [`ShardPolicy::Hash`] scatters vertices uniformly by hashing each
//! one independently. That is perfect for load balance but terrible
//! for the paper's spanning-binomial-tree traversal: a parent and its
//! children land on different workers with probability
//! `(workers−1)/workers`, so every SBT hop becomes a cross-shard
//! frame.
//!
//! [`ShardPolicy::Prefix`] instead shards on the **top
//! `ceil(log2(workers))` bits** of the vertex, rotated by a
//! seed-derived offset for balance. SBT subtrees entered via dimension
//! `j` share all bits at positions `j..r` (Lemma 3.2's derivability),
//! so any subtree whose entry dimension lies below the prefix cut is
//! wholly owned by one worker — cross-shard edges per query are
//! bounded by the prefix fan-out (`2^k − 1`), not the subcube size.
//! Each shard still owns at least `2^−k > 1/(2·workers)` of the
//! vertex space for any worker count.

use hyperdex_dht::stable_hash64_seeded;

/// Domain-separation constant so shard placement never correlates with
/// the keyword hash positions derived from the same seed.
const SHARD_SALT: u64 = 0x5348_4152_445F_4D41; // "SHARD_MA"

/// How vertices are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardPolicy {
    /// Every vertex hashed independently: uniform scatter, zero
    /// traversal locality. The pre-locality default, kept so benches
    /// can report both placements side by side.
    Hash,
    /// Shard on the top `ceil(log2(workers))` vertex bits (seed-salted
    /// rotation): whole SBT subtrees land on one worker.
    #[default]
    Prefix,
}

impl ShardPolicy {
    /// The policy's stable lowercase name (used in bench artifacts,
    /// CI matrix env values, and the server `--policy` flag).
    pub fn name(self) -> &'static str {
        match self {
            ShardPolicy::Hash => "hash",
            ShardPolicy::Prefix => "prefix",
        }
    }

    /// Parses [`ShardPolicy::name`] back; `None` for anything else.
    pub fn parse(s: &str) -> Option<ShardPolicy> {
        match s {
            "hash" => Some(ShardPolicy::Hash),
            "prefix" => Some(ShardPolicy::Prefix),
            _ => None,
        }
    }
}

/// Pure vertex → worker map. `Copy`, so every worker and the client
/// hold their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    workers: u32,
    seed: u64,
    policy: ShardPolicy,
    /// Prefix policy: bits below this position are ignored
    /// (`r − k`, where `k = min(ceil_log2(workers), r)`).
    shift: u32,
    /// Prefix policy: `2^k − 1`, the prefix-space wrap mask.
    mask: u64,
    /// Prefix policy: seed-derived rotation of the prefix space, so a
    /// reseeded runtime places subtrees differently.
    rot: u64,
}

/// `ceil(log2(n))` for shard counts: 0 for `n ≤ 1`.
fn ceil_log2(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        32 - (n - 1).leading_zeros()
    }
}

impl ShardMap {
    /// A map over `workers` shards (at least one) for a runtime seeded
    /// with `seed`, under the legacy [`ShardPolicy::Hash`] placement.
    pub fn new(workers: u32, seed: u64) -> ShardMap {
        ShardMap::with_policy(ShardPolicy::Hash, 63, workers, seed)
    }

    /// A map over `workers` shards (at least one) of an `r`-cube for a
    /// runtime seeded with `seed`, under `policy`. `r` only matters
    /// for [`ShardPolicy::Prefix`] (it fixes where the prefix cut
    /// falls); maps built with the same `(policy, r, workers, seed)`
    /// agree everywhere.
    pub fn with_policy(policy: ShardPolicy, r: u8, workers: u32, seed: u64) -> ShardMap {
        let workers = workers.max(1);
        let salted = seed ^ SHARD_SALT;
        let k = ceil_log2(workers).min(u32::from(r));
        let mask = (1u64 << k) - 1;
        ShardMap {
            workers,
            seed: salted,
            policy,
            shift: u32::from(r) - k,
            mask,
            rot: stable_hash64_seeded(&salted.to_le_bytes(), salted) & mask,
        }
    }

    /// How many shards the map spreads across.
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// The placement policy this map was built with.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Under [`ShardPolicy::Prefix`], the highest SBT entry dimension
    /// whose whole subtree is guaranteed shard-local: a subtree
    /// entered via `dim ≤ prefix_cut()` never crosses a worker
    /// boundary. (Under `Hash` this is 0 — nothing is guaranteed.)
    pub fn prefix_cut(&self) -> u8 {
        match self.policy {
            ShardPolicy::Hash => 0,
            ShardPolicy::Prefix => self.shift as u8,
        }
    }

    /// The worker that owns vertex `bits`. Stable across runs for a
    /// given `(policy, r, workers, seed)` tuple.
    pub fn owner_of(&self, bits: u64) -> u32 {
        match self.policy {
            ShardPolicy::Hash => {
                (stable_hash64_seeded(&bits.to_le_bytes(), self.seed) % u64::from(self.workers))
                    as u32
            }
            ShardPolicy::Prefix => {
                ((((bits >> self.shift) + self.rot) & self.mask) % u64::from(self.workers)) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_and_in_range() {
        let map = ShardMap::new(8, 42);
        let again = ShardMap::new(8, 42);
        for bits in 0..4096u64 {
            let owner = map.owner_of(bits);
            assert!(owner < 8);
            assert_eq!(owner, again.owner_of(bits));
        }
    }

    #[test]
    fn single_worker_owns_everything() {
        let map = ShardMap::new(1, 7);
        assert!((0..1024).all(|b| map.owner_of(b) == 0));
        let map = ShardMap::with_policy(ShardPolicy::Prefix, 10, 1, 7);
        assert!((0..1024).all(|b| map.owner_of(b) == 0));
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let map = ShardMap::new(0, 7);
        assert_eq!(map.workers(), 1);
        assert_eq!(map.owner_of(123), 0);
    }

    #[test]
    fn shards_spread_reasonably() {
        // Not a statistical test — just a guard against a degenerate
        // map that parks whole cubes on one worker.
        let map = ShardMap::new(4, 42);
        let mut counts = [0usize; 4];
        for bits in 0..1024u64 {
            counts[map.owner_of(bits) as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 128),
            "degenerate spread: {counts:?}"
        );
    }

    #[test]
    fn different_seeds_shuffle_placement() {
        let a = ShardMap::new(4, 1);
        let b = ShardMap::new(4, 2);
        let moved = (0..1024u64)
            .filter(|&v| a.owner_of(v) != b.owner_of(v))
            .count();
        assert!(moved > 256, "only {moved} of 1024 vertices moved");
    }

    /// All members of the SBT subtree entered at `(bits, via_dim)`:
    /// the closure of the child rule (set any free dimension strictly
    /// below the arrival dimension). Mirrors the coordinator's
    /// `children_of` so the property is checked against the real
    /// traversal shape.
    fn subtree_members(bits: u64, via_dim: u8, out: &mut Vec<u64>) {
        out.push(bits);
        for d in 0..via_dim {
            if bits & (1 << d) == 0 {
                subtree_members(bits | (1 << d), d, out);
            }
        }
    }

    #[test]
    fn prefix_policy_keeps_subtrees_on_one_owner() {
        // Issue-8 property: under the prefix policy, every vertex in a
        // subtree region maps to the subtree root's owner whenever the
        // entry dimension sits at or below the prefix cut.
        const R: u8 = 8;
        for workers in [2u32, 3, 4, 8] {
            for seed in [1u64, 42, 0xBEEF] {
                let map = ShardMap::with_policy(ShardPolicy::Prefix, R, workers, seed);
                let cut = map.prefix_cut();
                assert!(cut > 0, "r=8 leaves headroom below the prefix");
                for bits in 0..(1u64 << R) {
                    for via in 0..=cut {
                        let mut members = Vec::new();
                        subtree_members(bits, via, &mut members);
                        for &m in &members {
                            assert_eq!(
                                map.owner_of(m),
                                map.owner_of(bits),
                                "subtree ({bits:#b}, via {via}) split across shards \
                                 at member {m:#b} (workers={workers} seed={seed})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_policy_spread_is_non_degenerate_across_seeds() {
        // Issue-8 property: each shard owns strictly more than
        // 1/(2·workers) of the vertex space, for power-of-two and odd
        // worker counts alike, across seeds.
        const R: u8 = 8;
        let total = 1usize << R;
        for workers in [2u32, 3, 4, 5, 8] {
            for seed in [1u64, 2, 42, 0xF00D, 0xBEEF] {
                let map = ShardMap::with_policy(ShardPolicy::Prefix, R, workers, seed);
                let mut counts = vec![0usize; workers as usize];
                for bits in 0..total as u64 {
                    counts[map.owner_of(bits) as usize] += 1;
                }
                let floor = total / (2 * workers as usize);
                assert!(
                    counts.iter().all(|&c| c > floor),
                    "degenerate prefix spread (workers={workers} seed={seed}): {counts:?}"
                );
            }
        }
    }

    #[test]
    fn policy_names_roundtrip() {
        for policy in [ShardPolicy::Hash, ShardPolicy::Prefix] {
            assert_eq!(ShardPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(ShardPolicy::parse("nope"), None);
        assert_eq!(ShardPolicy::default(), ShardPolicy::Prefix);
    }
}
