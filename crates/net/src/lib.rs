//! # hyperdex-net — the runtime over real sockets
//!
//! TCP deployment of the shared-nothing runtime: the same workers,
//! frames, and conservation ledger as [`hyperdex_runtime`], spread
//! across OS processes instead of threads. Built entirely on
//! `std::net` — no external dependencies, loopback-friendly, offline.
//!
//! * [`stream`] — `[dest][frame]` units on the wire and a streaming
//!   decoder tolerant of arbitrary partial reads.
//! * [`server`] — the server process: worker shards behind a listener,
//!   a directed mesh between servers, local crash supervision with
//!   journal replay, and a plain-text conservation report at shutdown.
//! * [`client`] — the client library: typed [`hyperdex_core::Error`]
//!   results (`ConnectionLost`, `Timeout`), request deadlines, and
//!   reconnect with exponential backoff.
//! * [`cluster`] — multi-process launcher over loopback with a stdio
//!   handshake, folding every process's counters into one
//!   [`hyperdex_runtime::ShutdownReport`].
//! * [`parity`] — the fourth parity executor: N real processes must
//!   produce result sets identical to the direct engine, the
//!   message-level sim, and the threaded runtime.
//!
//! Traversal traffic rides the mesh as `TQueryBatch`/`TContBatch`
//! frames (one frame per destination worker per frontier burst rather
//! than one per vertex), so the socket-mode frame count — and with it
//! the per-unit overhead this crate pays on every `[dest][frame]`
//! unit — shrinks by the batching factor; under the prefix shard
//! policy most hops never reach a socket at all.

pub mod client;
pub mod cluster;
pub mod parity;
pub mod server;
pub mod stream;

pub use client::{ClientClose, NetClient, NetConfig};
pub use cluster::{server_binary, Cluster, ClusterConfig};
pub use parity::{assert_net_parity, assert_net_parity_with, NetParityReport};
pub use server::{local_workers, server_of, ServerConfig};
pub use stream::{StreamDecoder, Unit, CLIENT_DEST};
