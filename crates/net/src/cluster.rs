//! Multi-process cluster launcher.
//!
//! [`Cluster::launch`] spawns one `hyperdex-server` process per
//! server over loopback, wires them into a mesh, and hands out
//! connected [`NetClient`]s. The handshake runs over the children's
//! stdio:
//!
//! ```text
//! child  -> LISTENING <addr>     (after binding an ephemeral port)
//! parent -> PEERS <a0> <a1> ...  (every server's address, in order)
//! child  -> READY                (mesh dialed, workers spawned)
//! ...
//! child  -> WSTATS ... / SSTATS ... / REPORT_END   (at shutdown)
//! ```
//!
//! [`Cluster::shutdown`] closes the loop: the client broadcasts
//! `Shutdown`, every server prints its conservation counters, and the
//! launcher folds them — plus the client's own ledger — into the same
//! [`ShutdownReport`] the in-process runtime produces, so
//! `assert_conserved` holds across process boundaries too.

use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};

use hyperdex_core::{Error, StoreBackend};
use hyperdex_runtime::fault::CrashPoint;
use hyperdex_runtime::{ShardPolicy, ShutdownReport, SupervisorStats, WorkerStats};

use crate::client::{NetClient, NetConfig};
use crate::server::{parse_sstats, parse_wstats, server_of};

/// How a cluster is shaped. Mirrors
/// [`hyperdex_runtime::RuntimeConfig`] plus process placement.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Hypercube dimension `r` (1 ..= 63).
    pub r: u8,
    /// Seed for hashing and shard placement.
    pub seed: u64,
    /// Worker shards across the whole cluster.
    pub total_workers: u32,
    /// Server processes hosting them (worker `w` lives on process
    /// `w % servers`).
    pub servers: u32,
    /// Inbox and writer-queue bound, in packets.
    pub capacity: usize,
    /// Vertex → worker placement, shared by every server and the
    /// client.
    pub policy: ShardPolicy,
    /// Posting-storage backend every server process runs with.
    pub store: StoreBackend,
    /// Optional scheduled crash, exercised end-to-end over TCP.
    pub crash: Option<CrashPoint>,
    /// Explicit path to the `hyperdex-server` binary; resolved via
    /// [`server_binary`] when `None`.
    pub server_bin: Option<PathBuf>,
    /// Client-side timeouts and reconnect budget.
    pub net: NetConfig,
}

impl ClusterConfig {
    /// A small default cluster: callers set `servers`/`total_workers`.
    pub fn new(r: u8, seed: u64, total_workers: u32, servers: u32) -> ClusterConfig {
        ClusterConfig {
            r,
            seed,
            total_workers,
            servers,
            capacity: 64,
            policy: ShardPolicy::default(),
            store: StoreBackend::from_env(),
            crash: None,
            server_bin: None,
            net: NetConfig::default(),
        }
    }
}

/// Locates the `hyperdex-server` binary when no explicit path is
/// given: the `HYPERDEX_SERVER_BIN` environment variable, then
/// siblings of the current executable (covers `target/<profile>/` and
/// test binaries living one level down in `deps/`).
pub fn server_binary() -> io::Result<PathBuf> {
    if let Some(path) = std::env::var_os("HYPERDEX_SERVER_BIN") {
        return Ok(PathBuf::from(path));
    }
    let exe = std::env::current_exe()?;
    let name = format!("hyperdex-server{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let candidate = d.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        dir = d.parent();
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        "hyperdex-server binary not found; build it with `cargo build -p hyperdex-net` \
         or set HYPERDEX_SERVER_BIN",
    ))
}

/// One launched server process with its report stream.
struct ServerProc {
    child: Child,
    stdout: BufReader<ChildStdout>,
}

impl ServerProc {
    /// Reads stdout lines until `want` returns a value.
    fn read_until<T>(
        &mut self,
        what: &str,
        mut want: impl FnMut(&str) -> Option<T>,
    ) -> io::Result<T> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.stdout.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("server exited before printing {what}"),
                ));
            }
            if let Some(v) = want(line.trim_end()) {
                return Ok(v);
            }
        }
    }
}

/// A running multi-process cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    addrs: Vec<String>,
    children: Vec<ServerProc>,
}

impl Cluster {
    /// Launches `cfg.servers` processes over loopback and completes
    /// the mesh handshake; returns once every server printed `READY`.
    ///
    /// # Errors
    ///
    /// Any spawn or handshake failure, including a missing server
    /// binary.
    pub fn launch(cfg: ClusterConfig) -> io::Result<Cluster> {
        let bin = match &cfg.server_bin {
            Some(path) => path.clone(),
            None => server_binary()?,
        };
        let mut children = Vec::new();
        for index in 0..cfg.servers {
            let mut cmd = Command::new(&bin);
            cmd.arg("--index")
                .arg(index.to_string())
                .arg("--servers")
                .arg(cfg.servers.to_string())
                .arg("--listen")
                .arg("127.0.0.1:0")
                .arg("--r")
                .arg(cfg.r.to_string())
                .arg("--seed")
                .arg(cfg.seed.to_string())
                .arg("--workers")
                .arg(cfg.total_workers.to_string())
                .arg("--capacity")
                .arg(cfg.capacity.to_string())
                .arg("--policy")
                .arg(cfg.policy.name())
                .arg("--store")
                .arg(cfg.store.name())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            if let Some(crash) = cfg.crash {
                if server_of(crash.worker, cfg.servers) == index {
                    cmd.arg("--crash")
                        .arg(format!("{}@{}", crash.worker, crash.after_query_frames));
                }
            }
            let mut child = cmd.spawn()?;
            let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
            children.push(ServerProc { child, stdout });
        }
        // Collect every listen address, then tell each child the full
        // roster; they dial each other and report READY.
        let mut addrs = Vec::new();
        for proc in &mut children {
            let addr = proc.read_until("LISTENING", |l| {
                l.strip_prefix("LISTENING ").map(str::to_string)
            })?;
            addrs.push(addr);
        }
        let roster = format!("PEERS {}\n", addrs.join(" "));
        for proc in &mut children {
            let stdin = proc.child.stdin.as_mut().expect("piped stdin");
            stdin.write_all(roster.as_bytes())?;
            stdin.flush()?;
        }
        for proc in &mut children {
            proc.read_until("READY", |l| (l == "READY").then_some(()))?;
        }
        Ok(Cluster {
            cfg,
            addrs,
            children,
        })
    }

    /// The servers' listen addresses, in cluster order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Connects a new client to every server of this cluster.
    ///
    /// # Errors
    ///
    /// [`Error::ConnectionLost`] when a server is unreachable.
    pub fn client(&self) -> Result<NetClient, Error> {
        NetClient::connect_with(
            &self.addrs,
            self.cfg.r,
            self.cfg.seed,
            self.cfg.total_workers,
            self.cfg.policy,
            self.cfg.net,
        )
    }

    /// Shuts the cluster down through `client`: broadcasts `Shutdown`,
    /// collects every server's conservation report, reaps the
    /// processes, and folds everything into one [`ShutdownReport`].
    ///
    /// # Errors
    ///
    /// Client errors delivering the shutdown frames; I/O errors
    /// reading reports or reaping children.
    pub fn shutdown(mut self, client: NetClient) -> Result<ShutdownReport, Error> {
        let close = client.shutdown()?;
        let io_err = |e: io::Error| Error::ConnectionLost {
            endpoint: "cluster".into(),
            detail: e.to_string(),
        };
        let mut workers: Vec<WorkerStats> = Vec::new();
        let mut supervisor = SupervisorStats::default();
        for proc in &mut self.children {
            let (w, s) = proc
                .read_until("REPORT_END", {
                    let mut ws: Vec<WorkerStats> = Vec::new();
                    let mut ss = SupervisorStats::default();
                    move |line| {
                        if let Some(stat) = parse_wstats(line) {
                            ws.push(stat);
                            None
                        } else if let Some(stat) = parse_sstats(line) {
                            ss = stat;
                            None
                        } else if line == "REPORT_END" {
                            Some((std::mem::take(&mut ws), std::mem::take(&mut ss)))
                        } else {
                            None
                        }
                    }
                })
                .map_err(io_err)?;
            workers.extend(w);
            supervisor.respawns += s.respawns;
            supervisor.replayed_frames += s.replayed_frames;
            supervisor.frames_sent += s.frames_sent;
            supervisor.frames_drained += s.frames_drained;
        }
        for proc in &mut self.children {
            proc.child.wait().map_err(io_err)?;
        }
        let (client_sent, client_received) = close.finish();
        workers.sort_unstable_by_key(|w| w.worker);
        Ok(ShutdownReport {
            client_sent,
            client_received,
            workers,
            supervisor,
        })
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Reaped children make kill a no-op error; this only matters
        // when launch or a test aborts midway.
        for proc in &mut self.children {
            let _ = proc.child.kill();
            let _ = proc.child.wait();
        }
    }
}
