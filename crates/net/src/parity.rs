//! The fourth parity executor: real processes over real sockets.
//!
//! [`assert_net_parity`] extends the three-way contract of
//! [`hyperdex_runtime::parity`] (direct engine, message-level sim,
//! threaded runtime) with a fourth executor — a multi-process cluster
//! over loopback TCP. The same corpus and queries run on all four;
//! every superset and pin result id-set must be identical, and the
//! cluster's cross-process frame ledger must balance at shutdown.

use std::path::PathBuf;

use hyperdex_core::{HypercubeIndex, KeywordSet, ObjectId, SupersetQuery};
use hyperdex_runtime::parity::assert_sim_parity_with;
use hyperdex_runtime::{ParityReport, ShardPolicy, ShutdownReport};

use crate::cluster::{Cluster, ClusterConfig};

/// What one net-parity run checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetParityReport {
    /// Server processes the cluster ran with.
    pub servers: u32,
    /// Worker shards across those processes.
    pub workers: u32,
    /// Superset + pin query pairs compared against the direct engine.
    pub queries_checked: usize,
    /// The in-process three-way parity report (already asserted).
    pub in_process: ParityReport,
    /// The cluster's shutdown ledger (conservation already asserted).
    pub shutdown: ShutdownReport,
}

/// Runs the full four-executor parity check: the in-process three-way
/// harness first, then the same corpus and queries through a real
/// `servers`-process cluster, comparing every result id-set against
/// the direct [`HypercubeIndex`] engine. Panics on any divergence or
/// on a conservation violation at cluster shutdown.
///
/// `server_bin` overrides binary discovery — tests pass
/// `env!("CARGO_BIN_EXE_hyperdex-server")`.
pub fn assert_net_parity(
    r: u8,
    seed: u64,
    workers: u32,
    servers: u32,
    corpus: &[(ObjectId, KeywordSet)],
    queries: &[(KeywordSet, usize)],
    server_bin: Option<PathBuf>,
) -> NetParityReport {
    assert_net_parity_with(
        r,
        seed,
        workers,
        servers,
        ShardPolicy::default(),
        corpus,
        queries,
        server_bin,
    )
}

/// [`assert_net_parity`] with an explicit [`ShardPolicy`], applied to
/// both the in-process executors and the TCP cluster — placement must
/// never change what a query returns, in-process or across sockets.
#[allow(clippy::too_many_arguments)]
pub fn assert_net_parity_with(
    r: u8,
    seed: u64,
    workers: u32,
    servers: u32,
    policy: ShardPolicy,
    corpus: &[(ObjectId, KeywordSet)],
    queries: &[(KeywordSet, usize)],
    server_bin: Option<PathBuf>,
) -> NetParityReport {
    let in_process = assert_sim_parity_with(r, seed, workers, policy, corpus, queries);

    let mut direct = HypercubeIndex::new(r, seed).expect("valid r");
    for (object, keywords) in corpus {
        direct.insert(*object, keywords.clone()).expect("non-empty");
    }

    let mut cfg = ClusterConfig::new(r, seed, workers, servers);
    cfg.policy = policy;
    cfg.server_bin = server_bin;
    let cluster = Cluster::launch(cfg).expect("cluster launch");
    let mut client = cluster.client().expect("cluster client");
    for (object, keywords) in corpus {
        client.insert(*object, keywords.clone()).expect("insert");
    }
    client.flush().expect("flush barrier");

    let mut queries_checked = 0;
    for (keywords, threshold) in queries {
        let net_ids = ids(client
            .superset_search(keywords, *threshold)
            .expect("superset over TCP")
            .iter()
            .map(|m| m.object));
        let direct_ids = ids(direct
            .superset_search(
                &SupersetQuery::new(keywords.clone())
                    .threshold(*threshold)
                    .use_cache(false),
            )
            .expect("valid query")
            .results
            .iter()
            .map(|m| m.object));
        assert_eq!(
            net_ids, direct_ids,
            "net/direct superset divergence: r={r} seed={seed} workers={workers} \
             servers={servers} K={keywords:?}"
        );

        let net_pin = ids(client
            .pin_search(keywords)
            .expect("pin over TCP")
            .into_iter());
        let direct_pin = ids(direct.pin_search(keywords).results.into_iter());
        assert_eq!(
            net_pin, direct_pin,
            "net/direct pin divergence: r={r} seed={seed} workers={workers} \
             servers={servers} K={keywords:?}"
        );
        queries_checked += 1;
    }

    let shutdown = cluster.shutdown(client).expect("cluster shutdown");
    shutdown.assert_conserved();
    NetParityReport {
        servers,
        workers,
        queries_checked,
        in_process,
        shutdown,
    }
}

/// Sorted, deduplicated id list — the set the parity contract
/// compares.
fn ids(objects: impl Iterator<Item = ObjectId>) -> Vec<ObjectId> {
    let mut out: Vec<ObjectId> = objects.collect();
    out.sort_unstable();
    out.dedup();
    out
}
