//! Framing on the TCP wire and the streaming decoder.
//!
//! A connection carries a sequence of **units**:
//!
//! ```text
//! [dest u32 LE][body_len u32 LE][tag u8][body]
//! \-- routing --/\------ WireMsg frame ------/
//! ```
//!
//! The trailing three fields are byte-identical to the in-process
//! [`WireMsg`] frame (length prefix included), so a unit is just a
//! frame with a routing header: peel off `dest` and the existing codec
//! decodes the rest verbatim. `dest` is the global worker index, or
//! [`CLIENT_DEST`] for client-bound replies.
//!
//! TCP gives a byte stream, not messages: one `read` may return half a
//! header, three units and a torn fourth, or a single byte.
//! [`StreamDecoder`] is a push-based incremental parser that accepts
//! arbitrary read fragments and yields complete units — tolerant of
//! every possible split point, which the robustness suite exercises
//! exhaustively (every `WireMsg` variant, every byte boundary).

use hyperdex_runtime::wire::{self, WireError};

/// `dest` marking a unit for the client rather than a worker.
pub const CLIENT_DEST: u32 = u32::MAX;

/// Bytes of the routing header in front of each frame.
pub const DEST_LEN: usize = 4;

/// Appends one `[dest][frame]` unit to `out`. `frame` must be a
/// complete encoded [`WireMsg`] (length prefix included).
pub fn push_unit(out: &mut Vec<u8>, dest: u32, frame: &[u8]) {
    out.extend_from_slice(&dest.to_le_bytes());
    out.extend_from_slice(frame);
}

/// Encodes one unit into a fresh buffer.
pub fn encode_unit(dest: u32, frame: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(DEST_LEN + frame.len());
    push_unit(&mut out, dest, frame);
    out
}

/// One decoded unit: where it goes and the complete `WireMsg` frame
/// (length prefix included, ready for `WireMsg::decode_exact`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unit {
    /// Global worker index, or [`CLIENT_DEST`].
    pub dest: u32,
    /// The encoded frame, byte-identical to what the sender encoded.
    pub frame: Vec<u8>,
}

/// Incremental unit parser over an arbitrary byte stream.
///
/// Feed read fragments with [`StreamDecoder::push`], then drain
/// complete units with [`StreamDecoder::next_unit`]. Bytes that do not
/// yet form a complete unit stay buffered; a header that can never be
/// valid (oversized length) surfaces as an error instead of a stall or
/// a panic.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so every unit does
    /// not trigger a memmove of the remainder.
    start: usize,
}

impl StreamDecoder {
    /// An empty decoder.
    pub fn new() -> StreamDecoder {
        StreamDecoder::default()
    }

    /// Appends one read fragment (any length, including empty).
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as units.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete unit, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] when the header announces a body larger
    /// than [`wire::MAX_BODY_LEN`] — the stream is corrupt and cannot
    /// be resynchronized.
    pub fn next_unit(&mut self) -> Result<Option<Unit>, WireError> {
        let pending = &self.buf[self.start..];
        let header = DEST_LEN + wire::PREFIX_LEN;
        if pending.len() < header {
            return Ok(None);
        }
        let dest = u32::from_le_bytes(pending[..DEST_LEN].try_into().expect("4 bytes"));
        let body_len = u32::from_le_bytes(pending[DEST_LEN..header].try_into().expect("4 bytes"));
        if body_len > wire::MAX_BODY_LEN {
            return Err(WireError::Oversized { len: body_len });
        }
        let unit_len = header + body_len as usize;
        if pending.len() < unit_len {
            return Ok(None);
        }
        let frame = pending[DEST_LEN..unit_len].to_vec();
        self.start += unit_len;
        Ok(Some(Unit { dest, frame }))
    }

    /// Reclaims consumed bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.start > 0 && (self.start >= self.buf.len() || self.start >= 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdex_runtime::wire::WireMsg;

    #[test]
    fn decodes_units_fed_one_byte_at_a_time() {
        let frame = WireMsg::Flush { token: 77 }.encode();
        let unit = encode_unit(3, &frame);
        let mut dec = StreamDecoder::new();
        for (i, b) in unit.iter().enumerate() {
            dec.push(&[*b]);
            let got = dec.next_unit().unwrap();
            if i + 1 < unit.len() {
                assert!(got.is_none(), "unit complete early at byte {i}");
            } else {
                let got = got.expect("complete");
                assert_eq!(got.dest, 3);
                assert_eq!(got.frame, frame);
            }
        }
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decodes_many_units_from_one_fragment() {
        let mut stream = Vec::new();
        for token in 0..5u64 {
            push_unit(
                &mut stream,
                token as u32,
                &WireMsg::Flush { token }.encode(),
            );
        }
        let mut dec = StreamDecoder::new();
        dec.push(&stream);
        for token in 0..5u64 {
            let unit = dec.next_unit().unwrap().expect("buffered");
            assert_eq!(unit.dest, token as u32);
            assert_eq!(
                WireMsg::decode_exact(&unit.frame).unwrap(),
                WireMsg::Flush { token }
            );
        }
        assert!(dec.next_unit().unwrap().is_none());
    }

    #[test]
    fn oversized_header_is_an_error_not_a_stall() {
        let mut dec = StreamDecoder::new();
        let mut bad = 0u32.to_le_bytes().to_vec();
        bad.extend_from_slice(&(wire::MAX_BODY_LEN + 1).to_le_bytes());
        bad.push(0);
        dec.push(&bad);
        assert!(matches!(dec.next_unit(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn compaction_does_not_lose_a_torn_unit() {
        let frame = WireMsg::Flush { token: 1 }.encode();
        let unit = encode_unit(0, &frame);
        let mut dec = StreamDecoder::new();
        // Thousands of whole units (forces compaction), then a torn one
        // split across pushes.
        let mut stream = Vec::new();
        for _ in 0..2000 {
            stream.extend_from_slice(&unit);
        }
        dec.push(&stream);
        let mut n = 0;
        while dec.next_unit().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 2000);
        dec.push(&unit[..5]);
        assert!(dec.next_unit().unwrap().is_none());
        dec.push(&unit[5..]);
        let got = dec.next_unit().unwrap().expect("reassembled");
        assert_eq!(got.frame, frame);
    }
}
