//! Framing on the TCP wire and the streaming decoder.
//!
//! A connection carries a sequence of **units**:
//!
//! ```text
//! [dest u32 LE][body_len u32 LE][tag u8][body]
//! \-- routing --/\------ WireMsg frame ------/
//! ```
//!
//! The trailing three fields are byte-identical to the in-process
//! [`WireMsg`] frame (length prefix included), so a unit is just a
//! frame with a routing header: peel off `dest` and the existing codec
//! decodes the rest verbatim. `dest` is the global worker index, or
//! [`CLIENT_DEST`] for client-bound replies.
//!
//! TCP gives a byte stream, not messages: one `read` may return half a
//! header, three units and a torn fourth, or a single byte.
//! [`StreamDecoder`] is a push-based incremental parser that accepts
//! arbitrary read fragments and yields complete units — tolerant of
//! every possible split point, which the robustness suite exercises
//! exhaustively (every `WireMsg` variant, every byte boundary).

use std::io::Read;

use hyperdex_runtime::wire::{self, WireError};

/// `dest` marking a unit for the client rather than a worker.
pub const CLIENT_DEST: u32 = u32::MAX;

/// Bytes of the routing header in front of each frame.
pub const DEST_LEN: usize = 4;

/// Appends one `[dest][frame]` unit to `out`. `frame` must be a
/// complete encoded [`WireMsg`] (length prefix included).
pub fn push_unit(out: &mut Vec<u8>, dest: u32, frame: &[u8]) {
    out.extend_from_slice(&dest.to_le_bytes());
    out.extend_from_slice(frame);
}

/// Encodes one unit into a fresh buffer.
pub fn encode_unit(dest: u32, frame: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(DEST_LEN + frame.len());
    push_unit(&mut out, dest, frame);
    out
}

/// Logical units in a wire packet (`[dest][frame]` back to back).
/// Packets are built from well-formed units, so a parse failure is a
/// bug; the count stops there (debug builds assert).
pub fn count_units(packet: &[u8]) -> u64 {
    let header = DEST_LEN + wire::PREFIX_LEN;
    let mut rest = packet;
    let mut n = 0;
    while !rest.is_empty() {
        if rest.len() < header {
            debug_assert!(false, "torn unit header in count_units");
            break;
        }
        let body_len = u32::from_le_bytes(rest[DEST_LEN..header].try_into().expect("4 bytes"));
        let unit_len = header + body_len as usize;
        if body_len > wire::MAX_BODY_LEN || rest.len() < unit_len {
            debug_assert!(false, "malformed unit in count_units");
            break;
        }
        n += 1;
        rest = &rest[unit_len..];
    }
    n
}

/// One decoded unit: where it goes and the complete `WireMsg` frame
/// (length prefix included, ready for `WireMsg::decode_exact`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unit {
    /// Global worker index, or [`CLIENT_DEST`].
    pub dest: u32,
    /// The encoded frame, byte-identical to what the sender encoded.
    pub frame: Vec<u8>,
}

/// Bytes one [`StreamDecoder::fill_from`] call asks the kernel for
/// when no pending unit header demands more.
const READ_CHUNK: usize = 64 * 1024;

/// Incremental unit parser over an arbitrary byte stream.
///
/// Feed read fragments with [`StreamDecoder::push`] (or let the
/// decoder read straight into its own buffer with
/// [`StreamDecoder::fill_from`]), then drain complete units with
/// [`StreamDecoder::next_unit`] / [`StreamDecoder::next_unit_ref`].
/// Bytes that do not yet form a complete unit stay buffered; a header
/// that can never be valid (oversized length) surfaces as an error
/// instead of a stall or a panic.
///
/// When a buffered header announces a unit longer than what has
/// arrived, the decoder pre-reserves exactly the announced unit length
/// (`reserve_exact`, capped by the wire's [`wire::MAX_BODY_LEN`]), so
/// a large batch frame trickling in over many reads reallocates at
/// most once instead of growing incrementally.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    /// Initialized storage; live bytes are `buf[start..end]`.
    buf: Vec<u8>,
    /// Consumed prefix of the live region; compacted lazily so every
    /// unit does not trigger a memmove of the remainder.
    start: usize,
    /// End of the live region (`buf[end..]` is writable spare room).
    end: usize,
}

impl StreamDecoder {
    /// An empty decoder.
    pub fn new() -> StreamDecoder {
        StreamDecoder::default()
    }

    /// Appends one read fragment (any length, including empty).
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.grow_for(bytes.len());
        self.buf[self.end..self.end + bytes.len()].copy_from_slice(bytes);
        self.end += bytes.len();
    }

    /// Reads once from `r` directly into the decoder's spare room —
    /// no intermediate chunk buffer, no copy. Returns the byte count
    /// (`0` means EOF). The read asks for at least [`READ_CHUNK`]
    /// bytes, or the remainder of a partially-buffered unit when its
    /// header announces more.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read error.
    pub fn fill_from<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        self.compact();
        let want = match self.pending_unit_len() {
            Some(unit_len) if unit_len > self.buffered() => {
                (unit_len - self.buffered()).max(READ_CHUNK)
            }
            _ => READ_CHUNK,
        };
        self.grow_for(want);
        let n = r.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Bytes buffered but not yet consumed as units.
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Bytes of backing storage the decoder holds — what the
    /// pre-reservation discipline bounds.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Pops the next complete unit, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] when the header announces a body larger
    /// than [`wire::MAX_BODY_LEN`] — the stream is corrupt and cannot
    /// be resynchronized.
    pub fn next_unit(&mut self) -> Result<Option<Unit>, WireError> {
        Ok(self.next_unit_ref()?.map(|(dest, frame)| Unit {
            dest,
            frame: frame.to_vec(),
        }))
    }

    /// [`StreamDecoder::next_unit`] without the frame copy: the
    /// returned slice borrows the decoder's buffer and is valid until
    /// the next mutating call.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`], exactly like
    /// [`StreamDecoder::next_unit`].
    pub fn next_unit_ref(&mut self) -> Result<Option<(u32, &[u8])>, WireError> {
        let header = DEST_LEN + wire::PREFIX_LEN;
        let pending = &self.buf[self.start..self.end];
        if pending.len() < header {
            return Ok(None);
        }
        let dest = u32::from_le_bytes(pending[..DEST_LEN].try_into().expect("4 bytes"));
        let body_len = u32::from_le_bytes(pending[DEST_LEN..header].try_into().expect("4 bytes"));
        if body_len > wire::MAX_BODY_LEN {
            return Err(WireError::Oversized { len: body_len });
        }
        let unit_len = header + body_len as usize;
        if pending.len() < unit_len {
            return Ok(None);
        }
        let frame_start = self.start + DEST_LEN;
        let frame_end = self.start + unit_len;
        self.start = frame_end;
        Ok(Some((dest, &self.buf[frame_start..frame_end])))
    }

    /// The full length of the unit whose header is buffered, when one
    /// is and its length is plausible.
    fn pending_unit_len(&self) -> Option<usize> {
        let header = DEST_LEN + wire::PREFIX_LEN;
        let pending = &self.buf[self.start..self.end];
        if pending.len() < header {
            return None;
        }
        let body_len = u32::from_le_bytes(pending[DEST_LEN..header].try_into().expect("4 bytes"));
        if body_len > wire::MAX_BODY_LEN {
            // Corrupt header: surfaces as an error from next_unit, so
            // never reserve for it.
            return None;
        }
        Some(header + body_len as usize)
    }

    /// Ensures `extra` writable bytes after `end`, pre-reserving the
    /// full announced unit when a partial one is buffered. Growth is
    /// `reserve_exact`: the buffer never balloons past what the wire
    /// format itself justifies.
    fn grow_for(&mut self, extra: usize) {
        let mut target = self.end + extra;
        if let Some(unit_len) = self.pending_unit_len() {
            target = target.max(self.start + unit_len);
        }
        if self.buf.len() < target {
            self.buf.reserve_exact(target - self.buf.len());
            self.buf.resize(target, 0);
        }
    }

    /// Reclaims consumed bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        if self.start >= self.end {
            self.start = 0;
            self.end = 0;
        } else if self.start >= 4096 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdex_runtime::wire::WireMsg;

    #[test]
    fn decodes_units_fed_one_byte_at_a_time() {
        let frame = WireMsg::Flush { token: 77 }.encode();
        let unit = encode_unit(3, &frame);
        let mut dec = StreamDecoder::new();
        for (i, b) in unit.iter().enumerate() {
            dec.push(&[*b]);
            let got = dec.next_unit().unwrap();
            if i + 1 < unit.len() {
                assert!(got.is_none(), "unit complete early at byte {i}");
            } else {
                let got = got.expect("complete");
                assert_eq!(got.dest, 3);
                assert_eq!(got.frame, frame);
            }
        }
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decodes_many_units_from_one_fragment() {
        let mut stream = Vec::new();
        for token in 0..5u64 {
            push_unit(
                &mut stream,
                token as u32,
                &WireMsg::Flush { token }.encode(),
            );
        }
        let mut dec = StreamDecoder::new();
        dec.push(&stream);
        for token in 0..5u64 {
            let unit = dec.next_unit().unwrap().expect("buffered");
            assert_eq!(unit.dest, token as u32);
            assert_eq!(
                WireMsg::decode_exact(&unit.frame).unwrap(),
                WireMsg::Flush { token }
            );
        }
        assert!(dec.next_unit().unwrap().is_none());
    }

    #[test]
    fn oversized_header_is_an_error_not_a_stall() {
        let mut dec = StreamDecoder::new();
        let mut bad = 0u32.to_le_bytes().to_vec();
        bad.extend_from_slice(&(wire::MAX_BODY_LEN + 1).to_le_bytes());
        bad.push(0);
        dec.push(&bad);
        assert!(matches!(dec.next_unit(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn compaction_does_not_lose_a_torn_unit() {
        let frame = WireMsg::Flush { token: 1 }.encode();
        let unit = encode_unit(0, &frame);
        let mut dec = StreamDecoder::new();
        // Thousands of whole units (forces compaction), then a torn one
        // split across pushes.
        let mut stream = Vec::new();
        for _ in 0..2000 {
            stream.extend_from_slice(&unit);
        }
        dec.push(&stream);
        let mut n = 0;
        while dec.next_unit().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 2000);
        dec.push(&unit[..5]);
        assert!(dec.next_unit().unwrap().is_none());
        dec.push(&unit[5..]);
        let got = dec.next_unit().unwrap().expect("reassembled");
        assert_eq!(got.frame, frame);
    }
}
