//! The server process: one listener hosting one or more worker shards.
//!
//! A server is the [`hyperdex_runtime::worker`] event loop behind real
//! sockets. Worker `w` of a `servers`-process cluster lives on server
//! `w % servers`; frames between workers on the same server travel
//! over in-process channels exactly like the threaded runtime, frames
//! to remote workers (and replies to the client) cross TCP as
//! `[dest][frame]` units ([`crate::stream`]).
//!
//! # Connection fabric
//!
//! Every server dials every other server once (a directed mesh: the
//! dialed connection carries only frames *from* the dialer), and the
//! client dials every server. Each inbound connection gets a reader
//! thread that reads straight into the [`StreamDecoder`]'s buffer,
//! groups the decoded units per destination worker, and delivers one
//! multi-frame packet per `(read batch, worker)` with a **blocking**
//! send — when a worker falls behind, its inbox fills, the reader
//! stops reading, the kernel's receive window fills, and the remote
//! writer blocks: TCP itself propagates the same backpressure the
//! in-process fabric expresses with `try_send`.
//!
//! Outbound, the wire path batches adaptively. [`MeshTransport`]
//! accepts flushed frames into a per-peer **accumulation buffer**
//! instead of shipping a packet per flush; the buffer drains to the
//! connection's writer queue when it crosses a size watermark or when
//! the worker's event loop closes its batching window (nothing left
//! to fold into the batch — see `Transport::drain`). The writer
//! thread drains its whole queue greedily and ships the packets with
//! one vectored write, then recycles the packet buffers through a
//! shared pool back to the accumulating transports, so the
//! steady-state wire path allocates nothing.
//!
//! # Recovery and accounting
//!
//! A local supervisor mirrors the in-process one: a crashed worker
//! (scheduled via [`CrashPoint`]) is respawned on the same inbox,
//! its shard replayed from a journal of the load frames this server
//! received, and released with `RepairDone`. At shutdown the server
//! prints a plain-text frame-conservation report (`WSTATS` per worker,
//! one `SSTATS`, then `REPORT_END`) that the cluster launcher
//! aggregates into the same [`hyperdex_runtime::ShutdownReport`] the
//! other executors use.

use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hyperdex_core::{KeywordHasher, StoreBackend};
use hyperdex_hypercube::Shape;
use hyperdex_runtime::fault::{CrashPoint, FaultInjector, FaultPlan};
use hyperdex_runtime::transport::{
    coalesce_pooled, count_frames, FlushStatus, Transport, SPENT_POOL_CAP,
};
use hyperdex_runtime::wire::WireMsg;
use hyperdex_runtime::worker::{run_worker, ExitCause, WorkerContext, WorkerExit, WorkerStats};
use hyperdex_runtime::{ShardMap, ShardPolicy, SupervisorStats};

use crate::stream::{count_units, push_unit, StreamDecoder, CLIENT_DEST, DEST_LEN};

/// Load frames this server received, for crash repair: `(dest worker,
/// encoded frame)`.
type Journal = Arc<Mutex<Vec<(u32, Vec<u8>)>>>;

/// How one server process is shaped. All servers of a cluster share
/// `r`, `seed`, `total_workers`, and `servers`; only `index` differs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// This server's position in the cluster (`0..servers`).
    pub index: u32,
    /// Server processes in the cluster.
    pub servers: u32,
    /// Hypercube dimension `r`.
    pub r: u8,
    /// Seed for keyword hashing and shard placement.
    pub seed: u64,
    /// Worker shards across the whole cluster.
    pub total_workers: u32,
    /// Bound of every inbox channel and writer queue, in packets.
    pub capacity: usize,
    /// Vertex → worker placement. Every server and the client must
    /// agree, like `r` and `seed`.
    pub policy: ShardPolicy,
    /// Posting-storage backend for every local shard table
    /// (server-local: result parity is byte-identical either way).
    pub store: StoreBackend,
    /// Optional scheduled crash of one local worker.
    pub crash: Option<CrashPoint>,
}

/// The global worker indices hosted by server `index`.
pub fn local_workers(total_workers: u32, servers: u32, index: u32) -> Vec<u32> {
    (0..total_workers)
        .filter(|w| w % servers == index)
        .collect()
}

/// The server hosting worker `w`.
pub fn server_of(worker: u32, servers: u32) -> u32 {
    worker % servers.max(1)
}

/// Accumulated bytes that trigger a hand-off to the writer queue even
/// while the batching window is still open.
const ACC_WATERMARK: usize = 32 * 1024;

/// Accumulation bound: once the buffer holds this much and the writer
/// queue refuses to take it, the transport reports `Full` and the
/// worker's outbox backpressure engages.
const ACC_HARD_CAP: usize = 4 * ACC_WATERMARK;

/// Packet buffers the shared pool retains.
const PACKET_POOL_CAP: usize = 64;

/// Recycled wire-packet buffers, shared between the accumulating
/// transports (which take) and the writer threads (which return
/// drained packets).
#[derive(Clone, Default)]
pub(crate) struct BufferPool(Arc<Mutex<Vec<Vec<u8>>>>);

impl BufferPool {
    fn take(&self) -> Vec<u8> {
        self.0
            .lock()
            .ok()
            .and_then(|mut pool| pool.pop())
            .unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        if let Ok(mut pool) = self.0.lock() {
            if pool.len() < PACKET_POOL_CAP {
                pool.push(buf);
            }
        }
    }
}

/// One connection's accumulation buffer: wire units awaiting a
/// watermark or window-close drain, with their logical frame count
/// (what `Transport::pending` reports).
#[derive(Default)]
struct AccBuf {
    buf: Vec<u8>,
    frames: u64,
}

/// What [`MeshTransport::ship`] did with an accumulation buffer.
enum ShipOutcome {
    /// The packet is on the writer queue (or the buffer was empty).
    Shipped,
    /// The writer queue is full; the buffer keeps accumulating.
    Full,
    /// The writer is gone; the buffered frames were discarded.
    Closed { frames_dropped: u64 },
}

/// The TCP fabric seen by one worker: local peers over channels,
/// remote peers and the client over per-connection writer queues fed
/// by adaptive accumulation buffers.
struct MeshTransport {
    own: u32,
    servers: u32,
    server_index: u32,
    total: usize,
    /// Per global worker: `Some` only for co-located workers (and
    /// `None` at the owning worker's own slot).
    inboxes: Vec<Option<SyncSender<Vec<u8>>>>,
    /// Per server: the writer queue toward that server; `None` at our
    /// own slot.
    peers: Vec<Option<SyncSender<Vec<u8>>>>,
    client: SyncSender<Vec<u8>>,
    /// Per server: units accumulated toward that peer's next packet.
    peer_acc: Vec<AccBuf>,
    /// Client-bound accumulation.
    client_acc: AccBuf,
    /// Emptied frame buffers, handed back via `Transport::reclaim`.
    spent: Vec<Vec<u8>>,
    /// Shared packet-buffer pool (writer threads return drained
    /// packets here).
    pool: BufferPool,
}

impl MeshTransport {
    /// Swaps the accumulation buffer for a pooled one and offers the
    /// packet to the writer queue, without blocking.
    fn ship(acc: &mut AccBuf, tx: &SyncSender<Vec<u8>>, pool: &BufferPool) -> ShipOutcome {
        if acc.buf.is_empty() {
            return ShipOutcome::Shipped;
        }
        let packet = std::mem::replace(&mut acc.buf, pool.take());
        match tx.try_send(packet) {
            Ok(()) => {
                acc.frames = 0;
                ShipOutcome::Shipped
            }
            Err(TrySendError::Full(packet)) => {
                // Keep accumulating into the same buffer; the fresh
                // pool buffer goes back unused.
                pool.put(std::mem::replace(&mut acc.buf, packet));
                ShipOutcome::Full
            }
            Err(TrySendError::Disconnected(packet)) => {
                // Writer gone: only possible once the run is over.
                pool.put(packet);
                let dropped = acc.frames;
                acc.frames = 0;
                ShipOutcome::Closed {
                    frames_dropped: dropped,
                }
            }
        }
    }

    /// Moves every queued frame into the accumulation buffer as
    /// `[dest][frame]` units. The buffer drains to the writer queue at
    /// the watermark; past the hard cap with a full writer queue the
    /// remaining frames stay in the worker's outbox (`Full`).
    fn acc_flush(
        acc: &mut AccBuf,
        tx: &SyncSender<Vec<u8>>,
        pool: &BufferPool,
        spent: &mut Vec<Vec<u8>>,
        dest: u32,
        queue: &mut VecDeque<Vec<u8>>,
    ) -> FlushStatus {
        while let Some(front) = queue.front() {
            if !acc.buf.is_empty() && acc.buf.len() + DEST_LEN + front.len() > ACC_HARD_CAP {
                match MeshTransport::ship(acc, tx, pool) {
                    ShipOutcome::Shipped => {}
                    ShipOutcome::Full => return FlushStatus::Full,
                    ShipOutcome::Closed { frames_dropped } => {
                        let dropped =
                            frames_dropped + queue.iter().map(|f| count_frames(f)).sum::<u64>();
                        queue.clear();
                        return FlushStatus::Closed {
                            frames_dropped: dropped,
                        };
                    }
                }
            }
            let mut frame = queue.pop_front().expect("checked front");
            push_unit(&mut acc.buf, dest, &frame);
            acc.frames += 1;
            if spent.len() < SPENT_POOL_CAP {
                frame.clear();
                spent.push(frame);
            }
        }
        if acc.buf.len() >= ACC_WATERMARK {
            match MeshTransport::ship(acc, tx, pool) {
                // A full writer queue at the watermark is fine: the
                // frames are accepted (pending) and retry at the next
                // flush or window close.
                ShipOutcome::Shipped | ShipOutcome::Full => {}
                ShipOutcome::Closed { frames_dropped } => {
                    return FlushStatus::Closed { frames_dropped }
                }
            }
        }
        FlushStatus::Done
    }
}

impl Transport for MeshTransport {
    fn endpoints(&self) -> usize {
        self.total + 1
    }

    fn flush(&mut self, dest: usize, queue: &mut VecDeque<Vec<u8>>) -> FlushStatus {
        if queue.is_empty() {
            return FlushStatus::Done;
        }
        if dest == self.total {
            return MeshTransport::acc_flush(
                &mut self.client_acc,
                &self.client,
                &self.pool,
                &mut self.spent,
                CLIENT_DEST,
                queue,
            );
        }
        let dest_w = dest as u32;
        if server_of(dest_w, self.servers) == self.server_index {
            // Co-located worker: raw coalesced packet over the channel,
            // identical to the in-process fabric.
            let Some(tx) = &self.inboxes[dest] else {
                debug_assert!(dest_w == self.own, "missing inbox for local worker");
                let dropped = queue.iter().map(|f| count_frames(f)).sum();
                queue.clear();
                return FlushStatus::Closed {
                    frames_dropped: dropped,
                };
            };
            while !queue.is_empty() {
                let packet = coalesce_pooled(queue, &mut self.spent);
                match tx.try_send(packet) {
                    Ok(()) => {}
                    Err(TrySendError::Full(packet)) => {
                        queue.push_front(packet);
                        return FlushStatus::Full;
                    }
                    Err(TrySendError::Disconnected(packet)) => {
                        let dropped = count_frames(&packet)
                            + queue.iter().map(|f| count_frames(f)).sum::<u64>();
                        queue.clear();
                        return FlushStatus::Closed {
                            frames_dropped: dropped,
                        };
                    }
                }
            }
            return FlushStatus::Done;
        }
        let peer = server_of(dest_w, self.servers) as usize;
        let Some(tx) = &self.peers[peer] else {
            debug_assert!(false, "remote dest mapped to own server");
            let dropped = queue.iter().map(|f| count_frames(f)).sum();
            queue.clear();
            return FlushStatus::Closed {
                frames_dropped: dropped,
            };
        };
        MeshTransport::acc_flush(
            &mut self.peer_acc[peer],
            tx,
            &self.pool,
            &mut self.spent,
            dest_w,
            queue,
        )
    }

    fn pending(&self) -> u64 {
        self.client_acc.frames + self.peer_acc.iter().map(|a| a.frames).sum::<u64>()
    }

    fn drain(&mut self) -> FlushStatus {
        let mut full = false;
        let mut dropped = 0;
        for peer in 0..self.peer_acc.len() {
            if self.peer_acc[peer].frames == 0 {
                continue;
            }
            let Some(tx) = &self.peers[peer] else {
                continue;
            };
            match MeshTransport::ship(&mut self.peer_acc[peer], tx, &self.pool) {
                ShipOutcome::Shipped => {}
                ShipOutcome::Full => full = true,
                ShipOutcome::Closed { frames_dropped } => dropped += frames_dropped,
            }
        }
        if self.client_acc.frames > 0 {
            match MeshTransport::ship(&mut self.client_acc, &self.client, &self.pool) {
                ShipOutcome::Shipped => {}
                ShipOutcome::Full => full = true,
                ShipOutcome::Closed { frames_dropped } => dropped += frames_dropped,
            }
        }
        if dropped > 0 {
            FlushStatus::Closed {
                frames_dropped: dropped,
            }
        } else if full {
            FlushStatus::Full
        } else {
            FlushStatus::Done
        }
    }

    fn reclaim(&mut self, pool: &mut Vec<Vec<u8>>, cap: usize) {
        while pool.len() < cap {
            let Some(buf) = self.spent.pop() else { return };
            pool.push(buf);
        }
    }
}

/// Everything needed to (re)spawn a local worker.
struct NetSpawner {
    cfg: ServerConfig,
    shape: Shape,
    hasher: KeywordHasher,
    shards: ShardMap,
    inbox_tx: Vec<Option<SyncSender<Vec<u8>>>>,
    peer_tx: Vec<Option<SyncSender<Vec<u8>>>>,
    client_tx: SyncSender<Vec<u8>>,
    exit_tx: Sender<WorkerExit>,
    pool: BufferPool,
}

impl NetSpawner {
    fn spawn(
        &self,
        worker: u32,
        inbox: Receiver<Vec<u8>>,
        injector: Option<FaultInjector>,
        repairing: bool,
    ) -> JoinHandle<()> {
        let mut inboxes = self.inbox_tx.clone();
        inboxes[worker as usize] = None;
        let transport = MeshTransport {
            own: worker,
            servers: self.cfg.servers,
            server_index: self.cfg.index,
            total: self.cfg.total_workers as usize,
            inboxes,
            peers: self.peer_tx.clone(),
            client: self.client_tx.clone(),
            peer_acc: (0..self.cfg.servers).map(|_| AccBuf::default()).collect(),
            client_acc: AccBuf::default(),
            spent: Vec::new(),
            pool: self.pool.clone(),
        };
        let ctx = WorkerContext {
            index: worker,
            shape: self.shape,
            hasher: self.hasher,
            shards: self.shards,
            store: self.cfg.store,
            injector,
            repairing,
        };
        let exit_tx = self.exit_tx.clone();
        std::thread::Builder::new()
            .name(format!("hyperdex-net-worker-{worker}"))
            .spawn(move || {
                let exit = run_worker(ctx, Box::new(transport), inbox);
                let _ = exit_tx.send(exit);
            })
            .expect("spawn worker thread")
    }
}

/// Reads units off one inbound connection and delivers them to local
/// worker inboxes. Each read lands straight in the decoder's buffer
/// ([`StreamDecoder::fill_from`]); the decoded units of one read batch
/// are grouped per destination worker and delivered as one multi-frame
/// packet per `(batch, worker)`. Blocking sends are the backpressure
/// valve: a full inbox stalls this reader, which stalls the remote
/// writer through TCP flow control.
fn reader_loop(
    mut stream: TcpStream,
    inbox_tx: Vec<Option<SyncSender<Vec<u8>>>>,
    journal: Option<Journal>,
) {
    let mut dec = StreamDecoder::new();
    // Per-dest frame groups for the current read batch; reused across
    // batches so the steady state allocates nothing.
    let mut groups: Vec<(u32, Vec<u8>)> = Vec::new();
    loop {
        match dec.fill_from(&mut stream) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        for (_, packet) in &mut groups {
            packet.clear();
        }
        let mut used = 0;
        loop {
            match dec.next_unit_ref() {
                Ok(None) => break,
                Err(_) => return, // corrupt stream: drop the connection
                Ok(Some((dest, frame))) => {
                    if inbox_tx.get(dest as usize).is_none_or(Option::is_none) {
                        debug_assert!(false, "unit for non-local worker {dest}");
                        continue;
                    }
                    if let Some(journal) = &journal {
                        if matches!(
                            WireMsg::decode_exact(frame),
                            Ok(WireMsg::Insert { .. } | WireMsg::Handoff { .. })
                        ) {
                            journal
                                .lock()
                                .expect("journal lock")
                                .push((dest, frame.to_vec()));
                        }
                    }
                    let slot = match groups[..used].iter_mut().find(|(d, _)| *d == dest) {
                        Some((_, packet)) => packet,
                        None => {
                            if used == groups.len() {
                                groups.push((dest, Vec::new()));
                            } else {
                                groups[used].0 = dest;
                            }
                            used += 1;
                            &mut groups[used - 1].1
                        }
                    };
                    slot.extend_from_slice(frame);
                }
            }
        }
        for (dest, packet) in &groups[..used] {
            if packet.is_empty() {
                continue;
            }
            let tx = inbox_tx[*dest as usize].as_ref().expect("checked above");
            if tx.send(packet.clone()).is_err() {
                return;
            }
        }
    }
}

/// Drains a writer queue into one socket: greedily gathers everything
/// queued (`try_recv` loop) and ships the whole batch with vectored
/// writes, then recycles the packet buffers through the shared pool.
/// Exits when every sender is gone and the queue is empty — packets
/// queued before disconnect are still delivered. If the socket dies
/// the loop keeps receiving (so senders never wedge) and counts every
/// undelivered unit into `lost` for the conservation report.
fn writer_loop(
    rx: Receiver<Vec<u8>>,
    mut stream: TcpStream,
    pool: BufferPool,
    lost: Arc<AtomicU64>,
) {
    let mut batch: Vec<Vec<u8>> = Vec::new();
    let mut broken = false;
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while let Ok(more) = rx.try_recv() {
            batch.push(more);
        }
        if !broken && write_batch(&mut stream, &batch).is_err() {
            broken = true;
        }
        if broken {
            let undelivered: u64 = batch.iter().map(|p| count_units(p)).sum();
            lost.fetch_add(undelivered, Ordering::Relaxed);
        }
        for packet in batch.drain(..) {
            pool.put(packet);
        }
    }
}

/// Writes every packet of `batch` with as few syscalls as vectored
/// I/O allows, advancing manually through partial writes.
fn write_batch(stream: &mut TcpStream, batch: &[Vec<u8>]) -> io::Result<()> {
    let mut idx = 0; // first packet not fully written
    let mut off = 0; // bytes of batch[idx] already written
    while idx < batch.len() {
        if batch[idx].len() == off {
            idx += 1;
            off = 0;
            continue;
        }
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(batch.len() - idx);
        slices.push(IoSlice::new(&batch[idx][off..]));
        for packet in &batch[idx + 1..] {
            if !packet.is_empty() {
                slices.push(IoSlice::new(packet));
            }
        }
        let mut n = match stream.write_vectored(&slices) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "socket wrote 0")),
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while idx < batch.len() && n >= batch[idx].len() - off {
            n -= batch[idx].len() - off;
            idx += 1;
            off = 0;
        }
        off += n;
    }
    Ok(())
}

/// Dials `addr` until the peer's listener answers (peers of a cluster
/// start concurrently, so the first attempts may race the bind).
fn dial(addr: &str) -> io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Runs one server to completion: dial the mesh, host the local
/// shards, supervise crashes, and print the conservation report on
/// stdout once every local worker has shut down cleanly.
///
/// `peer_addrs` lists every server's listen address in cluster order
/// (including this server's own, which is ignored).
///
/// # Errors
///
/// Propagates socket errors from the mesh dial; everything after the
/// fabric is up is handled by supervision.
pub fn run(cfg: ServerConfig, listener: TcpListener, peer_addrs: &[String]) -> io::Result<()> {
    let shape = Shape::new(cfg.r).expect("validated r");
    let hasher = KeywordHasher::new(cfg.r, cfg.seed).expect("validated r");
    let shards = ShardMap::with_policy(cfg.policy, cfg.r, cfg.total_workers.max(1), cfg.seed);
    let local = local_workers(cfg.total_workers, cfg.servers, cfg.index);
    let cap = cfg.capacity.max(1);

    // Inboxes for local workers, addressed by global index.
    let mut inbox_tx: Vec<Option<SyncSender<Vec<u8>>>> =
        (0..cfg.total_workers).map(|_| None).collect();
    let mut inbox_rx: HashMap<u32, Receiver<Vec<u8>>> = HashMap::new();
    for &w in &local {
        let (tx, rx) = sync_channel::<Vec<u8>>(cap);
        inbox_tx[w as usize] = Some(tx);
        inbox_rx.insert(w, rx);
    }

    // Writer queues: one per remote server, one for the client.
    let mut peer_tx: Vec<Option<SyncSender<Vec<u8>>>> = (0..cfg.servers).map(|_| None).collect();
    let mut peer_rx: Vec<Option<Receiver<Vec<u8>>>> = (0..cfg.servers).map(|_| None).collect();
    for j in 0..cfg.servers {
        if j != cfg.index {
            let (tx, rx) = sync_channel::<Vec<u8>>(cap * local.len().max(1));
            peer_tx[j as usize] = Some(tx);
            peer_rx[j as usize] = Some(rx);
        }
    }
    let (client_tx, client_rx) = sync_channel::<Vec<u8>>(cap * cfg.total_workers.max(1) as usize);

    let journal: Option<Journal> = cfg
        .crash
        .is_some()
        .then(|| Arc::new(Mutex::new(Vec::new())));

    // Dial the mesh and start one writer per outbound connection. The
    // packet pool is shared by the accumulating transports and every
    // writer; `wire_lost` counts units a broken socket never delivered.
    let pool = BufferPool::default();
    let wire_lost = Arc::new(AtomicU64::new(0));
    let mut writers: Vec<JoinHandle<()>> = Vec::new();
    for j in 0..cfg.servers {
        if j == cfg.index {
            continue;
        }
        let mut stream = dial(&peer_addrs[j as usize])?;
        stream.set_nodelay(true).ok();
        stream.write_all(&cfg.index.to_le_bytes())?;
        let rx = peer_rx[j as usize].take().expect("created above");
        let pool = pool.clone();
        let lost = Arc::clone(&wire_lost);
        writers.push(
            std::thread::Builder::new()
                .name(format!("hyperdex-net-writer-{}-{j}", cfg.index))
                .spawn(move || writer_loop(rx, stream, pool, lost))
                .expect("spawn writer thread"),
        );
    }

    // Accept loop: mesh peers get a reader; the client connection gets
    // a reader plus the client writer (replies flow back on the same
    // socket).
    let client_writer: Arc<Mutex<Option<JoinHandle<()>>>> = Arc::new(Mutex::new(None));
    let pending_client_rx = Arc::new(Mutex::new(Some(client_rx)));
    {
        let inbox_tx = inbox_tx.clone();
        let journal = journal.clone();
        let client_writer = Arc::clone(&client_writer);
        let pool = pool.clone();
        let wire_lost = Arc::clone(&wire_lost);
        std::thread::Builder::new()
            .name(format!("hyperdex-net-accept-{}", cfg.index))
            .spawn(move || {
                for conn in listener.incoming() {
                    let Ok(mut stream) = conn else { return };
                    stream.set_nodelay(true).ok();
                    let mut hello = [0u8; 4];
                    if stream.read_exact(&mut hello).is_err() {
                        continue;
                    }
                    if u32::from_le_bytes(hello) == CLIENT_DEST {
                        if let Some(rx) = pending_client_rx.lock().expect("client rx").take() {
                            let out = stream.try_clone().expect("clone client stream");
                            let pool = pool.clone();
                            let lost = Arc::clone(&wire_lost);
                            let handle = std::thread::Builder::new()
                                .name("hyperdex-net-client-writer".into())
                                .spawn(move || writer_loop(rx, out, pool, lost))
                                .expect("spawn client writer");
                            *client_writer.lock().expect("writer slot") = Some(handle);
                        }
                    }
                    let inbox_tx = inbox_tx.clone();
                    let journal = journal.clone();
                    std::thread::Builder::new()
                        .name("hyperdex-net-reader".into())
                        .spawn(move || reader_loop(stream, inbox_tx, journal))
                        .expect("spawn reader thread");
                }
            })
            .expect("spawn accept thread");
    }

    // Spawn the local shards.
    let (exit_tx, exit_rx) = channel::<WorkerExit>();
    let spawner = NetSpawner {
        cfg: cfg.clone(),
        shape,
        hasher,
        shards,
        inbox_tx: inbox_tx.clone(),
        peer_tx,
        client_tx,
        exit_tx,
        pool,
    };
    for &w in &local {
        let injector = cfg.crash.and_then(|c| {
            (c.worker == w).then(|| {
                FaultInjector::new(
                    FaultPlan::default().crash(c.worker, c.after_query_frames),
                    w,
                )
            })
        });
        let rx = inbox_rx.remove(&w).expect("inbox created");
        spawner.spawn(w, rx, injector, false);
    }
    println!("READY");
    io::stdout().flush().ok();

    // Local supervision: merge exits, respawn + repair crashes.
    let mut stats: HashMap<u32, WorkerStats> = local
        .iter()
        .map(|&w| {
            (
                w,
                WorkerStats {
                    worker: w,
                    ..WorkerStats::default()
                },
            )
        })
        .collect();
    let mut sup = SupervisorStats::default();
    let mut exited: Vec<Receiver<Vec<u8>>> = Vec::new();
    let mut live = local.len();
    while live > 0 {
        let Ok(exit) = exit_rx.recv() else { break };
        let w = exit.stats.worker;
        stats.get_mut(&w).expect("local worker").merge(&exit.stats);
        match exit.cause {
            ExitCause::Clean => {
                exited.push(exit.inbox);
                live -= 1;
            }
            ExitCause::Crashed => {
                sup.respawns += 1;
                // Respawn on the same inbox, then replay this shard's
                // load frames and release it with RepairDone.
                let tx = inbox_tx[w as usize].as_ref().expect("local inbox").clone();
                spawner.spawn(w, exit.inbox, None, true);
                if let Some(journal) = &journal {
                    let entries = journal.lock().expect("journal lock");
                    for (dest, frame) in entries.iter() {
                        if *dest == w && tx.send(frame.clone()).is_ok() {
                            sup.frames_sent += 1;
                            sup.replayed_frames += 1;
                        }
                    }
                }
                if tx.send(WireMsg::RepairDone { worker: w }.encode()).is_ok() {
                    sup.frames_sent += 1;
                }
            }
        }
    }
    // Every local worker exited: drain their inboxes so conservation
    // closes, then let the writer threads finish flushing.
    for rx in &exited {
        while let Ok(packet) = rx.try_recv() {
            sup.frames_drained += count_frames(&packet);
        }
    }
    drop(spawner);
    for handle in writers {
        let _ = handle.join();
    }
    if let Some(handle) = client_writer.lock().expect("writer slot").take() {
        let _ = handle.join();
    }
    // Units a broken socket never delivered count as drained: they
    // left the workers' ledgers as sent but never reached a receiver.
    sup.frames_drained += wire_lost.load(Ordering::Relaxed);

    // Conservation report, parsed by the cluster launcher.
    let mut lines = String::new();
    let mut order: Vec<u32> = stats.keys().copied().collect();
    order.sort_unstable();
    for w in order {
        let s = &stats[&w];
        lines.push_str(&format!(
            "WSTATS {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
            s.worker,
            s.frames_sent,
            s.frames_received,
            s.backpressure_hits,
            s.inserts,
            s.scans,
            s.queries_coordinated,
            s.frames_dropped,
            s.frames_duplicated,
            s.frames_delayed,
            s.wakeups,
            s.batch_frames_sent,
            s.batch_entries_sent,
        ));
    }
    lines.push_str(&format!(
        "SSTATS {} {} {} {}\nREPORT_END\n",
        sup.respawns, sup.replayed_frames, sup.frames_sent, sup.frames_drained,
    ));
    print!("{lines}");
    io::stdout().flush().ok();
    Ok(())
}

/// Parses one `WSTATS` report line back into [`WorkerStats`].
pub fn parse_wstats(line: &str) -> Option<WorkerStats> {
    let mut it = line.strip_prefix("WSTATS ")?.split_whitespace();
    let mut next = || it.next()?.parse::<u64>().ok();
    Some(WorkerStats {
        worker: next()? as u32,
        frames_sent: next()?,
        frames_received: next()?,
        backpressure_hits: next()?,
        inserts: next()?,
        scans: next()?,
        queries_coordinated: next()?,
        frames_dropped: next()?,
        frames_duplicated: next()?,
        frames_delayed: next()?,
        wakeups: next()?,
        batch_frames_sent: next()?,
        batch_entries_sent: next()?,
    })
}

/// Parses one `SSTATS` report line back into [`SupervisorStats`].
pub fn parse_sstats(line: &str) -> Option<SupervisorStats> {
    let mut it = line.strip_prefix("SSTATS ")?.split_whitespace();
    let mut next = || it.next()?.parse::<u64>().ok();
    Some(SupervisorStats {
        respawns: next()?,
        replayed_frames: next()?,
        frames_sent: next()?,
        frames_drained: next()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_partition_across_servers() {
        let all: Vec<Vec<u32>> = (0..3).map(|i| local_workers(8, 3, i)).collect();
        let mut seen: Vec<u32> = all.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<u32>>());
        for (i, workers) in all.iter().enumerate() {
            for &w in workers {
                assert_eq!(server_of(w, 3), i as u32);
            }
        }
    }

    #[test]
    fn report_lines_roundtrip() {
        let s = WorkerStats {
            worker: 3,
            frames_sent: 10,
            frames_received: 11,
            backpressure_hits: 1,
            inserts: 2,
            scans: 3,
            queries_coordinated: 4,
            frames_dropped: 5,
            frames_duplicated: 6,
            frames_delayed: 7,
            wakeups: 8,
            batch_frames_sent: 9,
            batch_entries_sent: 27,
        };
        let line = format!(
            "WSTATS {} {} {} {} {} {} {} {} {} {} {} {} {}",
            s.worker,
            s.frames_sent,
            s.frames_received,
            s.backpressure_hits,
            s.inserts,
            s.scans,
            s.queries_coordinated,
            s.frames_dropped,
            s.frames_duplicated,
            s.frames_delayed,
            s.wakeups,
            s.batch_frames_sent,
            s.batch_entries_sent,
        );
        assert_eq!(parse_wstats(&line).unwrap(), s);
        let sup = SupervisorStats {
            respawns: 1,
            replayed_frames: 2,
            frames_sent: 3,
            frames_drained: 4,
        };
        assert_eq!(parse_sstats("SSTATS 1 2 3 4").unwrap(), sup);
        assert!(parse_wstats("WSTATS 1 2").is_none());
        assert!(parse_sstats("garbage").is_none());
    }
}
