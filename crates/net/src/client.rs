//! The cluster client: typed errors, deadlines, and reconnection.
//!
//! [`NetClient`] speaks the same frame protocol as the in-process
//! [`hyperdex_runtime::NodeRuntime`] handle, but over one TCP
//! connection per server — and because sockets fail in ways channels
//! cannot, every operation returns `Result` instead of panicking:
//!
//! * [`Error::Timeout`] — a request's deadline expired; the connection
//!   may be healthy and the reply merely late.
//! * [`Error::ConnectionLost`] — the connection to the server owning
//!   the request died and could not be re-established within the
//!   reconnect budget (attempts with exponential backoff).
//!
//! A background reader thread per connection decodes reply units and
//! feeds one event channel; request methods drain it, matching replies
//! by query id (stale replies from abandoned fault-tolerant attempts
//! are discarded exactly like the in-process client). Routing is
//! client-side: the client owns the same seeded [`KeywordHasher`] and
//! [`ShardMap`] as the workers, computes each request's root worker,
//! and writes to the server hosting it.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hyperdex_core::{CoverageReport, Error, KeywordHasher, KeywordSet, ObjectId};
use hyperdex_runtime::runtime::{
    BatchResult, FtSearchOptions, FtSearchOutcome, Request, RuntimeMatch,
};
use hyperdex_runtime::wire::WireMsg;
use hyperdex_runtime::{ShardMap, ShardPolicy};

use crate::server::server_of;
use crate::stream::{encode_unit, push_unit, StreamDecoder, CLIENT_DEST};

/// Client-side knobs: connection and request deadlines, reconnect
/// budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Deadline for establishing one TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for one request's reply (per reply for multi-reply
    /// barriers like flush).
    pub request_timeout: Duration,
    /// Connection attempts before a lost server is given up on.
    pub reconnect_attempts: u32,
    /// Sleep before the second reconnect attempt; doubles per attempt.
    pub reconnect_backoff: Duration,
    /// Independent searches kept in flight per connection by the
    /// windowed paths ([`NetClient::run_batch`],
    /// [`NetClient::superset_search_ft_batch`]). The default reads the
    /// `HYPERDEX_NET_WINDOW` environment variable (falling back to 32).
    pub window: usize,
}

/// Default for [`NetConfig::window`] when `HYPERDEX_NET_WINDOW` is
/// unset or unparsable.
pub const DEFAULT_WINDOW: usize = 32;

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            reconnect_attempts: 4,
            reconnect_backoff: Duration::from_millis(25),
            window: std::env::var("HYPERDEX_NET_WINDOW")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&w| w > 0)
                .unwrap_or(DEFAULT_WINDOW),
        }
    }
}

/// What a connection reader reports to the request path.
enum Event {
    /// A decoded client-bound frame.
    Frame(WireMsg),
    /// The connection to `server` died (EOF, reset, or corrupt
    /// stream).
    Lost { server: usize, detail: String },
}

/// Connected client handle. Synchronous like the in-process handle;
/// all I/O concurrency lives in the servers.
pub struct NetClient {
    hasher: KeywordHasher,
    shards: ShardMap,
    cfg: NetConfig,
    addrs: Vec<String>,
    conns: Vec<Option<TcpStream>>,
    events_tx: Sender<Event>,
    events_rx: Receiver<Event>,
    /// Per server: units queued by the windowed paths, written as one
    /// coalesced packet by [`NetClient::flush_queued`]. The `u64` is
    /// the queued frame count (for the conservation ledger).
    wqueue: Vec<(Vec<u8>, u64)>,
    /// Frames decoded but not yet consumed by a request.
    pending: VecDeque<WireMsg>,
    received: Arc<AtomicU64>,
    readers: Vec<JoinHandle<()>>,
    next_id: u64,
    frames_sent: u64,
}

/// The client's half of the conservation ledger, produced by
/// [`NetClient::shutdown`]. Call [`ClientClose::finish`] after the
/// server processes have exited to get final counts.
pub struct ClientClose {
    frames_sent: u64,
    received: Arc<AtomicU64>,
    readers: Vec<JoinHandle<()>>,
}

impl ClientClose {
    /// Joins the reader threads (they exit when the servers close
    /// their sockets) and returns `(frames_sent, frames_received)`.
    pub fn finish(self) -> (u64, u64) {
        for handle in self.readers {
            let _ = handle.join();
        }
        (self.frames_sent, self.received.load(Ordering::SeqCst))
    }
}

impl NetClient {
    /// Connects to every server of a cluster under the default
    /// [`ShardPolicy`]. `addrs` lists the servers' listen addresses in
    /// cluster order; `total_workers`, `r`, and `seed` must match the
    /// servers' configuration (they determine routing).
    ///
    /// # Errors
    ///
    /// [`Error::ConnectionLost`] when any server cannot be reached
    /// within the connect timeout.
    pub fn connect(
        addrs: &[String],
        r: u8,
        seed: u64,
        total_workers: u32,
        cfg: NetConfig,
    ) -> Result<NetClient, Error> {
        NetClient::connect_with(addrs, r, seed, total_workers, ShardPolicy::default(), cfg)
    }

    /// [`NetClient::connect`] with an explicit placement policy — the
    /// client computes the same vertex → worker map as the servers, so
    /// a policy mismatch would misroute every insert.
    ///
    /// # Errors
    ///
    /// [`Error::ConnectionLost`] when any server cannot be reached
    /// within the connect timeout.
    pub fn connect_with(
        addrs: &[String],
        r: u8,
        seed: u64,
        total_workers: u32,
        policy: ShardPolicy,
        cfg: NetConfig,
    ) -> Result<NetClient, Error> {
        let hasher = KeywordHasher::new(r, seed)?;
        let shards = ShardMap::with_policy(policy, r, total_workers.max(1), seed);
        let (events_tx, events_rx) = channel();
        let received = Arc::new(AtomicU64::new(0));
        let mut client = NetClient {
            hasher,
            shards,
            cfg,
            addrs: addrs.to_vec(),
            conns: (0..addrs.len()).map(|_| None).collect(),
            events_tx,
            events_rx,
            wqueue: (0..addrs.len()).map(|_| (Vec::new(), 0)).collect(),
            pending: VecDeque::new(),
            received,
            readers: Vec::new(),
            next_id: 0,
            frames_sent: 0,
        };
        for server in 0..addrs.len() {
            let stream = client.open(server)?;
            client.install(server, stream);
        }
        Ok(client)
    }

    /// Worker shards across the cluster.
    pub fn workers(&self) -> u32 {
        self.shards.workers()
    }

    /// Opens one connection: TCP connect within the deadline, then the
    /// client hello.
    fn open(&self, server: usize) -> Result<TcpStream, Error> {
        let endpoint = self.addrs[server].clone();
        let lost = |detail: String| Error::ConnectionLost {
            endpoint: endpoint.clone(),
            detail,
        };
        let addr = endpoint
            .to_socket_addrs()
            .map_err(|e| lost(e.to_string()))?
            .next()
            .ok_or_else(|| lost("address resolved to nothing".into()))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.cfg.connect_timeout)
            .map_err(|e| lost(e.to_string()))?;
        stream.set_nodelay(true).ok();
        stream
            .write_all(&CLIENT_DEST.to_le_bytes())
            .map_err(|e| lost(e.to_string()))?;
        Ok(stream)
    }

    /// Registers an opened connection: keeps the write half, spawns
    /// the reader on a clone.
    fn install(&mut self, server: usize, stream: TcpStream) {
        let read_half = stream.try_clone().expect("clone stream");
        let tx = self.events_tx.clone();
        let received = Arc::clone(&self.received);
        self.readers.push(
            std::thread::Builder::new()
                .name(format!("hyperdex-net-client-reader-{server}"))
                .spawn(move || reader_loop(read_half, server, tx, received))
                .expect("spawn client reader"),
        );
        self.conns[server] = Some(stream);
    }

    /// Re-establishes a lost connection: immediate first attempt, then
    /// exponential backoff, up to the configured budget.
    fn reconnect(&mut self, server: usize) -> Result<(), Error> {
        let mut backoff = self.cfg.reconnect_backoff;
        let mut last = String::from("no attempt made");
        for attempt in 0..self.cfg.reconnect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            match self.open(server) {
                Ok(stream) => {
                    self.install(server, stream);
                    return Ok(());
                }
                Err(Error::ConnectionLost { detail, .. }) => last = detail,
                Err(other) => return Err(other),
            }
        }
        Err(Error::ConnectionLost {
            endpoint: self.addrs[server].clone(),
            detail: format!(
                "reconnect gave up after {} attempts: {last}",
                self.cfg.reconnect_attempts.max(1)
            ),
        })
    }

    /// Drains reader events without blocking: frames queue up for the
    /// next receive, losses mark their connection dead.
    fn poll_events(&mut self) {
        while let Ok(event) = self.events_rx.try_recv() {
            match event {
                Event::Frame(msg) => self.pending.push_back(msg),
                Event::Lost { server, .. } => self.conns[server] = None,
            }
        }
    }

    /// Sends one frame to `worker`, reconnecting to its server if the
    /// connection is gone.
    ///
    /// # Errors
    ///
    /// [`Error::ConnectionLost`] when the server stays unreachable
    /// through the reconnect budget.
    fn send_frame(&mut self, worker: u32, msg: &WireMsg) -> Result<(), Error> {
        self.poll_events();
        let server = server_of(worker, self.addrs.len() as u32) as usize;
        let unit = encode_unit(worker, &msg.encode());
        if self.conns[server].is_none() {
            self.reconnect(server)?;
        }
        let failed = match self.conns[server].as_mut() {
            Some(stream) => stream.write_all(&unit).is_err(),
            None => true,
        };
        if failed {
            // The socket died under us; one reconnect cycle, then give
            // up with a typed error.
            self.conns[server] = None;
            self.reconnect(server)?;
            let stream = self.conns[server].as_mut().expect("just reconnected");
            stream.write_all(&unit).map_err(|e| Error::ConnectionLost {
                endpoint: self.addrs[server].clone(),
                detail: e.to_string(),
            })?;
        }
        self.frames_sent += 1;
        Ok(())
    }

    /// Queues one frame for `worker` without touching the socket; the
    /// windowed paths batch their sends here and ship one coalesced
    /// packet per server with [`NetClient::flush_queued`].
    fn queue_frame(&mut self, worker: u32, msg: &WireMsg) {
        let server = self.owner_server(worker);
        let (buf, frames) = &mut self.wqueue[server];
        push_unit(buf, worker, &msg.encode());
        *frames += 1;
    }

    /// Writes every queued packet, one `write_all` per server, with
    /// the same single-reconnect-cycle contract as
    /// [`NetClient::send_frame`].
    ///
    /// # Errors
    ///
    /// [`Error::ConnectionLost`] when a server stays unreachable
    /// through the reconnect budget.
    fn flush_queued(&mut self) -> Result<(), Error> {
        self.poll_events();
        for server in 0..self.wqueue.len() {
            if self.wqueue[server].0.is_empty() {
                continue;
            }
            let (buf, frames) = std::mem::take(&mut self.wqueue[server]);
            if self.conns[server].is_none() {
                self.reconnect(server)?;
            }
            let failed = match self.conns[server].as_mut() {
                Some(stream) => stream.write_all(&buf).is_err(),
                None => true,
            };
            if failed {
                self.conns[server] = None;
                self.reconnect(server)?;
                let stream = self.conns[server].as_mut().expect("just reconnected");
                stream.write_all(&buf).map_err(|e| Error::ConnectionLost {
                    endpoint: self.addrs[server].clone(),
                    detail: e.to_string(),
                })?;
            }
            self.frames_sent += frames;
        }
        Ok(())
    }

    /// Receives the next client-bound frame before `deadline`.
    /// `awaiting` names the server whose reply we need: if that
    /// connection dies while waiting, the wait fails fast with
    /// [`Error::ConnectionLost`] instead of running out the clock.
    fn recv_within(
        &mut self,
        deadline: Instant,
        operation: &str,
        awaiting: Option<usize>,
    ) -> Result<WireMsg, Error> {
        loop {
            if let Some(msg) = self.pending.pop_front() {
                return Ok(msg);
            }
            let wait = deadline.saturating_duration_since(Instant::now());
            if wait.is_zero() {
                return Err(Error::Timeout {
                    operation: operation.to_string(),
                    after_ms: self.cfg.request_timeout.as_millis() as u64,
                });
            }
            match self.events_rx.recv_timeout(wait) {
                Ok(Event::Frame(msg)) => return Ok(msg),
                Ok(Event::Lost { server, detail }) => {
                    self.conns[server] = None;
                    if awaiting == Some(server) {
                        return Err(Error::ConnectionLost {
                            endpoint: self.addrs[server].clone(),
                            detail,
                        });
                    }
                }
                Err(_) => {
                    return Err(Error::Timeout {
                        operation: operation.to_string(),
                        after_ms: self.cfg.request_timeout.as_millis() as u64,
                    })
                }
            }
        }
    }

    fn request_deadline(&self) -> Instant {
        Instant::now() + self.cfg.request_timeout
    }

    fn owner_server(&self, worker: u32) -> usize {
        server_of(worker, self.addrs.len() as u32) as usize
    }

    /// Routes one insert to the shard owning `F_h(K)`.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyKeywordSet`] for an empty set,
    /// [`Error::ConnectionLost`] when the owner is unreachable.
    pub fn insert(&mut self, object: ObjectId, keywords: KeywordSet) -> Result<(), Error> {
        if keywords.is_empty() {
            return Err(Error::EmptyKeywordSet);
        }
        let bits = self.hasher.vertex_for(&keywords).bits();
        let owner = self.shards.owner_of(bits);
        self.send_frame(
            owner,
            &WireMsg::Insert {
                object: object.raw(),
                keywords,
            },
        )
    }

    /// Drain barrier across every server: returns once each worker has
    /// processed everything enqueued before this call.
    ///
    /// # Errors
    ///
    /// [`Error::Timeout`] when any worker's ack misses the per-reply
    /// deadline; connection errors as [`Error::ConnectionLost`].
    pub fn flush(&mut self) -> Result<(), Error> {
        self.next_id += 1;
        let token = self.next_id;
        for w in 0..self.workers() {
            self.send_frame(w, &WireMsg::Flush { token })?;
        }
        let mut pending = self.workers();
        while pending > 0 {
            let deadline = self.request_deadline();
            match self.recv_within(deadline, "flush ack", None)? {
                WireMsg::FlushAck { token: t, .. } if t == token => pending -= 1,
                // Stale replies of abandoned FT attempts are legal
                // here; anything else is a protocol bug.
                WireMsg::FtQueryDone { .. } | WireMsg::FlushAck { .. } => {}
                other => panic!("unexpected frame during flush barrier: {other:?}"),
            }
        }
        Ok(())
    }

    /// Pin search (§3.2) over the wire: one request unit, one reply.
    ///
    /// # Errors
    ///
    /// [`Error::Timeout`] on a late reply, [`Error::ConnectionLost`]
    /// when the owning server is gone.
    pub fn pin_search(&mut self, keywords: &KeywordSet) -> Result<Vec<ObjectId>, Error> {
        self.next_id += 1;
        let id = self.next_id;
        let bits = self.hasher.vertex_for(keywords).bits();
        let owner = self.shards.owner_of(bits);
        self.send_frame(
            owner,
            &WireMsg::Pin {
                query_id: id,
                keywords: keywords.clone(),
            },
        )?;
        let deadline = self.request_deadline();
        loop {
            match self.recv_within(deadline, "pin reply", Some(self.owner_server(owner)))? {
                WireMsg::PinResults { query_id, objects } if query_id == id => {
                    return Ok(objects.into_iter().map(ObjectId::from_raw).collect())
                }
                WireMsg::FtQueryDone { .. } => {}
                other => panic!("unexpected frame awaiting pin results: {other:?}"),
            }
        }
    }

    /// Coordinator for sequential query `id`: round-robin across the
    /// cluster's workers, mirroring the in-process runtime so a
    /// popular root prefix never serializes a mix on one worker.
    fn coordinator_for(&self, id: u64) -> u32 {
        (id % u64::from(self.shards.workers())) as u32
    }

    /// Superset search (§3.3), coordinated by a round-robin-chosen
    /// worker — possibly in a different process, with the SBT
    /// traversal fanning out across the whole cluster.
    ///
    /// # Errors
    ///
    /// [`Error::ZeroThreshold`] for a zero threshold, otherwise the
    /// usual timeout/connection errors.
    pub fn superset_search(
        &mut self,
        keywords: &KeywordSet,
        threshold: usize,
    ) -> Result<Vec<RuntimeMatch>, Error> {
        if threshold == 0 {
            return Err(Error::ZeroThreshold);
        }
        self.next_id += 1;
        let id = self.next_id;
        let owner = self.coordinator_for(id);
        self.send_frame(
            owner,
            &WireMsg::Query {
                query_id: id,
                keywords: keywords.clone(),
                threshold: threshold as u64,
            },
        )?;
        let deadline = self.request_deadline();
        loop {
            match self.recv_within(deadline, "superset reply", Some(self.owner_server(owner)))? {
                WireMsg::QueryDone { query_id, objects } if query_id == id => {
                    return Ok(objects
                        .into_iter()
                        .map(|(raw, extra)| RuntimeMatch {
                            object: ObjectId::from_raw(raw),
                            extra_keywords: extra,
                        })
                        .collect())
                }
                WireMsg::FtQueryDone { .. } => {}
                other => panic!("unexpected frame awaiting query results: {other:?}"),
            }
        }
    }

    /// Fault-tolerant superset search over the wire, mirroring
    /// [`hyperdex_runtime::NodeRuntime::superset_search_ft`]: the
    /// coordinating worker retries and re-delegates; the client
    /// re-issues the query when a whole attempt dies, and degrades to
    /// an honest empty outcome when nobody ever answers.
    ///
    /// # Errors
    ///
    /// [`Error::ZeroThreshold`] / [`Error::ZeroTimeout`] on bad
    /// arguments, [`Error::ConnectionLost`] when the coordinator's
    /// server is unreachable for the initial send.
    pub fn superset_search_ft(
        &mut self,
        keywords: &KeywordSet,
        threshold: usize,
        opts: &FtSearchOptions,
    ) -> Result<FtSearchOutcome, Error> {
        let mut out =
            self.superset_search_ft_batch(std::slice::from_ref(keywords), threshold, opts)?;
        Ok(out.pop().expect("one query in, one outcome out"))
    }

    /// Windowed fault-tolerant search: keeps up to
    /// [`NetConfig::window`] independent FT queries in flight, matching
    /// out-of-order completions by query id. Each search carries its
    /// own attempt counter and deadline — one search timing out (and
    /// re-issuing, or degrading to an honest empty outcome once its
    /// attempts are exhausted) never stalls the rest of the window.
    ///
    /// # Errors
    ///
    /// [`Error::ZeroThreshold`] / [`Error::ZeroTimeout`] on bad
    /// arguments, [`Error::ConnectionLost`] when a send finds a server
    /// unreachable through the reconnect budget. A search whose replies
    /// never arrive is not an error: it completes degraded
    /// (`complete: false`, no coverage), exactly like the single-query
    /// path.
    pub fn superset_search_ft_batch(
        &mut self,
        queries: &[KeywordSet],
        threshold: usize,
        opts: &FtSearchOptions,
    ) -> Result<Vec<FtSearchOutcome>, Error> {
        if threshold == 0 {
            return Err(Error::ZeroThreshold);
        }
        if opts.base_timeout_ms == 0 {
            return Err(Error::ZeroTimeout);
        }
        struct Flight {
            slot: usize,
            attempt: u32,
            deadline: Instant,
        }
        let window = self.cfg.window.max(1);
        let attempts = opts.attempts.max(1);
        let attempt_timeout = Duration::from_millis(opts.attempt_timeout_ms.max(1));
        let mut out: Vec<Option<FtSearchOutcome>> = queries.iter().map(|_| None).collect();
        let mut flights: HashMap<u64, Flight> = HashMap::new();
        let mut next = 0usize;
        let mut done = 0usize;
        while done < queries.len() {
            while next < queries.len() && flights.len() < window {
                let id = self.issue_ft(&queries[next], threshold, opts);
                flights.insert(
                    id,
                    Flight {
                        slot: next,
                        attempt: 1,
                        deadline: Instant::now() + attempt_timeout,
                    },
                );
                next += 1;
            }
            self.flush_queued()?;
            let deadline = flights
                .values()
                .map(|f| f.deadline)
                .min()
                .expect("incomplete slots are in flight");
            match self.recv_within(deadline, "FT reply", None) {
                Ok(WireMsg::FtQueryDone {
                    query_id,
                    objects,
                    subcube,
                    reached,
                    retries,
                    timeouts,
                    redelegations,
                    queries_sent,
                    conts,
                    result_messages,
                    skipped,
                }) => {
                    // A miss is the stale completion of an abandoned
                    // attempt — discarded, like the in-process client.
                    if let Some(flight) = flights.remove(&query_id) {
                        let complete = skipped.is_empty();
                        out[flight.slot] = Some(FtSearchOutcome {
                            matches: objects
                                .into_iter()
                                .map(|(raw, extra)| RuntimeMatch {
                                    object: ObjectId::from_raw(raw),
                                    extra_keywords: extra,
                                })
                                .collect(),
                            complete,
                            attempts: flight.attempt,
                            coverage: Some(CoverageReport {
                                strategy: opts.strategy,
                                subcube_vertices: subcube,
                                vertices_reached: reached,
                                vertices_skipped: skipped.len() as u64,
                                skipped,
                                queries_sent,
                                conts,
                                result_messages,
                                retries,
                                timeouts,
                                redelegations,
                                pruned_subtrees: 0,
                                vertices_pruned: 0,
                                failed_over: false,
                                secondary_reached: 0,
                                secondary_skipped: 0,
                                elapsed: hyperdex_simnet::time::SimDuration::ZERO,
                            }),
                        });
                        done += 1;
                    }
                }
                Ok(other) => panic!("unexpected frame awaiting FT results: {other:?}"),
                Err(Error::Timeout { .. }) => {
                    // Only the expired flights re-issue (fresh id) or
                    // degrade; the rest of the window keeps waiting.
                    let now = Instant::now();
                    let expired: Vec<u64> = flights
                        .iter()
                        .filter(|(_, f)| f.deadline <= now)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in expired {
                        let flight = flights.remove(&id).expect("collected above");
                        if flight.attempt >= attempts {
                            out[flight.slot] = Some(FtSearchOutcome {
                                matches: Vec::new(),
                                complete: false,
                                attempts,
                                coverage: None,
                            });
                            done += 1;
                        } else {
                            let new_id = self.issue_ft(&queries[flight.slot], threshold, opts);
                            flights.insert(
                                new_id,
                                Flight {
                                    slot: flight.slot,
                                    attempt: flight.attempt + 1,
                                    deadline: Instant::now() + attempt_timeout,
                                },
                            );
                        }
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Ok(out.into_iter().map(|r| r.expect("all completed")).collect())
    }

    /// Queues one FT query toward its root's owner and returns the
    /// fresh query id.
    fn issue_ft(&mut self, keywords: &KeywordSet, threshold: usize, opts: &FtSearchOptions) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        let root = self.hasher.vertex_for(keywords).bits();
        let owner = self.shards.owner_of(root);
        self.queue_frame(
            owner,
            &WireMsg::FtQuery {
                query_id: id,
                keywords: keywords.clone(),
                threshold: threshold as u64,
                strategy: opts.strategy,
                max_retries: opts.max_retries,
                base_timeout_ms: opts.base_timeout_ms,
            },
        );
        id
    }

    /// Runs `requests` keeping up to `window` in flight across the
    /// cluster — the socket-mode throughput path the bench measures.
    ///
    /// # Errors
    ///
    /// The usual timeout/connection errors; a timeout names the
    /// longest-waiting request.
    pub fn run_batch(
        &mut self,
        requests: &[Request],
        window: usize,
    ) -> Result<Vec<BatchResult>, Error> {
        let window = window.max(1);
        let mut out: Vec<Option<BatchResult>> = requests.iter().map(|_| None).collect();
        let mut in_flight: HashMap<u64, (usize, Instant)> = HashMap::new();
        let mut next = 0usize;
        let mut completed = 0usize;
        while completed < requests.len() {
            while next < requests.len() && in_flight.len() < window {
                self.next_id += 1;
                let id = self.next_id;
                let started = Instant::now();
                match &requests[next] {
                    Request::Pin(keywords) => {
                        let bits = self.hasher.vertex_for(keywords).bits();
                        let owner = self.shards.owner_of(bits);
                        self.queue_frame(
                            owner,
                            &WireMsg::Pin {
                                query_id: id,
                                keywords: keywords.clone(),
                            },
                        );
                    }
                    Request::Superset {
                        keywords,
                        threshold,
                    } => {
                        let owner = self.coordinator_for(id);
                        self.queue_frame(
                            owner,
                            &WireMsg::Query {
                                query_id: id,
                                keywords: keywords.clone(),
                                threshold: *threshold as u64,
                            },
                        );
                    }
                }
                in_flight.insert(id, (next, started));
                next += 1;
            }
            self.flush_queued()?;
            let deadline = self.request_deadline();
            let (query_id, objects) = match self.recv_within(deadline, "batch reply", None)? {
                WireMsg::PinResults { query_id, objects } => (
                    query_id,
                    objects.into_iter().map(ObjectId::from_raw).collect(),
                ),
                WireMsg::QueryDone { query_id, objects } => (
                    query_id,
                    objects
                        .into_iter()
                        .map(|(raw, _)| ObjectId::from_raw(raw))
                        .collect::<Vec<ObjectId>>(),
                ),
                other => panic!("unexpected frame during batch: {other:?}"),
            };
            let (slot, started) = in_flight
                .remove(&query_id)
                .expect("completion for an in-flight request");
            out[slot] = Some(BatchResult {
                objects,
                latency: started.elapsed(),
            });
            completed += 1;
        }
        Ok(out.into_iter().map(|r| r.expect("all completed")).collect())
    }

    /// Sends `Shutdown` to every worker and releases the connections.
    /// The returned [`ClientClose`] yields the client's conservation
    /// counters once the servers have exited.
    ///
    /// # Errors
    ///
    /// [`Error::ConnectionLost`] when a shutdown frame cannot be
    /// delivered.
    pub fn shutdown(mut self) -> Result<ClientClose, Error> {
        for w in 0..self.workers() {
            self.send_frame(w, &WireMsg::Shutdown)?;
        }
        Ok(ClientClose {
            frames_sent: self.frames_sent,
            received: self.received,
            readers: self.readers,
        })
    }
}

/// Decodes client-bound units off one connection into the shared event
/// channel, reporting the connection's death as a final event.
fn reader_loop(mut stream: TcpStream, server: usize, tx: Sender<Event>, received: Arc<AtomicU64>) {
    let mut dec = StreamDecoder::new();
    let detail = loop {
        match dec.fill_from(&mut stream) {
            Ok(0) => break "server closed the connection".to_string(),
            Err(e) => break e.to_string(),
            Ok(_) => {}
        }
        loop {
            match dec.next_unit_ref() {
                Ok(None) => break,
                Err(e) => {
                    let _ = tx.send(Event::Lost {
                        server,
                        detail: format!("corrupt stream: {e}"),
                    });
                    return;
                }
                Ok(Some((dest, frame))) => {
                    debug_assert_eq!(dest, CLIENT_DEST, "worker-bound unit at the client");
                    received.fetch_add(1, Ordering::SeqCst);
                    match WireMsg::decode_exact(frame) {
                        Ok(msg) => {
                            if tx.send(Event::Frame(msg)).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Event::Lost {
                                server,
                                detail: format!("undecodable frame: {e}"),
                            });
                            return;
                        }
                    }
                }
            }
        }
    };
    let _ = tx.send(Event::Lost { server, detail });
}
