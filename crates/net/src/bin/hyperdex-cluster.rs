//! `hyperdex-cluster` — launch a small real cluster and run a demo
//! workload end to end.
//!
//! ```text
//! hyperdex-cluster [--servers N] [--workers W] [--r R] [--seed S]
//! ```
//!
//! Spawns N `hyperdex-server` processes over loopback, loads a few
//! objects, runs a pin and a superset search over TCP, and prints the
//! cluster's frame-conservation report.

use std::process::ExitCode;

use hyperdex_core::{KeywordSet, ObjectId};
use hyperdex_net::{Cluster, ClusterConfig};

fn main() -> ExitCode {
    let mut servers: u32 = 2;
    let mut workers: u32 = 4;
    let mut r: u8 = 12;
    let mut seed: u64 = 42;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            eprintln!("hyperdex-cluster: flag {flag} needs a value");
            return ExitCode::FAILURE;
        };
        let ok = match flag.as_str() {
            "--servers" => value.parse().map(|v| servers = v).is_ok(),
            "--workers" => value.parse().map(|v| workers = v).is_ok(),
            "--r" => value.parse().map(|v| r = v).is_ok(),
            "--seed" => value.parse().map(|v| seed = v).is_ok(),
            other => {
                eprintln!("hyperdex-cluster: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        };
        if !ok {
            eprintln!("hyperdex-cluster: bad value for {flag}");
            return ExitCode::FAILURE;
        }
    }

    let cluster = match Cluster::launch(ClusterConfig::new(r, seed, workers, servers)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("hyperdex-cluster: launch failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cluster up: {servers} server(s) hosting {workers} worker shard(s) at {:?}",
        cluster.addrs()
    );

    let corpus = [
        (1, "rust systems programming"),
        (2, "rust network protocols"),
        (3, "distributed hash table"),
        (4, "keyword search hypercube"),
        (5, "rust distributed systems"),
    ];
    let run = || -> Result<(), hyperdex_core::Error> {
        let mut client = cluster.client()?;
        for (id, text) in corpus {
            client.insert(ObjectId::from_raw(id), KeywordSet::parse(text)?)?;
        }
        client.flush()?;

        let pin = client.pin_search(&KeywordSet::parse("distributed hash table")?)?;
        println!("pin search {{distributed, hash, table}}: {pin:?}");
        let matches = client.superset_search(&KeywordSet::parse("rust")?, 10)?;
        println!("superset search {{rust}}: {} object(s)", matches.len());
        for m in &matches {
            println!("  {:?} (+{} extra keyword(s))", m.object, m.extra_keywords);
        }

        let report = cluster.shutdown(client)?;
        report.assert_conserved();
        println!(
            "shutdown clean: {} frames sent / {} received / {} dropped / {} drained — conserved",
            report.total_sent(),
            report.total_received(),
            report.total_dropped(),
            report.supervisor.frames_drained,
        );
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("hyperdex-cluster: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
