//! The `hyperdex-server` process: worker shards behind one listener.
//!
//! Usage (normally driven by the cluster launcher, not by hand):
//!
//! ```text
//! hyperdex-server --index 0 --servers 2 --listen 127.0.0.1:0 \
//!     --r 12 --seed 42 --workers 4 --capacity 64 \
//!     [--policy hash|prefix] [--store table|slab] [--crash W@N]
//! ```
//!
//! The process binds, prints `LISTENING <addr>`, reads one
//! `PEERS <a0> <a1> ...` line from stdin (every server's address in
//! cluster order), dials the mesh, prints `READY`, and serves until a
//! client broadcasts `Shutdown` — at which point it prints its
//! conservation report (`WSTATS`/`SSTATS`/`REPORT_END`) and exits.

use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::process::ExitCode;

use hyperdex_core::StoreBackend;
use hyperdex_net::server::{self, ServerConfig};
use hyperdex_runtime::fault::CrashPoint;
use hyperdex_runtime::ShardPolicy;

fn usage(detail: &str) -> ExitCode {
    eprintln!("hyperdex-server: {detail}");
    eprintln!(
        "usage: hyperdex-server --index I --servers N --listen ADDR \
         --r R --seed S --workers W --capacity C \
         [--policy hash|prefix] [--store table|slab] [--crash W@N]"
    );
    ExitCode::FAILURE
}

/// Parses a `W@N` crash spec.
fn parse_crash(spec: &str) -> Option<CrashPoint> {
    let (w, n) = spec.split_once('@')?;
    Some(CrashPoint {
        worker: w.parse().ok()?,
        after_query_frames: n.parse().ok()?,
    })
}

fn main() -> ExitCode {
    let mut index: Option<u32> = None;
    let mut servers: Option<u32> = None;
    let mut listen = String::from("127.0.0.1:0");
    let mut r: Option<u8> = None;
    let mut seed: u64 = 0;
    let mut workers: Option<u32> = None;
    let mut capacity: usize = 64;
    let mut policy = ShardPolicy::default();
    let mut store = StoreBackend::from_env();
    let mut crash: Option<CrashPoint> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return usage(&format!("flag {flag} needs a value"));
        };
        let ok = match flag.as_str() {
            "--index" => value.parse().map(|v| index = Some(v)).is_ok(),
            "--servers" => value.parse().map(|v| servers = Some(v)).is_ok(),
            "--listen" => {
                listen = value;
                true
            }
            "--r" => value.parse().map(|v| r = Some(v)).is_ok(),
            "--seed" => value.parse().map(|v| seed = v).is_ok(),
            "--workers" => value.parse().map(|v| workers = Some(v)).is_ok(),
            "--capacity" => value.parse().map(|v| capacity = v).is_ok(),
            "--policy" => match ShardPolicy::parse(&value) {
                Some(p) => {
                    policy = p;
                    true
                }
                None => false,
            },
            "--store" => match StoreBackend::parse(&value) {
                Some(b) => {
                    store = b;
                    true
                }
                None => false,
            },
            "--crash" => {
                crash = parse_crash(&value);
                crash.is_some()
            }
            other => return usage(&format!("unknown flag {other}")),
        };
        if !ok {
            return usage(&format!("bad value for {flag}"));
        }
    }
    let (Some(index), Some(servers), Some(r), Some(workers)) = (index, servers, r, workers) else {
        return usage("--index, --servers, --r, and --workers are required");
    };
    if index >= servers {
        return usage("--index must be below --servers");
    }

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("hyperdex-server: bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = listener.local_addr().expect("bound socket has an address");
    println!("LISTENING {addr}");
    io::stdout().flush().ok();

    // One PEERS line from the launcher: every server's address.
    let mut line = String::new();
    if io::stdin().lock().read_line(&mut line).is_err() {
        return usage("could not read PEERS line from stdin");
    }
    let Some(rest) = line.trim_end().strip_prefix("PEERS ") else {
        return usage("expected a PEERS line on stdin");
    };
    let peer_addrs: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
    if peer_addrs.len() != servers as usize {
        return usage("PEERS line does not list every server");
    }

    let cfg = ServerConfig {
        index,
        servers,
        r,
        seed,
        total_workers: workers,
        capacity,
        policy,
        store,
        crash,
    };
    match server::run(cfg, listener, &peer_addrs) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hyperdex-server: {e}");
            ExitCode::FAILURE
        }
    }
}
