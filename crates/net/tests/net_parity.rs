//! Four-executor parity over real processes: the loopback cluster must
//! return result sets identical to the direct engine, the
//! message-level sim, and the threaded runtime — at workers ∈ {1,2,4}
//! and r ∈ {8,12}, including a cell where several shards share one
//! process — with the cross-process frame ledger balancing on every
//! shutdown. A final cell crashes a worker mid-run and checks the
//! supervised recovery path end to end over TCP.

use std::path::PathBuf;

use hyperdex_core::{KeywordSet, ObjectId};
use hyperdex_net::cluster::{Cluster, ClusterConfig};
use hyperdex_net::parity::{assert_net_parity, assert_net_parity_with};
use hyperdex_runtime::fault::CrashPoint;
use hyperdex_runtime::runtime::FtSearchOptions;
use hyperdex_runtime::ShardPolicy;
use hyperdex_workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

/// The server binary Cargo built alongside this test.
fn server_bin() -> Option<PathBuf> {
    Some(PathBuf::from(env!("CARGO_BIN_EXE_hyperdex-server")))
}

/// A generated corpus plus a query mix of broad, thresholded, and
/// definitely-missing sets — same recipe as the runtime parity suite,
/// sized down because each cell pays real process startup.
#[allow(clippy::type_complexity)]
fn workload(seed: u64, objects: usize) -> (Vec<(ObjectId, KeywordSet)>, Vec<(KeywordSet, usize)>) {
    let corpus = Corpus::generate(&CorpusConfig::pchome().with_objects(objects), seed);
    let log = QueryLog::generate(&QueryLogConfig::small_test(), &corpus, seed.wrapping_add(1));
    let entries: Vec<(ObjectId, KeywordSet)> = corpus
        .indexable()
        .map(|(id, kw)| (id, kw.clone()))
        .collect();
    let mut queries: Vec<(KeywordSet, usize)> = Vec::new();
    for kw in log.popular_of_size(1, 3) {
        queries.push((kw.clone(), usize::MAX - 1));
        queries.push((kw, 3));
    }
    for kw in log.popular_of_size(2, 3) {
        queries.push((kw, usize::MAX - 1));
    }
    queries.push((KeywordSet::parse("no such keyword anywhere").unwrap(), 10));
    (entries, queries)
}

#[test]
fn single_process_single_worker_matches_all_executors() {
    let (corpus, queries) = workload(42, 160);
    let report = assert_net_parity(8, 42, 1, 1, &corpus, &queries, server_bin());
    assert!(report.queries_checked >= 6, "query mix shrank");
    assert_eq!(report.shutdown.in_flight(), 0);
}

#[test]
fn two_processes_two_workers_match_at_r8_and_r12() {
    for (r, seed) in [(8u8, 42u64), (12, 7)] {
        let (corpus, queries) = workload(seed, 160);
        let report = assert_net_parity(r, seed, 2, 2, &corpus, &queries, server_bin());
        assert!(report.queries_checked >= 6);
        assert_eq!(report.shutdown.in_flight(), 0);
    }
}

#[test]
fn both_shard_policies_match_across_two_processes() {
    // The placement policy must be invisible to results over TCP too:
    // client, servers, and the in-process executors all agree on the
    // map, whichever one is configured.
    let (corpus, queries) = workload(7, 120);
    for policy in [ShardPolicy::Hash, ShardPolicy::Prefix] {
        let report = assert_net_parity_with(8, 7, 4, 2, policy, &corpus, &queries, server_bin());
        assert!(report.queries_checked >= 6);
        assert_eq!(report.shutdown.in_flight(), 0);
    }
}

#[test]
fn four_workers_across_two_processes_share_shards_per_process() {
    // workers > servers: two shards per process, so frames travel both
    // in-process channels and the TCP mesh within one run.
    let (corpus, queries) = workload(1234, 160);
    let report = assert_net_parity(12, 1234, 4, 2, &corpus, &queries, server_bin());
    assert!(report.queries_checked >= 6);
    assert_eq!(report.shutdown.in_flight(), 0);
}

#[test]
fn four_processes_four_workers_match_at_r8_and_r12() {
    for (r, seed) in [(8u8, 99u64), (12, 1234)] {
        let (corpus, queries) = workload(seed, 160);
        let report = assert_net_parity(r, seed, 4, 4, &corpus, &queries, server_bin());
        assert!(report.queries_checked >= 6);
        assert_eq!(report.shutdown.in_flight(), 0);
    }
}

#[test]
fn crashed_worker_recovers_over_tcp_and_the_ledger_still_balances() {
    let (corpus, queries) = workload(42, 120);
    let mut cfg = ClusterConfig::new(8, 42, 4, 2);
    cfg.server_bin = server_bin();
    // Worker 1 dies on its 3rd query-path frame; its server respawns
    // it, replays the journal, and releases it with RepairDone.
    cfg.crash = Some(CrashPoint {
        worker: 1,
        after_query_frames: 3,
    });
    let cluster = Cluster::launch(cfg).expect("cluster launch");
    let mut client = cluster.client().expect("client");
    for (object, keywords) in &corpus {
        client.insert(*object, keywords.clone()).expect("insert");
    }
    client.flush().expect("flush");

    let opts = FtSearchOptions::default();
    let mut answered = 0;
    for (keywords, _) in &queries {
        let out = client
            .superset_search_ft(keywords, usize::MAX - 1, &opts)
            .expect("ft search");
        if out.coverage.is_some() {
            answered += 1;
        }
    }
    assert!(answered > 0, "no FT query ever completed");

    let report = cluster.shutdown(client).expect("shutdown");
    report.assert_conserved();
    assert!(
        report.supervisor.respawns >= 1,
        "the scheduled crash never fired: {report:?}"
    );
    assert_eq!(report.in_flight(), 0);
}
