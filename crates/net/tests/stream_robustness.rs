//! Streaming-decoder robustness: every `WireMsg` variant through the
//! TCP frame decoder, split at every possible byte boundary, plus
//! corrupt tails. The contract: complete units decode byte-identically
//! no matter how the stream fragments, and malformed bytes surface as
//! typed errors — never a panic, never a silent loss.

use hyperdex_core::{KeywordSet, RecoveryStrategy};
use hyperdex_net::stream::{encode_unit, push_unit, StreamDecoder, CLIENT_DEST};
use hyperdex_runtime::wire::{WireError, WireMsg};

fn set(s: &str) -> KeywordSet {
    KeywordSet::parse(s).unwrap()
}

/// One representative of every `WireMsg` variant, with non-trivial
/// payloads (empty and non-empty vectors, `None` and `Some` dims).
fn all_variants() -> Vec<WireMsg> {
    vec![
        WireMsg::Insert {
            object: 17,
            keywords: set("alpha beta gamma"),
        },
        WireMsg::Query {
            query_id: 1,
            keywords: set("alpha"),
            threshold: 42,
        },
        WireMsg::TQuery {
            query_id: 2,
            bits: 0b1011,
            keywords: set("alpha beta"),
            remaining: 7,
            via_dim: None,
            coord: 3,
        },
        WireMsg::TQuery {
            query_id: 3,
            bits: u64::MAX >> 1,
            keywords: set("x"),
            remaining: 1,
            via_dim: Some(11),
            coord: 0,
        },
        WireMsg::TCont {
            query_id: 4,
            bits: 0,
            objects: vec![(9, 2), (10, 0)],
            children: vec![(0b111, 2), (0b101, 0)],
        },
        WireMsg::QueryDone {
            query_id: 5,
            objects: vec![],
        },
        WireMsg::Pin {
            query_id: 6,
            keywords: set("pin me down"),
        },
        WireMsg::PinResults {
            query_id: 7,
            objects: vec![1, 2, 3],
        },
        WireMsg::Handoff {
            bits: 0b1100,
            entries: vec![(set("a b"), vec![4, 5]), (set("c"), vec![])],
        },
        WireMsg::Flush { token: 8 },
        WireMsg::FlushAck {
            token: 8,
            worker: 2,
        },
        WireMsg::Shutdown,
        WireMsg::FtQuery {
            query_id: 9,
            keywords: set("fault tolerant"),
            threshold: u64::MAX,
            strategy: RecoveryStrategy::Redelegate,
            max_retries: 3,
            base_timeout_ms: 16,
        },
        WireMsg::FtQueryDone {
            query_id: 10,
            objects: vec![(11, 1)],
            subcube: 8,
            reached: 6,
            retries: 2,
            timeouts: 1,
            redelegations: 1,
            queries_sent: 9,
            conts: 6,
            result_messages: 3,
            skipped: vec![0b001, 0b100],
        },
        WireMsg::RepairDone { worker: 5 },
    ]
}

#[test]
fn every_variant_survives_every_split_point() {
    for (dest, msg) in all_variants().into_iter().enumerate() {
        let frame = msg.encode();
        let unit = encode_unit(dest as u32, &frame);
        for split in 0..=unit.len() {
            let mut dec = StreamDecoder::new();
            dec.push(&unit[..split]);
            if let Ok(Some(early)) = dec.next_unit() {
                assert_eq!(
                    split,
                    unit.len(),
                    "unit completed early at split {split} for {msg:?}"
                );
                assert_eq!(early.frame, frame);
                continue;
            }
            dec.push(&unit[split..]);
            let got = dec
                .next_unit()
                .expect("well-formed unit")
                .expect("complete after both halves");
            assert_eq!(got.dest, dest as u32, "dest mangled at split {split}");
            assert_eq!(got.frame, frame, "frame mangled at split {split}");
            assert_eq!(
                WireMsg::decode_exact(&got.frame).expect("decodable"),
                msg,
                "decode diverged at split {split}"
            );
            assert_eq!(dec.buffered(), 0, "leftover bytes at split {split}");
        }
    }
}

#[test]
fn whole_conversation_fed_one_byte_at_a_time() {
    let msgs = all_variants();
    let mut stream = Vec::new();
    for msg in &msgs {
        push_unit(&mut stream, CLIENT_DEST, &msg.encode());
    }
    let mut dec = StreamDecoder::new();
    let mut got = Vec::new();
    for byte in stream {
        dec.push(&[byte]);
        while let Some(unit) = dec.next_unit().expect("well-formed stream") {
            assert_eq!(unit.dest, CLIENT_DEST);
            got.push(WireMsg::decode_exact(&unit.frame).expect("decodable"));
        }
    }
    assert_eq!(got, msgs);
    assert_eq!(dec.buffered(), 0);
}

#[test]
fn trailing_garbage_inside_a_frame_is_a_typed_error() {
    // A unit whose header over-declares the body by one byte: the
    // decoder yields it (framing is consistent), but the frame decode
    // reports the surplus instead of panicking.
    for msg in all_variants() {
        let frame = msg.encode();
        let mut padded = frame.clone();
        padded.push(0xAA);
        let body_len = (padded.len() - 4) as u32;
        padded[..4].copy_from_slice(&body_len.to_le_bytes());
        let unit_bytes = encode_unit(0, &padded);
        let mut dec = StreamDecoder::new();
        dec.push(&unit_bytes);
        let unit = dec.next_unit().expect("framing intact").expect("complete");
        assert!(
            matches!(
                WireMsg::decode_exact(&unit.frame),
                Err(WireError::TrailingGarbage { extra: 1 })
            ),
            "padded {msg:?} did not report trailing garbage"
        );
    }
}

#[test]
fn garbage_headers_error_or_wait_but_never_panic() {
    // 257 pseudo-random byte soups: each either stalls (needs more
    // bytes), errors (oversized), or decodes units — whatever happens,
    // no panic and no infinite loop.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for round in 0..257 {
        let len = (round % 40) + 1;
        let mut soup = Vec::with_capacity(len);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            soup.push((state >> 33) as u8);
        }
        let mut dec = StreamDecoder::new();
        dec.push(&soup);
        for _ in 0..len + 1 {
            match dec.next_unit() {
                Ok(Some(unit)) => {
                    // Frame-level decode may fail; it must not panic.
                    let _ = WireMsg::decode_exact(&unit.frame);
                }
                Ok(None) => break,
                Err(WireError::Oversized { .. }) => break,
                Err(other) => panic!("unexpected decoder error: {other:?}"),
            }
        }
    }
}

#[test]
fn coalesced_multi_unit_packets_survive_every_split_point() {
    // One wire packet holding every variant back to back — exactly
    // what the accumulation buffer ships — split at every byte
    // boundary across two pushes.
    let msgs = all_variants();
    let mut packet = Vec::new();
    for (dest, msg) in msgs.iter().enumerate() {
        push_unit(&mut packet, dest as u32, &msg.encode());
    }
    for split in 0..=packet.len() {
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for half in [&packet[..split], &packet[split..]] {
            dec.push(half);
            while let Some(unit) = dec.next_unit().expect("well-formed packet") {
                assert_eq!(unit.dest, got.len() as u32, "dest order at split {split}");
                got.push(WireMsg::decode_exact(&unit.frame).expect("decodable"));
            }
        }
        assert_eq!(got, msgs, "unit set diverged at split {split}");
        assert_eq!(dec.buffered(), 0, "leftover bytes at split {split}");
    }
}

#[test]
fn pre_reservation_sizes_to_the_announced_unit_not_beyond() {
    // A torn unit whose header announces more than has arrived: the
    // decoder pre-reserves exactly the announced unit (so the body
    // trickling in never triggers incremental reallocation) and not a
    // byte-ballooning multiple of it.
    let big = WireMsg::PinResults {
        query_id: 1,
        objects: (0..20_000u64).collect(),
    };
    let frame = big.encode();
    let unit = encode_unit(CLIENT_DEST, &frame);
    let mut dec = StreamDecoder::new();
    // Header plus one body byte: enough to announce the full length.
    // The pre-reservation fires on the next write into the buffer.
    dec.push(&unit[..9]);
    assert!(dec.next_unit().expect("no error").is_none());
    let mut chunks = unit[9..].chunks(4096);
    dec.push(chunks.next().expect("body bytes"));
    let reserved = dec.capacity();
    assert!(
        reserved >= unit.len(),
        "decoder did not pre-reserve the announced unit ({reserved} < {})",
        unit.len()
    );
    assert!(
        reserved <= unit.len() * 2,
        "pre-reservation over-allocated: {reserved} bytes for a {}-byte unit",
        unit.len()
    );
    // Trickle the rest in; capacity must not grow past the
    // pre-reservation (that would mean incremental reallocs).
    for chunk in chunks {
        dec.push(chunk);
        assert_eq!(dec.capacity(), reserved, "decoder reallocated mid-unit");
    }
    let got = dec.next_unit().expect("well-formed").expect("complete");
    assert_eq!(got.frame, frame);
}

#[test]
fn oversized_header_does_not_trigger_pre_reservation() {
    // A corrupt header announcing an absurd body must surface as a
    // typed error without the decoder reserving memory for it.
    let mut bad = 0u32.to_le_bytes().to_vec();
    bad.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut dec = StreamDecoder::new();
    dec.push(&bad);
    assert!(
        dec.capacity() < 1024 * 1024,
        "decoder reserved {} bytes for a corrupt header",
        dec.capacity()
    );
    assert!(matches!(dec.next_unit(), Err(WireError::Oversized { .. })));
}

#[test]
fn fill_from_reads_straight_into_the_decoder() {
    // The batched read path: a reader-style loop over an in-memory
    // stream must yield the same units as push(), including across
    // unit boundaries that land mid-read.
    let msgs = all_variants();
    let mut stream = Vec::new();
    for msg in &msgs {
        push_unit(&mut stream, CLIENT_DEST, &msg.encode());
    }
    let mut cursor = std::io::Cursor::new(stream);
    let mut dec = StreamDecoder::new();
    let mut got = Vec::new();
    loop {
        let n = dec.fill_from(&mut cursor).expect("in-memory read");
        if n == 0 {
            break;
        }
        while let Some(unit) = dec.next_unit().expect("well-formed stream") {
            got.push(WireMsg::decode_exact(&unit.frame).expect("decodable"));
        }
    }
    assert_eq!(got, msgs);
    assert_eq!(dec.buffered(), 0);
}
