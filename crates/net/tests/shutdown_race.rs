//! Shutdown racing the batched wire path: frames parked in
//! accumulation buffers, writer queues, and writer-thread batches must
//! all reach their destination (or be counted drained) before the
//! conservation report is printed — `assert_conserved` is the judge.
//!
//! The in-process fabric proved this law per worker; these cells prove
//! it across process boundaries with the adaptive batching layer in
//! between: a burst of inserts immediately followed by `Shutdown` (no
//! flush barrier) leaves every accumulation stage as full as the
//! protocol can make it at the moment the shutdown frames arrive.

use std::path::PathBuf;

use hyperdex_core::{KeywordSet, ObjectId};
use hyperdex_net::cluster::{Cluster, ClusterConfig};
use hyperdex_workload::{Corpus, CorpusConfig};

/// The server binary Cargo built alongside this test.
fn server_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_hyperdex-server"))
}

/// Inserts `objects` entries and shuts down with no flush in between,
/// so shutdown frames race whatever the wire path still holds.
fn burst_then_shutdown(r: u8, seed: u64, workers: u32, servers: u32, objects: usize) {
    let corpus = Corpus::generate(&CorpusConfig::pchome().with_objects(objects), seed);
    let entries: Vec<(ObjectId, KeywordSet)> = corpus
        .indexable()
        .map(|(id, kw)| (id, kw.clone()))
        .collect();
    let mut cfg = ClusterConfig::new(r, seed, workers, servers);
    cfg.server_bin = Some(server_bin());
    let cluster = Cluster::launch(cfg).expect("cluster launch");
    let mut client = cluster.client().expect("cluster client");
    for (id, kw) in &entries {
        client.insert(*id, kw.clone()).expect("insert");
    }
    // No flush: the burst is still in flight — in inboxes, accumulation
    // buffers, writer queues, or kernel socket buffers — when the
    // shutdown frames chase it down the same connections.
    let report = cluster.shutdown(client).expect("cluster shutdown");
    report.assert_conserved();
    assert_eq!(report.in_flight(), 0, "frames left dangling after shutdown");
}

#[test]
fn shutdown_races_a_full_accumulation_buffer_without_losing_frames() {
    // Two processes: every cross-shard insert crosses TCP through the
    // accumulation path; 600 objects is comfortably past the 32 KiB
    // watermark several times over.
    burst_then_shutdown(8, 42, 2, 2, 600);
}

#[test]
fn shutdown_race_survives_multiple_shards_per_process() {
    // Four shards on two processes: co-located channel flushes and
    // remote accumulation interleave in the same transport.
    burst_then_shutdown(8, 7, 4, 2, 400);
}

#[test]
fn repeated_shutdown_races_stay_conserved() {
    // The race is timing-dependent; a few differently-seeded rounds
    // make a regression in the drain-before-exit path loud.
    for seed in [1u64, 2, 3] {
        burst_then_shutdown(8, seed, 2, 2, 250);
    }
}
