//! Client-side failure semantics against scripted fake servers: a
//! deadline that expires yields [`Error::Timeout`], a dead connection
//! is re-dialed with exponential backoff, and an unreachable server
//! surfaces as [`Error::ConnectionLost`] — typed errors, never panics.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use hyperdex_core::{Error, KeywordSet};
use hyperdex_net::client::{NetClient, NetConfig};
use hyperdex_net::stream::{encode_unit, StreamDecoder, CLIENT_DEST};
use hyperdex_runtime::wire::WireMsg;

fn quick_cfg() -> NetConfig {
    NetConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_millis(150),
        reconnect_attempts: 3,
        reconnect_backoff: Duration::from_millis(10),
    }
}

/// Reads the 4-byte client hello off a fresh connection.
fn read_hello(stream: &mut TcpStream) -> u32 {
    let mut hello = [0u8; 4];
    stream.read_exact(&mut hello).expect("client hello");
    u32::from_le_bytes(hello)
}

#[test]
fn silent_server_times_out_with_the_configured_deadline() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    // A server that accepts, consumes everything, and never answers.
    // Detached: the client's reader keeps the socket alive past drop,
    // so this thread only exits with the test process.
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        assert_eq!(read_hello(&mut stream), CLIENT_DEST);
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    });

    let mut client = NetClient::connect(&[addr], 8, 42, 1, quick_cfg()).expect("connect");
    let started = Instant::now();
    let err = client
        .pin_search(&KeywordSet::parse("any keywords").unwrap())
        .expect_err("no reply ever comes");
    match err {
        Error::Timeout {
            operation,
            after_ms,
        } => {
            assert_eq!(after_ms, 150, "deadline must echo the configured timeout");
            assert!(
                operation.contains("pin"),
                "operation names the request: {operation}"
            );
        }
        other => panic!("expected Timeout, got {other}"),
    }
    assert!(
        started.elapsed() >= Duration::from_millis(150),
        "returned before the deadline"
    );
}

#[test]
fn dropped_connection_is_redialed_and_the_request_succeeds() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let (port_done_tx, port_done_rx) = channel::<()>();
    // A server that slams the first connection shut, then serves the
    // second one properly: one pin request, one canned reply.
    let flaky = std::thread::spawn(move || {
        let (mut first, _) = listener.accept().unwrap();
        assert_eq!(read_hello(&mut first), CLIENT_DEST);
        drop(first);

        let (mut second, _) = listener.accept().unwrap();
        assert_eq!(read_hello(&mut second), CLIENT_DEST);
        let mut dec = StreamDecoder::new();
        let mut chunk = [0u8; 4096];
        loop {
            let n = second.read(&mut chunk).expect("request bytes");
            assert!(n > 0, "client hung up before asking");
            dec.push(&chunk[..n]);
            if let Some(unit) = dec.next_unit().expect("well-formed") {
                let WireMsg::Pin { query_id, .. } =
                    WireMsg::decode_exact(&unit.frame).expect("a pin request")
                else {
                    panic!("expected a pin request");
                };
                let reply = WireMsg::PinResults {
                    query_id,
                    objects: vec![7],
                };
                second
                    .write_all(&encode_unit(CLIENT_DEST, &reply.encode()))
                    .expect("reply");
                break;
            }
        }
        // Hold the socket open until the client has read the reply.
        port_done_rx.recv().ok();
    });

    let mut client = NetClient::connect(&[addr], 8, 42, 1, quick_cfg()).expect("connect");
    // Give the reader thread time to observe the hangup.
    std::thread::sleep(Duration::from_millis(50));
    let objects = client
        .pin_search(&KeywordSet::parse("resilient lookup").unwrap())
        .expect("reconnect transparently and complete");
    assert_eq!(objects.len(), 1);
    port_done_tx.send(()).ok();
    drop(client);
    flaky.join().unwrap();
}

#[test]
fn unreachable_server_exhausts_the_reconnect_budget() {
    // Bind then drop: the port is (briefly) known-dead.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);

    let started = Instant::now();
    let Err(err) = NetClient::connect(std::slice::from_ref(&addr), 8, 42, 1, quick_cfg()) else {
        panic!("nobody is listening, connect must fail");
    };
    match err {
        Error::ConnectionLost { endpoint, .. } => assert_eq!(endpoint, addr),
        other => panic!("expected ConnectionLost, got {other}"),
    }
    // connect() itself does not retry; it must fail fast.
    assert!(started.elapsed() < Duration::from_secs(2));
}

#[test]
fn mid_session_loss_gives_up_after_backoff_and_names_the_endpoint() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let gone = std::thread::spawn({
        let listener = listener.try_clone().unwrap();
        move || {
            let (mut stream, _) = listener.accept().unwrap();
            assert_eq!(read_hello(&mut stream), CLIENT_DEST);
            drop(stream);
        }
    });
    let mut client =
        NetClient::connect(std::slice::from_ref(&addr), 8, 42, 1, quick_cfg()).expect("connect");
    gone.join().unwrap();
    drop(listener); // now the port is dead for reconnects too
    std::thread::sleep(Duration::from_millis(50));

    let started = Instant::now();
    let err = client
        .pin_search(&KeywordSet::parse("anyone there").unwrap())
        .expect_err("server is gone for good");
    let elapsed = started.elapsed();
    match err {
        Error::ConnectionLost { endpoint, detail } => {
            assert_eq!(endpoint, addr);
            assert!(
                detail.contains("gave up after 3 attempts"),
                "detail documents the budget: {detail}"
            );
        }
        other => panic!("expected ConnectionLost, got {other}"),
    }
    // Exponential backoff: attempt, 10ms, attempt, 20ms, attempt.
    assert!(
        elapsed >= Duration::from_millis(30),
        "reconnect returned too fast for its backoff schedule ({elapsed:?})"
    );
}
