//! Client-side failure semantics against scripted fake servers: a
//! deadline that expires yields [`Error::Timeout`], a dead connection
//! is re-dialed with exponential backoff, and an unreachable server
//! surfaces as [`Error::ConnectionLost`] — typed errors, never panics.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use hyperdex_core::{Error, KeywordSet};
use hyperdex_net::client::{NetClient, NetConfig};
use hyperdex_net::stream::{encode_unit, StreamDecoder, CLIENT_DEST};
use hyperdex_runtime::runtime::FtSearchOptions;
use hyperdex_runtime::wire::WireMsg;

fn quick_cfg() -> NetConfig {
    NetConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_millis(150),
        reconnect_attempts: 3,
        reconnect_backoff: Duration::from_millis(10),
        window: 8,
    }
}

/// A canned successful completion for FT query `query_id`, carrying
/// `objects` as its matches.
fn ft_done(query_id: u64, objects: Vec<(u64, u32)>) -> WireMsg {
    WireMsg::FtQueryDone {
        query_id,
        objects,
        subcube: 1,
        reached: 1,
        retries: 0,
        timeouts: 0,
        redelegations: 0,
        queries_sent: 1,
        conts: 1,
        result_messages: 1,
        skipped: Vec::new(),
    }
}

/// Reads the 4-byte client hello off a fresh connection.
fn read_hello(stream: &mut TcpStream) -> u32 {
    let mut hello = [0u8; 4];
    stream.read_exact(&mut hello).expect("client hello");
    u32::from_le_bytes(hello)
}

#[test]
fn silent_server_times_out_with_the_configured_deadline() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    // A server that accepts, consumes everything, and never answers.
    // Detached: the client's reader keeps the socket alive past drop,
    // so this thread only exits with the test process.
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        assert_eq!(read_hello(&mut stream), CLIENT_DEST);
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    });

    let mut client = NetClient::connect(&[addr], 8, 42, 1, quick_cfg()).expect("connect");
    let started = Instant::now();
    let err = client
        .pin_search(&KeywordSet::parse("any keywords").unwrap())
        .expect_err("no reply ever comes");
    match err {
        Error::Timeout {
            operation,
            after_ms,
        } => {
            assert_eq!(after_ms, 150, "deadline must echo the configured timeout");
            assert!(
                operation.contains("pin"),
                "operation names the request: {operation}"
            );
        }
        other => panic!("expected Timeout, got {other}"),
    }
    assert!(
        started.elapsed() >= Duration::from_millis(150),
        "returned before the deadline"
    );
}

#[test]
fn dropped_connection_is_redialed_and_the_request_succeeds() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let (port_done_tx, port_done_rx) = channel::<()>();
    // A server that slams the first connection shut, then serves the
    // second one properly: one pin request, one canned reply.
    let flaky = std::thread::spawn(move || {
        let (mut first, _) = listener.accept().unwrap();
        assert_eq!(read_hello(&mut first), CLIENT_DEST);
        drop(first);

        let (mut second, _) = listener.accept().unwrap();
        assert_eq!(read_hello(&mut second), CLIENT_DEST);
        let mut dec = StreamDecoder::new();
        let mut chunk = [0u8; 4096];
        loop {
            let n = second.read(&mut chunk).expect("request bytes");
            assert!(n > 0, "client hung up before asking");
            dec.push(&chunk[..n]);
            if let Some(unit) = dec.next_unit().expect("well-formed") {
                let WireMsg::Pin { query_id, .. } =
                    WireMsg::decode_exact(&unit.frame).expect("a pin request")
                else {
                    panic!("expected a pin request");
                };
                let reply = WireMsg::PinResults {
                    query_id,
                    objects: vec![7],
                };
                second
                    .write_all(&encode_unit(CLIENT_DEST, &reply.encode()))
                    .expect("reply");
                break;
            }
        }
        // Hold the socket open until the client has read the reply.
        port_done_rx.recv().ok();
    });

    let mut client = NetClient::connect(&[addr], 8, 42, 1, quick_cfg()).expect("connect");
    // Give the reader thread time to observe the hangup.
    std::thread::sleep(Duration::from_millis(50));
    let objects = client
        .pin_search(&KeywordSet::parse("resilient lookup").unwrap())
        .expect("reconnect transparently and complete");
    assert_eq!(objects.len(), 1);
    port_done_tx.send(()).ok();
    drop(client);
    flaky.join().unwrap();
}

#[test]
fn unreachable_server_exhausts_the_reconnect_budget() {
    // Bind then drop: the port is (briefly) known-dead.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);

    let started = Instant::now();
    let Err(err) = NetClient::connect(std::slice::from_ref(&addr), 8, 42, 1, quick_cfg()) else {
        panic!("nobody is listening, connect must fail");
    };
    match err {
        Error::ConnectionLost { endpoint, .. } => assert_eq!(endpoint, addr),
        other => panic!("expected ConnectionLost, got {other}"),
    }
    // connect() itself does not retry; it must fail fast.
    assert!(started.elapsed() < Duration::from_secs(2));
}

#[test]
fn mid_session_loss_gives_up_after_backoff_and_names_the_endpoint() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let gone = std::thread::spawn({
        let listener = listener.try_clone().unwrap();
        move || {
            let (mut stream, _) = listener.accept().unwrap();
            assert_eq!(read_hello(&mut stream), CLIENT_DEST);
            drop(stream);
        }
    });
    let mut client =
        NetClient::connect(std::slice::from_ref(&addr), 8, 42, 1, quick_cfg()).expect("connect");
    gone.join().unwrap();
    drop(listener); // now the port is dead for reconnects too
    std::thread::sleep(Duration::from_millis(50));

    let started = Instant::now();
    let err = client
        .pin_search(&KeywordSet::parse("anyone there").unwrap())
        .expect_err("server is gone for good");
    let elapsed = started.elapsed();
    match err {
        Error::ConnectionLost { endpoint, detail } => {
            assert_eq!(endpoint, addr);
            assert!(
                detail.contains("gave up after 3 attempts"),
                "detail documents the budget: {detail}"
            );
        }
        other => panic!("expected ConnectionLost, got {other}"),
    }
    // Exponential backoff: attempt, 10ms, attempt, 20ms, attempt.
    assert!(
        elapsed >= Duration::from_millis(30),
        "reconnect returned too fast for its backoff schedule ({elapsed:?})"
    );
}

/// Reads units off `stream` until `n` FT queries have arrived,
/// returning `(query_id, keywords)` in arrival order. Non-FT frames
/// are a protocol bug.
fn read_ft_queries(
    stream: &mut TcpStream,
    dec: &mut StreamDecoder,
    n: usize,
) -> Vec<(u64, KeywordSet)> {
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    while out.len() < n {
        if let Some(unit) = dec.next_unit().expect("well-formed stream") {
            match WireMsg::decode_exact(&unit.frame).expect("decodable frame") {
                WireMsg::FtQuery {
                    query_id, keywords, ..
                } => out.push((query_id, keywords)),
                other => panic!("expected an FT query, got {other:?}"),
            }
            continue;
        }
        let got = stream.read(&mut chunk).expect("request bytes");
        assert!(got > 0, "client hung up before sending {n} queries");
        dec.push(&chunk[..got]);
    }
    out
}

#[test]
fn windowed_ft_batch_matches_out_of_order_completions_by_id() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let (done_tx, done_rx) = channel::<()>();
    // All three queries arrive in one window; replies come back in
    // reverse order, each tagged with its query id as the object.
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        assert_eq!(read_hello(&mut stream), CLIENT_DEST);
        let mut dec = StreamDecoder::new();
        let queries = read_ft_queries(&mut stream, &mut dec, 3);
        for (id, _) in queries.iter().rev() {
            stream
                .write_all(&encode_unit(
                    CLIENT_DEST,
                    &ft_done(*id, vec![(*id, 0)]).encode(),
                ))
                .expect("reply");
        }
        // Hold the socket open until the client has read everything;
        // waiting for EOF instead would deadlock — the client's reader
        // thread keeps its socket clone alive past drop(client).
        done_rx.recv().ok();
    });

    let mut client = NetClient::connect(&[addr], 8, 42, 1, quick_cfg()).expect("connect");
    let queries: Vec<KeywordSet> = ["alpha one", "beta two", "gamma three"]
        .iter()
        .map(|q| KeywordSet::parse(q).unwrap())
        .collect();
    let outcomes = client
        .superset_search_ft_batch(&queries, 16, &FtSearchOptions::default())
        .expect("batch completes");
    assert_eq!(outcomes.len(), 3);
    // Ids were issued in request order (1, 2, 3); despite reversed
    // replies each outcome holds its own search's result.
    for (slot, outcome) in outcomes.iter().enumerate() {
        assert!(outcome.complete, "slot {slot} complete");
        assert_eq!(outcome.attempts, 1, "slot {slot} first try");
        assert_eq!(outcome.matches.len(), 1);
        assert_eq!(outcome.matches[0].object.raw(), slot as u64 + 1);
    }
    done_tx.send(()).ok();
    drop(client);
    server.join().unwrap();
}

#[test]
fn one_search_timing_out_does_not_stall_the_rest_of_the_window() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let doomed = KeywordSet::parse("doomed query").unwrap();
    let (done_tx, done_rx) = channel::<()>();
    // Answers everything except the doomed query; its re-issues pile
    // up unread in the socket buffer and are never acknowledged.
    let server = std::thread::spawn({
        let doomed = doomed.clone();
        move || {
            let (mut stream, _) = listener.accept().unwrap();
            assert_eq!(read_hello(&mut stream), CLIENT_DEST);
            let mut dec = StreamDecoder::new();
            let mut answered = 0;
            while answered < 2 {
                for (id, keywords) in read_ft_queries(&mut stream, &mut dec, 1) {
                    if keywords == doomed {
                        continue;
                    }
                    stream
                        .write_all(&encode_unit(
                            CLIENT_DEST,
                            &ft_done(id, vec![(id, 0)]).encode(),
                        ))
                        .expect("reply");
                    answered += 1;
                }
            }
            // Keep the connection open (so re-issues don't trip the
            // reconnect path) until the client has degraded the doomed
            // search and finished its batch.
            done_rx.recv().ok();
        }
    });

    let mut client = NetClient::connect(&[addr], 8, 42, 1, quick_cfg()).expect("connect");
    let queries = vec![
        KeywordSet::parse("healthy one").unwrap(),
        doomed,
        KeywordSet::parse("healthy two").unwrap(),
    ];
    let opts = FtSearchOptions {
        attempts: 2,
        attempt_timeout_ms: 150,
        ..FtSearchOptions::default()
    };
    let outcomes = client
        .superset_search_ft_batch(&queries, 16, &opts)
        .expect("batch completes despite the black hole");
    assert!(
        outcomes[0].complete && outcomes[2].complete,
        "healthy searches succeed"
    );
    assert_eq!(outcomes[0].matches.len(), 1);
    assert_eq!(outcomes[2].matches.len(), 1);
    // The doomed search degrades honestly after its attempt budget.
    assert!(!outcomes[1].complete);
    assert_eq!(outcomes[1].attempts, 2);
    assert!(outcomes[1].matches.is_empty());
    assert!(outcomes[1].coverage.is_none(), "nobody ever answered");
    done_tx.send(()).ok();
    drop(client);
    server.join().unwrap();
}

#[test]
fn reconnect_mid_window_reissues_on_the_fresh_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let (done_tx, done_rx) = channel::<()>();
    // First connection: answer two of three queries, then drop the
    // socket. The client must reconnect and re-issue the third.
    let server = std::thread::spawn(move || {
        let (mut first, _) = listener.accept().unwrap();
        assert_eq!(read_hello(&mut first), CLIENT_DEST);
        let mut dec = StreamDecoder::new();
        let queries = read_ft_queries(&mut first, &mut dec, 3);
        for (id, _) in &queries[..2] {
            first
                .write_all(&encode_unit(
                    CLIENT_DEST,
                    &ft_done(*id, vec![(*id, 0)]).encode(),
                ))
                .expect("reply");
        }
        // Let the replies land before the hangup.
        std::thread::sleep(Duration::from_millis(50));
        drop(first);

        let (mut second, _) = listener.accept().unwrap();
        assert_eq!(read_hello(&mut second), CLIENT_DEST);
        let mut dec = StreamDecoder::new();
        let reissued = read_ft_queries(&mut second, &mut dec, 1);
        let (id, keywords) = &reissued[0];
        assert_eq!(*keywords, queries[2].1, "the unanswered search re-issues");
        second
            .write_all(&encode_unit(
                CLIENT_DEST,
                &ft_done(*id, vec![(*id, 0)]).encode(),
            ))
            .expect("reply");
        // Hold the fresh socket open until the client is done.
        done_rx.recv().ok();
    });

    let mut client = NetClient::connect(&[addr], 8, 42, 1, quick_cfg()).expect("connect");
    let queries: Vec<KeywordSet> = ["first fine", "second fine", "third dropped"]
        .iter()
        .map(|q| KeywordSet::parse(q).unwrap())
        .collect();
    let opts = FtSearchOptions {
        attempts: 3,
        attempt_timeout_ms: 300,
        ..FtSearchOptions::default()
    };
    let outcomes = client
        .superset_search_ft_batch(&queries, 16, &opts)
        .expect("window survives the reconnect");
    assert!(outcomes.iter().all(|o| o.complete), "all three complete");
    assert_eq!(outcomes[0].attempts, 1);
    assert_eq!(outcomes[1].attempts, 1);
    assert_eq!(
        outcomes[2].attempts, 2,
        "the dropped search consumed a re-issue"
    );
    done_tx.send(()).ok();
    drop(client);
    server.join().unwrap();
}
