//! Message-level protocol benchmarks: what a whole search costs to
//! *simulate* (event-loop throughput), and the simulated-latency gap
//! between sequential and level-parallel execution.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use hyperdex_core::sim_protocol::ProtocolSim;
use hyperdex_core::{KeywordSet, ObjectId};
use hyperdex_simnet::latency::LatencyModel;

fn build_sim(r: u8) -> ProtocolSim {
    let mut sim = ProtocolSim::new(r, 0, LatencyModel::constant(1)).expect("valid");
    for i in 0..2_000u64 {
        sim.insert(
            ObjectId::from_raw(i),
            KeywordSet::parse(&format!("shared tag{} group{}", i % 300, i % 11)).expect("valid"),
        )
        .expect("non-empty");
    }
    sim
}

fn protocol_search(c: &mut Criterion) {
    let query = KeywordSet::parse("shared").expect("valid");
    c.bench_function("protocol/sequential_full_r10", |b| {
        let mut sim = build_sim(10);
        b.iter(|| {
            sim.search_sequential(black_box(&query), usize::MAX - 1)
                .expect("valid")
                .nodes_contacted
        })
    });
    c.bench_function("protocol/parallel_full_r10", |b| {
        let mut sim = build_sim(10);
        b.iter(|| {
            sim.search_parallel(black_box(&query), usize::MAX - 1)
                .expect("valid")
                .nodes_contacted
        })
    });
    c.bench_function("protocol/sequential_threshold_10", |b| {
        let mut sim = build_sim(10);
        b.iter(|| {
            sim.search_sequential(black_box(&query), 10)
                .expect("valid")
                .results
                .len()
        })
    });
}

criterion_group!(benches, protocol_search);
criterion_main!(benches);
