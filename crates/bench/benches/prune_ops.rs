//! Micro-benchmarks for occupancy-guided pruning: SBT child
//! enumeration, summary maintenance, and the pruned level traversal
//! against the full (unpruned) walk it replaces.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperdex_core::summary::{pruned_levels, OccupancySummary};
use hyperdex_hypercube::{Sbt, Shape, Vertex};

const R: u8 = 12;

fn root(shape: Shape) -> Vertex {
    // 2 ones → a 1024-vertex induced subcube, the prune sweep's regime.
    Vertex::from_bits(shape, 0b1000_0000_0100).expect("valid")
}

/// A summary with `occupied` pseudo-random leaves of the `2^R` cube.
fn populated_summary(occupied: u64) -> OccupancySummary {
    let mut summary = OccupancySummary::new(R);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..occupied {
        // SplitMix64 step: deterministic, well-spread leaf choices.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        summary.record_insert((z ^ (z >> 31)) & ((1 << R) - 1));
    }
    summary
}

fn sbt_child_enumeration(c: &mut Criterion) {
    let shape = Shape::new(R).expect("valid");
    let sbt = Sbt::induced(root(shape));

    c.bench_function("prune/sbt_children_full_walk", |b| {
        b.iter(|| {
            let mut edges = 0u64;
            for (v, _) in black_box(&sbt).bfs() {
                edges += sbt.children(v).count() as u64;
            }
            edges
        })
    });
}

fn summary_maintenance(c: &mut Criterion) {
    c.bench_function("prune/summary_insert_remove_cycle", |b| {
        let mut summary = populated_summary(1_000);
        b.iter(|| {
            summary.record_insert(black_box(0b1010_0100_0001));
            summary.record_remove(black_box(0b1010_0100_0001));
            summary.total_objects()
        })
    });

    c.bench_function("prune/summary_can_prune_probe", |b| {
        let summary = populated_summary(1_000);
        b.iter(|| summary.can_prune(black_box(0b1000_0000_0101), 2, 0b1000_0000_0100))
    });
}

fn pruned_traversal(c: &mut Criterion) {
    let shape = Shape::new(R).expect("valid");
    let root = root(shape);
    let sbt = Sbt::induced(root);

    let mut group = c.benchmark_group("prune/levels");
    group.bench_with_input(
        BenchmarkId::from_parameter("unpruned_1024"),
        &sbt,
        |b, sbt| {
            b.iter(|| {
                (0..=black_box(sbt).height())
                    .map(|d| sbt.level(d).count())
                    .sum::<usize>()
            })
        },
    );
    for occupied in [0u64, 64, 1_024] {
        let summary = populated_summary(occupied);
        group.bench_with_input(
            BenchmarkId::new("pruned", occupied),
            &summary,
            |b, summary| {
                b.iter(|| {
                    let (levels, cut) = pruned_levels(black_box(summary), black_box(root));
                    (levels.iter().map(Vec::len).sum::<usize>(), cut)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    sbt_child_enumeration,
    summary_maintenance,
    pruned_traversal
);
criterion_main!(benches);
