//! Search-operation benchmarks: pin search is O(1) lookups; superset
//! search cost scales with `2^{r−|One(F_h(K))|}` (§3.5); caching turns
//! repeated queries into root-only work.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperdex_core::{HypercubeIndex, KeywordSet, SupersetQuery};
use hyperdex_workload::{Corpus, CorpusConfig};

fn build_index(r: u8) -> (HypercubeIndex, Corpus) {
    let corpus = Corpus::generate(&CorpusConfig::small_test(), 17);
    let mut index = HypercubeIndex::new(r, 0).expect("valid");
    for (id, keywords) in corpus.indexable() {
        index.insert(id, keywords.clone()).expect("non-empty");
    }
    (index, corpus)
}

fn pin_search(c: &mut Criterion) {
    let (index, corpus) = build_index(10);
    let query = corpus.records()[0].keywords.clone();
    c.bench_function("search/pin", |b| {
        b.iter(|| index.pin_search(black_box(&query)).results.len())
    });
}

fn superset_search(c: &mut Criterion) {
    let (index, _corpus) = build_index(10);
    let mut group = c.benchmark_group("search/superset_exhaustive");
    for m in [1usize, 2, 3] {
        // m popular keywords: kw000000, kw000001, ...
        let words: Vec<String> = (0..m).map(|i| format!("kw{i:06}")).collect();
        let query = KeywordSet::from_strs(&words).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(m), &query, |b, q| {
            let mut idx = index.clone();
            b.iter(|| {
                idx.superset_search(&SupersetQuery::new(black_box(q).clone()).use_cache(false))
                    .expect("valid")
                    .stats
                    .nodes_contacted
            })
        });
    }
    group.finish();
}

fn superset_threshold(c: &mut Criterion) {
    let (index, _corpus) = build_index(10);
    let query = KeywordSet::parse("kw000000").expect("valid");
    let mut group = c.benchmark_group("search/superset_threshold");
    for t in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let mut idx = index.clone();
            b.iter(|| {
                idx.superset_search(
                    &SupersetQuery::new(black_box(&query).clone())
                        .threshold(t)
                        .use_cache(false),
                )
                .expect("valid")
                .results
                .len()
            })
        });
    }
    group.finish();
}

fn cached_repeat(c: &mut Criterion) {
    let (mut index, _corpus) = build_index(10);
    index.set_cache_capacity(64);
    let query = KeywordSet::parse("kw000000").expect("valid");
    // Warm the cache once.
    index
        .superset_search(&SupersetQuery::new(query.clone()))
        .expect("valid");
    c.bench_function("search/superset_cached_hit", |b| {
        b.iter(|| {
            index
                .superset_search(&SupersetQuery::new(black_box(&query).clone()))
                .expect("valid")
                .stats
                .cache_hit
        })
    });
}

criterion_group!(
    benches,
    pin_search,
    superset_search,
    superset_threshold,
    cached_repeat
);
criterion_main!(benches);
