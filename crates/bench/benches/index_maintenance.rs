//! Index-maintenance benchmarks: the paper's single-lookup insert and
//! delete versus the distributed inverted index's k lookups (§3.4,
//! third remark).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use hyperdex_core::baseline::DistributedInvertedIndex;
use hyperdex_core::{HypercubeIndex, ObjectId};
use hyperdex_workload::{Corpus, CorpusConfig};

fn insert_delete(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig::small_test(), 23);
    let records: Vec<_> = corpus.records().iter().take(500).collect();

    c.bench_function("maintain/hypercube_insert_remove", |b| {
        let mut index = HypercubeIndex::new(10, 0).expect("valid");
        b.iter(|| {
            for r in &records {
                index
                    .insert(black_box(r.object_id()), r.keywords.clone())
                    .expect("non-empty");
            }
            for r in &records {
                index.remove(r.object_id(), &r.keywords);
            }
        })
    });

    c.bench_function("maintain/dii_insert_remove", |b| {
        let mut dii = DistributedInvertedIndex::new(10, 0).expect("valid");
        b.iter(|| {
            for r in &records {
                dii.insert(black_box(r.object_id()), &r.keywords);
            }
            for r in &records {
                dii.remove(r.object_id(), &r.keywords);
            }
        })
    });
}

fn hashing(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig::small_test(), 29);
    let hasher = hyperdex_core::KeywordHasher::new(12, 0).expect("valid");
    let sets: Vec<_> = corpus
        .records()
        .iter()
        .take(200)
        .map(|r| r.keywords.clone())
        .collect();
    c.bench_function("maintain/vertex_for_200_sets", |b| {
        b.iter(|| {
            sets.iter()
                .map(|k| hasher.vertex_for(black_box(k)).bits())
                .sum::<u64>()
        })
    });
    let _ = ObjectId::from_raw(0);
}

criterion_group!(benches, insert_delete, hashing);
criterion_main!(benches);
