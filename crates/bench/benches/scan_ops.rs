//! Micro-benchmarks for the per-node scan hot path: the signature
//! prefilter against the unfiltered string-compare scan it
//! short-circuits, pin lookups through the table-wide digest, and
//! interned vs. fresh-allocation inserts.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperdex_core::{IndexTable, KeywordInterner, KeywordSet, ObjectId};

/// Deterministic keyword pool; 200 words over 64 signature bits, so
/// the prefilter sees real collisions.
fn pool() -> Vec<String> {
    (0..200).map(|i| format!("kw{i}")).collect()
}

/// A table of `n` objects, each under a 2–4 keyword set drawn from the
/// pool by a SplitMix64 walk.
fn populated_table(n: u64) -> IndexTable {
    let pool = pool();
    let mut table = IndexTable::new();
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut step = move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for id in 0..n {
        let len = 2 + (step() % 3) as usize;
        let words: Vec<&str> = (0..len)
            .map(|_| pool[(step() % pool.len() as u64) as usize].as_str())
            .collect();
        let k = KeywordSet::parse(&words.join(" ")).expect("valid");
        table.insert(k, ObjectId::from_raw(id));
    }
    table
}

fn superset_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan/superset");
    for n in [256u64, 2_048] {
        let table = populated_table(n);
        // A query matching a small fraction of entries: the prefilter's
        // best case is rejecting the rest without string compares.
        let query = KeywordSet::parse("kw3 kw7").expect("valid");
        group.bench_with_input(BenchmarkId::new("unfiltered", n), &table, |b, table| {
            b.iter(|| {
                table
                    .superset_entries_unfiltered(black_box(&query))
                    .map(|(_, objs)| objs.count())
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("masked", n), &table, |b, table| {
            b.iter(|| {
                table
                    .superset_entries(black_box(&query))
                    .map(|(_, objs)| objs.count())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn pin_lookup(c: &mut Criterion) {
    let table = populated_table(2_048);
    let hit = table
        .iter()
        .map(|(k, _)| KeywordSet::clone(k))
        .next()
        .expect("non-empty");
    let miss = KeywordSet::parse("kw1 kw2 absent").expect("valid");

    c.bench_function("scan/pin_hit", |b| {
        b.iter(|| table.objects_with(black_box(&hit)).count())
    });
    // The miss carries a signature bit no entry has: the table-wide
    // digest rejects it before the tree walk.
    c.bench_function("scan/pin_miss_digest_rejected", |b| {
        b.iter(|| table.objects_with(black_box(&miss)).count())
    });
}

fn interned_insert(c: &mut Criterion) {
    let k = KeywordSet::parse("alpha beta gamma delta").expect("valid");

    c.bench_function("scan/insert_fresh_alloc", |b| {
        let mut table = IndexTable::new();
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            table.insert(black_box(k.clone()), ObjectId::from_raw(id))
        })
    });
    c.bench_function("scan/insert_interned_arc", |b| {
        let mut interner = KeywordInterner::new();
        let shared = interner.intern(k.clone());
        let mut table = IndexTable::new();
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            table.insert_arc(black_box(Arc::clone(&shared)), ObjectId::from_raw(id))
        })
    });
}

criterion_group!(benches, superset_scan, pin_lookup, interned_insert);
criterion_main!(benches);
