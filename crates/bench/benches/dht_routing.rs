//! DHT-layer benchmarks: greedy finger routing and DOLR operations —
//! the per-lookup cost every §3.5 complexity figure is denominated in.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperdex_dht::{Dolr, NodeId, ObjectId, Ring, Router};
use hyperdex_simnet::rng::SimRng;

fn ring_of(n: u64, seed: u64) -> Ring {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| NodeId::from_raw(rng.next_u64())).collect()
}

fn routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht/route_path");
    for n in [64u64, 512, 4096] {
        let ring = ring_of(n, 31);
        let router = Router::build(&ring);
        let from = ring.iter().next().expect("non-empty");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
                router.path(black_box(from), NodeId::from_raw(key)).len()
            })
        });
    }
    group.finish();
}

fn router_rebuild(c: &mut Criterion) {
    let ring = ring_of(512, 37);
    c.bench_function("dht/router_rebuild_512", |b| {
        b.iter(|| Router::build(black_box(&ring)).ring().len())
    });
}

fn dolr_ops(c: &mut Criterion) {
    c.bench_function("dht/insert_read_delete", |b| {
        let mut dht = Dolr::builder().nodes(256).seed(41).build();
        let publisher = dht.random_node();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let obj = ObjectId::from_raw(i);
            dht.insert(black_box(publisher), obj, publisher);
            let found = dht.read(publisher, obj).is_some();
            dht.delete(publisher, obj, publisher);
            found
        })
    });
}

criterion_group!(benches, routing, router_rebuild, dolr_ops);
criterion_main!(benches);
