//! Micro-benchmarks for the hypercube primitives the search protocol
//! leans on: containment tests, SBT traversal, subcube enumeration, and
//! broadcast scheduling.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use hyperdex_hypercube::{broadcast, Sbt, Shape, Subcube, Vertex};

fn vertex_ops(c: &mut Criterion) {
    let shape = Shape::new(16).expect("valid");
    let u = Vertex::from_bits(shape, 0b0000_1010_0100_0001).expect("valid");
    let w = Vertex::from_bits(shape, 0b1010_1110_0101_0001).expect("valid");

    c.bench_function("vertex/contains", |b| {
        b.iter(|| black_box(w).contains(black_box(u)))
    });
    c.bench_function("vertex/hamming", |b| {
        b.iter(|| black_box(u).hamming(black_box(w)))
    });
    c.bench_function("vertex/one_positions", |b| {
        b.iter(|| black_box(w).one_positions().count())
    });
}

fn sbt_ops(c: &mut Criterion) {
    let shape = Shape::new(16).expect("valid");
    // Root with 4 ones → 12 free dims → 4096-node tree.
    let root = Vertex::from_bits(shape, 0b1000_0100_0010_0001).expect("valid");
    let sbt = Sbt::induced(root);

    c.bench_function("sbt/bfs_4096_nodes", |b| {
        b.iter(|| black_box(sbt).bfs().count())
    });
    c.bench_function("sbt/children_of_root", |b| {
        b.iter(|| black_box(sbt).children(sbt.root()).count())
    });
    let deep = sbt.bfs().last().expect("non-empty").0;
    c.bench_function("sbt/parent_chain_to_root", |b| {
        b.iter(|| {
            let mut v = black_box(deep);
            let mut steps = 0;
            while let Some(p) = sbt.parent(v) {
                v = p;
                steps += 1;
            }
            steps
        })
    });
    c.bench_function("sbt/broadcast_schedule", |b| {
        b.iter(|| broadcast::schedule(black_box(&sbt)).len())
    });
}

fn subcube_ops(c: &mut Criterion) {
    let shape = Shape::new(16).expect("valid");
    let root = Vertex::from_bits(shape, 0b1111_0000_0000_0000).expect("valid");
    let sub = Subcube::induced_by(root);

    c.bench_function("subcube/iterate_4096", |b| {
        b.iter(|| black_box(sub).iter().count())
    });
    c.bench_function("subcube/level_mid", |b| {
        b.iter(|| black_box(sub).level(6).count())
    });
}

criterion_group!(benches, vertex_ops, sbt_ops, subcube_ops);
criterion_main!(benches);
