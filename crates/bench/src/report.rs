//! Plain-text report formatting: markdown tables and CSV series.

use std::fmt::Write as _;

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", render_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "| {} |", sep.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats a float with the given number of decimals.
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n## {title}\n");
}

/// Renders an `(x, y)` series as CSV lines with a header.
pub fn csv_series(name: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# series: {name}\n{x_label},{y_label}\n");
    for (x, y) in points {
        let _ = writeln!(out, "{x:.6},{y:.6}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "22"]);
        t.row(["333", "4"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a"));
        assert!(md.contains("| 333 | 4"));
        assert_eq!(md.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_panics() {
        Table::new(["a"]).row(["1", "2"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(f(1.23456, 2), "1.23");
    }

    #[test]
    fn csv_series_shape() {
        let s = csv_series("test", "x", "y", &[(0.1, 0.2)]);
        assert!(s.contains("# series: test"));
        assert!(s.contains("x,y"));
        assert!(s.contains("0.100000,0.200000"));
    }
}
