//! Plain-text report formatting: markdown tables and CSV series.

use std::fmt::Write as _;

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", render_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "| {} |", sep.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats a float with the given number of decimals.
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n## {title}\n");
}

/// Renders an `(x, y)` series as CSV lines with a header.
pub fn csv_series(name: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# series: {name}\n{x_label},{y_label}\n");
    for (x, y) in points {
        let _ = writeln!(out, "{x:.6},{y:.6}");
    }
    out
}

/// Writes a `BENCH_*.json` artifact: a seed-stamped object wrapping
/// pre-rendered row objects, `{"seed":N,"rows":[…]}`. Stamping the
/// effective seed into every artifact makes any checked-in benchmark
/// file reproducible without consulting the run log.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn write_json_artifact(
    path: &std::path::Path,
    seed: u64,
    rows: &[String],
) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut out = std::fs::File::create(path)?;
    writeln!(out, "{{\"seed\":{seed},\"rows\":[")?;
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(out, "  {row}{sep}")?;
    }
    writeln!(out, "]}}")?;
    Ok(())
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a labeled `(x, y)` series as a single-line JSON object —
/// `{"series":…,"tags":{…},"x":…,"y":…,"points":[[x,y],…]}` — without
/// any serialization dependency. Tags carry sweep parameters (strategy,
/// drop probability, …) so downstream plotting can group lines.
pub fn json_series(
    name: &str,
    tags: &[(&str, String)],
    x_label: &str,
    y_label: &str,
    points: &[(f64, f64)],
) -> String {
    let mut out = format!("{{\"series\":\"{}\",\"tags\":{{", json_escape(name));
    for (i, (k, v)) in tags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    let _ = write!(
        out,
        "}},\"x\":\"{}\",\"y\":\"{}\",\"points\":[",
        json_escape(x_label),
        json_escape(y_label)
    );
    for (i, (x, y)) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{x:.6},{y:.6}]");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "22"]);
        t.row(["333", "4"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a"));
        assert!(md.contains("| 333 | 4"));
        assert_eq!(md.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_panics() {
        Table::new(["a"]).row(["1", "2"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(f(1.23456, 2), "1.23");
    }

    #[test]
    fn json_series_shape() {
        let s = json_series(
            "recall",
            &[("strategy", "redelegate".into()), ("drop", "0.2".into())],
            "crash_fraction",
            "recall",
            &[(0.1, 0.95), (0.2, 0.9)],
        );
        assert_eq!(
            s,
            "{\"series\":\"recall\",\"tags\":{\"strategy\":\"redelegate\",\
             \"drop\":\"0.2\"},\"x\":\"crash_fraction\",\"y\":\"recall\",\
             \"points\":[[0.100000,0.950000],[0.200000,0.900000]]}"
        );
    }

    #[test]
    fn json_series_escapes_strings() {
        let s = json_series("a\"b\\c\n", &[], "x", "y", &[]);
        assert!(s.contains("a\\\"b\\\\c\\n"));
    }

    #[test]
    fn json_artifact_is_seed_stamped() {
        let dir = std::env::temp_dir().join("hyperdex_report_json_test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("BENCH_test.json");
        write_json_artifact(&path, 1234, &["{\"a\":1}".into(), "{\"a\":2}".into()]).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with("{\"seed\":1234,\"rows\":[\n"));
        assert!(text.contains("  {\"a\":1},\n"));
        assert!(text.contains("  {\"a\":2}\n"));
        assert!(text.trim_end().ends_with("]}"));
    }

    #[test]
    fn csv_series_shape() {
        let s = csv_series("test", "x", "y", &[(0.1, 0.2)]);
        assert!(s.contains("# series: test"));
        assert!(s.contains("x,y"));
        assert!(s.contains("0.100000,0.200000"));
    }
}
