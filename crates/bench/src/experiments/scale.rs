//! Million-object scale harness: sustained mixed traffic against both
//! posting-store backends with latency SLOs and bytes-per-object
//! accounting.
//!
//! Every other experiment answers "is the scheme right?" at corpus
//! sizes the paper used; this one answers "does the index hold up at
//! deployment scale?". The harness builds the *same* corpus into a
//! [`StoreBackend::Table`] index and a [`StoreBackend::Slab`] index,
//! then:
//!
//! * asserts **byte-identical result parity** between the backends on
//!   a sampled pin + superset query set (always on — a layout bug
//!   cannot hide behind a fast run);
//! * drives sustained mixed traffic (Zipf pins and pruned superset
//!   searches) per backend, recording p50/p99 per operation class
//!   against explicit latency budgets;
//! * accounts memory per backend via [`HypercubeIndex::store_footprint`]
//!   — resident bytes, bytes/object, slab slot occupancy and arena
//!   waste — and asserts the slab's bytes/object lands **strictly
//!   below** the table estimate (always on).
//!
//! Environment knobs (all optional):
//!
//! * `HYPERDEX_SCALE_OBJECTS` — corpus size (default 1,000,000);
//! * `HYPERDEX_SCALE_SMOKE=1` — CI smoke preset (60,000 objects over
//!   an `r = 12` cube — same objects-per-vertex density as the full
//!   run — with trimmed traffic) unless the explicit knobs override
//!   it;
//! * `HYPERDEX_SCALE_R` — cube dimension (default 16, smoke 12);
//! * `HYPERDEX_SCALE_PIN_P99_US` / `HYPERDEX_SCALE_SUP_P99_US` —
//!   p99 budgets in microseconds (defaults 500 / 180,000), enforced in
//!   release builds only, like the other wall-clock bars.
//!
//! `HYPERDEX_STORE` steers the *default* backend of every executor
//! (DESIGN.md §17); this harness deliberately ignores it and builds
//! both backends explicitly, since the comparison is the experiment.

use std::path::Path;
use std::time::Instant;

use hyperdex_core::{HypercubeIndex, KeywordSet, ObjectId, StoreBackend, SupersetQuery};
use hyperdex_workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

use crate::report::{f, json_series, section, Table};
use crate::SharedContext;

/// Corpus size when no knob overrides it: the million-object bar from
/// the issue.
const DEFAULT_OBJECTS: usize = 1_000_000;
/// Corpus size under `HYPERDEX_SCALE_SMOKE=1`.
const SMOKE_OBJECTS: usize = 60_000;
/// Default cube dimension (2^16 vertices spreads a million objects at
/// ~15 objects/occupied-vertex under the pchome distribution).
const DEFAULT_R: u8 = 16;
/// Smoke cube dimension: 2^12 vertices keeps the full run's
/// objects-per-vertex density at [`SMOKE_OBJECTS`], so the slab-vs-
/// table byte comparison measures the same regime. (A near-empty
/// vertex is where the table's pointer graph is at its *cheapest*;
/// the slab's contiguous arrays win on populated vertices.)
const SMOKE_R: u8 = 12;
/// Default p99 budget for pin search, microseconds.
const DEFAULT_PIN_P99_US: f64 = 500.0;
/// Default p99 budget for pruned superset search, microseconds. A
/// pruned threshold-64 search over a million objects touches hundreds
/// of vertices; ~85 ms p99 measured on a 2025 container host, budget
/// set with ~2× headroom.
const DEFAULT_SUP_P99_US: f64 = 180_000.0;
/// Result budget per superset search (early exit, like real clients).
const SUP_THRESHOLD: usize = 64;

/// Timed pin lookups per backend (full run / smoke).
const PINS: usize = 6_000;
const PINS_SMOKE: usize = 1_500;
/// Timed superset searches per backend (full run / smoke).
const SUPS: usize = 1_200;
const SUPS_SMOKE: usize = 300;
/// Queries cross-checked byte-for-byte between the backends.
const PARITY_PINS: usize = 800;
const PARITY_SUPS: usize = 200;

/// One backend's measured row.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRow {
    /// Cube dimension `r`.
    pub r: u8,
    /// Objects indexed.
    pub objects: usize,
    /// Posting-store backend name (`table` | `slab`).
    pub backend: &'static str,
    /// Bulk-insert throughput, objects/second.
    pub insert_rate: f64,
    /// Pin-search latency percentiles, microseconds.
    pub pin_p50_us: f64,
    /// Pin p99, microseconds (SLO column).
    pub pin_p99_us: f64,
    /// The pin p99 budget the run was held to, microseconds.
    pub pin_slo_us: f64,
    /// Superset-search latency percentiles, microseconds.
    pub sup_p50_us: f64,
    /// Superset p99, microseconds (SLO column).
    pub sup_p99_us: f64,
    /// The superset p99 budget the run was held to, microseconds.
    pub sup_slo_us: f64,
    /// Resident posting-store bytes across every occupied vertex.
    pub bytes_resident: usize,
    /// `bytes_resident / objects`.
    pub bytes_per_object: f64,
    /// Live slots / total slots of the slab (1.0 for the table).
    pub slot_occupancy: f64,
    /// Dead bytes awaiting compaction in the posting arena (0 for the
    /// table).
    pub arena_waste: usize,
}

impl ScaleRow {
    /// The deterministic (seed-reproducible) projection of the row.
    pub fn deterministic_key(&self) -> (u8, usize, &'static str, usize, usize) {
        (
            self.r,
            self.objects,
            self.backend,
            self.bytes_resident,
            self.arena_waste,
        )
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds one index on `backend`, timing the bulk load.
fn build(
    backend: StoreBackend,
    r: u8,
    seed: u64,
    entries: &[(ObjectId, KeywordSet)],
) -> (HypercubeIndex, f64) {
    let mut index = HypercubeIndex::with_store(r, seed, backend).expect("valid r");
    let t0 = Instant::now();
    for (id, k) in entries {
        index.insert(*id, k.clone()).expect("non-empty set");
    }
    let secs = t0.elapsed().as_secs_f64();
    let rate = if secs == 0.0 {
        f64::INFINITY
    } else {
        entries.len() as f64 / secs
    };
    (index, rate)
}

/// Every `len / n`-th element of `items` — a deterministic stride
/// sample spread across the whole corpus.
fn stride<'a, T>(items: &'a [T], n: usize) -> impl Iterator<Item = &'a T> + 'a {
    let step = (items.len() / n.max(1)).max(1);
    items.iter().step_by(step).take(n)
}

/// Asserts byte-identical answers from both backends on sampled pin
/// and superset queries. Always on: this is the four-executor parity
/// discipline applied to the storage layer.
fn assert_backend_parity(
    table: &mut HypercubeIndex,
    slab: &mut HypercubeIndex,
    entries: &[(ObjectId, KeywordSet)],
    sups: &[KeywordSet],
) {
    for (_, k) in stride(entries, PARITY_PINS) {
        let a = table.pin_search(k);
        let b = slab.pin_search(k);
        assert_eq!(
            a.results, b.results,
            "pin parity broke between table and slab for {k:?}"
        );
    }
    for q in stride(sups, PARITY_SUPS) {
        let query = SupersetQuery::new(q.clone())
            .threshold(SUP_THRESHOLD)
            .use_cache(false)
            .prune(true);
        let a = table.superset_search(&query).expect("valid query");
        let b = slab.superset_search(&query).expect("valid query");
        assert_eq!(
            a.results, b.results,
            "superset parity broke between table and slab for {q:?}"
        );
        assert_eq!(a.stats.nodes_contacted, b.stats.nodes_contacted);
    }
}

/// Drives the mixed traffic against one index; returns sorted pin and
/// superset latencies in microseconds.
fn drive(
    index: &mut HypercubeIndex,
    entries: &[(ObjectId, KeywordSet)],
    sups: &[KeywordSet],
    pins: usize,
    sup_count: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mut pin_lat = Vec::with_capacity(pins);
    let mut sup_lat = Vec::with_capacity(sup_count);
    let pin_sample: Vec<&KeywordSet> = stride(entries, pins).map(|(_, k)| k).collect();
    let sup_sample: Vec<&KeywordSet> = stride(sups, sup_count).collect();
    // Interleave the classes so neither gets a warm-cache advantage:
    // one superset search per `pins / sup_count` pins.
    let per = (pin_sample.len() / sup_sample.len().max(1)).max(1);
    let mut sup_it = sup_sample.iter();
    for (i, k) in pin_sample.iter().enumerate() {
        let t0 = Instant::now();
        let out = index.pin_search(k);
        pin_lat.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(!out.results.is_empty(), "indexed set must pin-hit");
        if i % per == 0 {
            if let Some(q) = sup_it.next() {
                let query = SupersetQuery::new((*q).clone())
                    .threshold(SUP_THRESHOLD)
                    .use_cache(false)
                    .prune(true);
                let t0 = Instant::now();
                index.superset_search(&query).expect("valid query");
                sup_lat.push(t0.elapsed().as_secs_f64() * 1e6);
            }
        }
    }
    pin_lat.sort_by(|a, b| a.total_cmp(b));
    sup_lat.sort_by(|a, b| a.total_cmp(b));
    (pin_lat, sup_lat)
}

/// Runs the scale harness, prints the markdown table and JSON series,
/// and returns one row per backend.
///
/// # Panics
///
/// Panics when backend parity breaks, when the slab does not beat the
/// table's bytes/object, or (release builds only) when a p99 exceeds
/// its budget.
pub fn run(ctx: &SharedContext) -> Vec<ScaleRow> {
    section("Scale — million-object mixed traffic, table vs slab store");
    let smoke = std::env::var("HYPERDEX_SCALE_SMOKE").is_ok_and(|v| v == "1");
    let objects = env_usize(
        "HYPERDEX_SCALE_OBJECTS",
        if smoke {
            SMOKE_OBJECTS
        } else {
            DEFAULT_OBJECTS
        },
    );
    let default_r = if smoke { SMOKE_R } else { DEFAULT_R };
    let r = env_usize("HYPERDEX_SCALE_R", default_r as usize) as u8;
    let pin_slo_us = env_f64("HYPERDEX_SCALE_PIN_P99_US", DEFAULT_PIN_P99_US);
    let sup_slo_us = env_f64("HYPERDEX_SCALE_SUP_P99_US", DEFAULT_SUP_P99_US);
    let (pins, sup_count) = if smoke {
        (PINS_SMOKE, SUPS_SMOKE)
    } else {
        (PINS, SUPS)
    };

    let cell_seed = ctx.seed ^ (u64::from(r) << 24) ^ (objects as u64);
    println!("generating {objects} objects (r = {r}, seed {cell_seed})...");
    let corpus = Corpus::generate(&CorpusConfig::pchome().with_objects(objects), cell_seed);
    let log = QueryLog::generate(
        &QueryLogConfig::pchome_day().with_queries(8_000),
        &corpus,
        cell_seed ^ 0xF00D,
    );
    let entries: Vec<(ObjectId, KeywordSet)> =
        corpus.indexable().map(|(id, k)| (id, k.clone())).collect();
    let sups: Vec<KeywordSet> = log.iter().cloned().collect();

    let (mut table_idx, table_rate) = build(StoreBackend::Table, r, cell_seed, &entries);
    let (mut slab_idx, slab_rate) = build(StoreBackend::Slab, r, cell_seed, &entries);
    println!(
        "loaded both backends: table {}/s, slab {}/s",
        f(table_rate, 0),
        f(slab_rate, 0)
    );

    // Result parity first, untimed, always on.
    assert_backend_parity(&mut table_idx, &mut slab_idx, &entries, &sups);
    println!(
        "parity: {PARITY_PINS} pins + {PARITY_SUPS} supersets — table ≡ slab (byte-identical)"
    );

    let mut rows = Vec::with_capacity(2);
    for (backend, index, insert_rate) in [
        (StoreBackend::Table, &mut table_idx, table_rate),
        (StoreBackend::Slab, &mut slab_idx, slab_rate),
    ] {
        let (pin_lat, sup_lat) = drive(index, &entries, &sups, pins, sup_count);
        let pct = |lat: &[f64], p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
        let foot = index.store_footprint();
        rows.push(ScaleRow {
            r,
            objects: entries.len(),
            backend: backend.name(),
            insert_rate,
            pin_p50_us: pct(&pin_lat, 0.50),
            pin_p99_us: pct(&pin_lat, 0.99),
            pin_slo_us,
            sup_p50_us: pct(&sup_lat, 0.50),
            sup_p99_us: pct(&sup_lat, 0.99),
            sup_slo_us,
            bytes_resident: foot.bytes_resident,
            bytes_per_object: foot.bytes_resident as f64 / entries.len() as f64,
            slot_occupancy: foot.slot_occupancy,
            arena_waste: foot.arena_waste,
        });
    }

    // In-run bars. Memory and SLO-column sanity are always on; the
    // wall-clock SLO itself is a release-build claim, like every
    // other timing bar in this suite.
    let (t, s) = (&rows[0], &rows[1]);
    assert!(
        s.bytes_resident < t.bytes_resident,
        "slab must be strictly smaller than the table: {} vs {} bytes",
        s.bytes_resident,
        t.bytes_resident
    );
    for row in &rows {
        assert!(
            row.pin_p99_us.is_finite() && row.pin_p99_us > 0.0,
            "pin p99 SLO column must be populated"
        );
        assert!(
            row.sup_p99_us.is_finite() && row.sup_p99_us > 0.0,
            "superset p99 SLO column must be populated"
        );
    }
    #[cfg(not(debug_assertions))]
    for row in &rows {
        assert!(
            row.pin_p99_us <= row.pin_slo_us,
            "{} pin p99 {:.1}µs blew the {:.1}µs budget",
            row.backend,
            row.pin_p99_us,
            row.pin_slo_us
        );
        assert!(
            row.sup_p99_us <= row.sup_slo_us,
            "{} superset p99 {:.1}µs blew the {:.1}µs budget",
            row.backend,
            row.sup_p99_us,
            row.sup_slo_us
        );
    }

    let mut out = Table::new([
        "r",
        "objects",
        "backend",
        "insert/s",
        "pin p50 µs",
        "pin p99 µs",
        "pin SLO µs",
        "sup p50 µs",
        "sup p99 µs",
        "sup SLO µs",
        "resident MiB",
        "bytes/object",
        "occupancy",
        "arena waste",
    ]);
    for row in &rows {
        out.row([
            row.r.to_string(),
            row.objects.to_string(),
            row.backend.to_string(),
            f(row.insert_rate, 0),
            f(row.pin_p50_us, 1),
            f(row.pin_p99_us, 1),
            f(row.pin_slo_us, 0),
            f(row.sup_p50_us, 1),
            f(row.sup_p99_us, 1),
            f(row.sup_slo_us, 0),
            f(row.bytes_resident as f64 / (1024.0 * 1024.0), 1),
            f(row.bytes_per_object, 1),
            f(row.slot_occupancy, 3),
            row.arena_waste.to_string(),
        ]);
    }
    print!("{}", out.to_markdown());
    println!(
        "\nslab/table bytes: {:.3}× ({} vs {} per object)",
        s.bytes_resident as f64 / t.bytes_resident as f64,
        f(s.bytes_per_object, 1),
        f(t.bytes_per_object, 1)
    );

    println!("\n### JSON series (vs backend)\n");
    let points: Vec<(f64, f64)> = rows
        .iter()
        .enumerate()
        .map(|(i, row)| (i as f64, row.bytes_per_object))
        .collect();
    println!(
        "{}",
        json_series(
            "scale_bytes_per_object",
            &[("objects", objects.to_string()), ("r", r.to_string())],
            "backend (0=table, 1=slab)",
            "bytes/object",
            &points,
        )
    );

    rows
}

/// Writes the rows to `path` as a seed-stamped JSON artifact.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_json(rows: &[ScaleRow], seed: u64, path: &Path) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"r\":{},\"objects\":{},\"backend\":\"{}\",\"insert_rate\":{:.2},\
                 \"pin_p50_us\":{:.2},\"pin_p99_us\":{:.2},\"pin_slo_us\":{:.2},\
                 \"sup_p50_us\":{:.2},\"sup_p99_us\":{:.2},\"sup_slo_us\":{:.2},\
                 \"bytes_resident\":{},\"bytes_per_object\":{:.2},\
                 \"slot_occupancy\":{:.4},\"arena_waste\":{}}}",
                r.r,
                r.objects,
                r.backend,
                r.insert_rate,
                r.pin_p50_us,
                r.pin_p99_us,
                r.pin_slo_us,
                r.sup_p50_us,
                r.sup_p99_us,
                r.sup_slo_us,
                r.bytes_resident,
                r.bytes_per_object,
                r.slot_occupancy,
                r.arena_waste,
            )
        })
        .collect();
    crate::report::write_json_artifact(path, seed, &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_artifact_shape() {
        let row = ScaleRow {
            r: 16,
            objects: 1_000_000,
            backend: "slab",
            insert_rate: 350_000.0,
            pin_p50_us: 4.2,
            pin_p99_us: 61.0,
            pin_slo_us: 500.0,
            sup_p50_us: 180.0,
            sup_p99_us: 2_400.0,
            sup_slo_us: 25_000.0,
            bytes_resident: 48_000_000,
            bytes_per_object: 48.0,
            slot_occupancy: 0.97,
            arena_waste: 1_024,
        };
        let dir = std::env::temp_dir().join("hyperdex_scale_json_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_scale.json");
        write_json(std::slice::from_ref(&row), 42, &path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.starts_with("{\"seed\":42,\"rows\":[\n"));
        assert!(text.contains("\"backend\":\"slab\""));
        assert!(text.contains("\"pin_p99_us\":61.00"));
        assert!(text.contains("\"sup_slo_us\":25000.00"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stride_covers_without_replacement() {
        let items: Vec<usize> = (0..100).collect();
        let picked: Vec<usize> = stride(&items, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
    }
}
