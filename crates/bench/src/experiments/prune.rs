//! Occupancy-guided pruning: nodes contacted with and without subtree
//! summaries.
//!
//! Superset search must visit every vertex of the subcube induced by
//! `F_h(K)` — unless something proves a subtree empty. The occupancy
//! summaries of [`hyperdex_core::summary`] do exactly that: each SBT
//! subtree carries an object count and a keyword-position bitmask, and
//! the traversal skips any subtree whose count is zero or whose mask
//! cannot cover the query vertex.
//!
//! This sweep crosses **corpus size** (how full the cube is) with the
//! **Zipf exponent** of keyword popularity (how skewed occupancy is)
//! and **query specificity** (`|K|` — larger queries induce larger,
//! emptier subcubes), and reports per cell, summed over the query
//! batch:
//!
//! * nodes contacted by the unpruned and the pruned traversal;
//! * `T_QUERY`/`T_CONT`/`T_STOP` messages for both;
//! * subtrees pruned and the fraction of node visits saved.
//!
//! Every query is run both ways on the *same* index and the result
//! sets are asserted bit-for-bit identical — pruning is an
//! optimization, never a recall trade. The run panics (non-zero exit
//! under the CI bench-smoke job) if any query returns different
//! results or the pruned traversal contacts more nodes.

use std::path::Path;

use hyperdex_core::{HypercubeIndex, SupersetQuery};
use hyperdex_workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

use crate::report::{f, json_series, pct, section, Table};
use crate::{Scale, SharedContext};

/// Corpus sizes swept at full scale.
pub const CORPUS_SIZES_FULL: [usize; 2] = [2_000, 8_000];
/// Corpus sizes swept at small scale (CI smoke).
pub const CORPUS_SIZES_SMALL: [usize; 2] = [500, 2_000];
/// Zipf exponents of keyword popularity (skew of cube occupancy).
pub const ZIPF_EXPONENTS: [f64; 2] = [0.8, 1.2];
/// Query sizes `|K|` (specificity; larger ⇒ larger induced subcube).
pub const QUERY_SIZES: [u32; 3] = [1, 2, 3];

/// Cube dimension: 4096 vertices, so even the large corpus leaves
/// most of the cube empty — the regime pruning exploits.
const PRUNE_R: u8 = 12;
/// Queries evaluated per sweep cell.
const QUERIES_PER_CELL: usize = 8;

/// One measured cell of the pruning sweep (sums over its query batch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneRow {
    /// Objects indexed.
    pub corpus_size: usize,
    /// Zipf exponent of keyword popularity.
    pub zipf: f64,
    /// Query size `|K|`.
    pub query_size: u32,
    /// Queries actually evaluated (the popular pool may run short).
    pub queries: usize,
    /// Nodes contacted without pruning.
    pub nodes_unpruned: u64,
    /// Nodes contacted with occupancy-guided pruning.
    pub nodes_pruned: u64,
    /// Total messages without pruning.
    pub msgs_unpruned: u64,
    /// Total messages with pruning.
    pub msgs_pruned: u64,
    /// SBT subtrees skipped by summary digests.
    pub pruned_subtrees: u64,
}

impl PruneRow {
    /// Fraction of node visits the summaries saved.
    pub fn savings(&self) -> f64 {
        if self.nodes_unpruned == 0 {
            0.0
        } else {
            1.0 - self.nodes_pruned as f64 / self.nodes_unpruned as f64
        }
    }
}

/// Runs the pruning sweep, prints the markdown table and JSON series,
/// and returns the rows.
///
/// # Panics
///
/// Panics if any query's pruned result set differs from the unpruned
/// one, if pruning ever contacts *more* nodes, or if the largest,
/// most specific cell fails to contact *strictly fewer* nodes — these
/// are the experiment's invariants and CI runs this as a smoke check.
pub fn run(ctx: &SharedContext) -> Vec<PruneRow> {
    section("Prune — nodes contacted with occupancy-guided SBT pruning");
    let corpus_sizes = match ctx.scale {
        Scale::Full => CORPUS_SIZES_FULL,
        Scale::Small => CORPUS_SIZES_SMALL,
    };

    let mut rows = Vec::new();
    for &n in &corpus_sizes {
        for &zipf in &ZIPF_EXPONENTS {
            let cfg = CorpusConfig {
                zipf_exponent: zipf,
                ..CorpusConfig::pchome().with_objects(n)
            };
            let cell_seed = ctx.seed ^ (n as u64) ^ zipf.to_bits();
            let corpus = Corpus::generate(&cfg, cell_seed);
            let queries = QueryLog::generate(
                &QueryLogConfig::pchome_day().with_queries(4_000),
                &corpus,
                cell_seed ^ 0xF00D,
            );

            let mut index = HypercubeIndex::new(PRUNE_R, ctx.seed).expect("valid");
            for (id, k) in corpus.indexable() {
                index.insert(id, k.clone()).expect("non-empty");
            }

            for &m in &QUERY_SIZES {
                let batch = queries.popular_of_size(m, QUERIES_PER_CELL);
                let mut row = PruneRow {
                    corpus_size: n,
                    zipf,
                    query_size: m,
                    queries: batch.len(),
                    nodes_unpruned: 0,
                    nodes_pruned: 0,
                    msgs_unpruned: 0,
                    msgs_pruned: 0,
                    pruned_subtrees: 0,
                };
                for q in &batch {
                    let base = SupersetQuery::new(q.clone()).use_cache(false);
                    let plain = index.superset_search(&base.clone()).expect("valid");
                    let pruned = index.superset_search(&base.prune(true)).expect("valid");

                    let mut ids: Vec<_> = plain.results.iter().map(|r| r.object).collect();
                    let mut pruned_ids: Vec<_> = pruned.results.iter().map(|r| r.object).collect();
                    ids.sort_unstable();
                    pruned_ids.sort_unstable();
                    assert_eq!(
                        ids, pruned_ids,
                        "pruning changed the result set for {q} (n={n}, zipf={zipf})"
                    );
                    assert!(
                        pruned.stats.nodes_contacted <= plain.stats.nodes_contacted,
                        "pruning contacted more nodes for {q} (n={n}, zipf={zipf})"
                    );

                    row.nodes_unpruned += plain.stats.nodes_contacted;
                    row.nodes_pruned += pruned.stats.nodes_contacted;
                    row.msgs_unpruned += plain.stats.total_messages();
                    row.msgs_pruned += pruned.stats.total_messages();
                    row.pruned_subtrees += pruned.stats.pruned_subtrees;
                }
                rows.push(row);
            }
        }
    }

    // The headline acceptance point: on the largest corpus at the most
    // specific query size, pruning must *strictly* beat the full walk.
    let largest = rows
        .iter()
        .filter(|r| r.corpus_size == corpus_sizes[corpus_sizes.len() - 1])
        .filter(|r| r.query_size == QUERY_SIZES[QUERY_SIZES.len() - 1])
        .max_by(|a, b| a.nodes_unpruned.cmp(&b.nodes_unpruned))
        .expect("sweep is non-empty");
    assert!(
        largest.nodes_pruned < largest.nodes_unpruned,
        "largest cell saved nothing: {largest:?}"
    );

    let mut table = Table::new([
        "objects",
        "zipf",
        "|K|",
        "queries",
        "nodes (plain)",
        "nodes (pruned)",
        "msgs (plain)",
        "msgs (pruned)",
        "subtrees cut",
        "saved",
    ]);
    for row in &rows {
        table.row([
            row.corpus_size.to_string(),
            f(row.zipf, 1),
            row.query_size.to_string(),
            row.queries.to_string(),
            row.nodes_unpruned.to_string(),
            row.nodes_pruned.to_string(),
            row.msgs_unpruned.to_string(),
            row.msgs_pruned.to_string(),
            row.pruned_subtrees.to_string(),
            pct(row.savings()),
        ]);
    }
    print!("{}", table.to_markdown());

    println!("\n### JSON series (vs corpus size)\n");
    for &zipf in &ZIPF_EXPONENTS {
        for &m in &QUERY_SIZES {
            let points: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.zipf == zipf && r.query_size == m)
                .map(|r| (r.corpus_size as f64, r.savings()))
                .collect();
            println!(
                "{}",
                json_series(
                    "prune_savings",
                    &[("zipf", f(zipf, 1)), ("query_size", m.to_string())],
                    "corpus_size",
                    "node visits saved",
                    &points,
                )
            );
        }
    }
    rows
}

/// Writes the sweep as a seed-stamped JSON object (the
/// `BENCH_prune.json` artifact): `{"seed":N,"rows":[…]}`.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn write_json(rows: &[PruneRow], seed: u64, path: &Path) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"corpus_size\":{},\"zipf\":{:.2},\"query_size\":{},\
                 \"queries\":{},\"nodes_unpruned\":{},\"nodes_pruned\":{},\
                 \"msgs_unpruned\":{},\"msgs_pruned\":{},\
                 \"pruned_subtrees\":{},\"savings\":{:.6}}}",
                r.corpus_size,
                r.zipf,
                r.query_size,
                r.queries,
                r.nodes_unpruned,
                r.nodes_pruned,
                r.msgs_unpruned,
                r.msgs_pruned,
                r.pruned_subtrees,
                r.savings(),
            )
        })
        .collect();
    crate::report::write_json_artifact(path, seed, &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_holds_invariants_and_is_deterministic() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let rows = run(&ctx);
        assert_eq!(
            rows.len(),
            CORPUS_SIZES_SMALL.len() * ZIPF_EXPONENTS.len() * QUERY_SIZES.len()
        );
        for row in &rows {
            assert!(row.queries > 0, "empty query batch in {row:?}");
            // `run` already asserted per-query parity; the sums must
            // agree with it.
            assert!(row.nodes_pruned <= row.nodes_unpruned, "{row:?}");
            assert!(row.msgs_pruned <= row.msgs_unpruned, "{row:?}");
            assert!((0.0..=1.0).contains(&row.savings()), "{row:?}");
        }
        // Specific queries over a mostly-empty cube must show real
        // savings, with the digests doing the cutting.
        let best = rows
            .iter()
            .filter(|r| r.query_size == 3)
            .max_by(|a, b| a.nodes_unpruned.cmp(&b.nodes_unpruned))
            .expect("non-empty");
        assert!(best.nodes_pruned < best.nodes_unpruned, "{best:?}");
        assert!(best.pruned_subtrees > 0, "{best:?}");

        // Same seed ⇒ identical rows.
        let again = run(&ctx);
        assert_eq!(rows, again, "sweep is not deterministic");
    }

    #[test]
    fn json_artifact_shape() {
        let row = PruneRow {
            corpus_size: 100,
            zipf: 1.0,
            query_size: 2,
            queries: 8,
            nodes_unpruned: 40,
            nodes_pruned: 10,
            msgs_unpruned: 120,
            msgs_pruned: 30,
            pruned_subtrees: 6,
        };
        let dir = std::env::temp_dir().join("hyperdex_prune_json_test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("BENCH_prune.json");
        write_json(&[row], 42, &path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with("{\"seed\":42,\"rows\":[\n"));
        assert!(text.contains("\"nodes_pruned\":10"));
        assert!(text.contains("\"savings\":0.750000"));
        assert!(text.trim_end().ends_with("]}"));
    }
}
