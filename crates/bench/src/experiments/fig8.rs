//! Figure 8: cacheless query performance.
//!
//! For `r ∈ {8, 10, 12}` and query sizes `m = 1..5`, run popular
//! superset queries at increasing recall rates and measure the fraction
//! of hypercube nodes contacted. The paper's observations:
//!
//! * at 100 % recall roughly `2^−m` of the nodes are contacted (for
//!   `r ∈ {10, 12}`; `r = 8` is higher for `m > 1` because bit
//!   collisions shrink `|One(F_h(K))|`);
//! * nodes contacted grow roughly linearly with the recall rate
//!   (indexing load is evenly spread).

use hyperdex_core::{HypercubeIndex, SupersetQuery};

use crate::report::{pct, section, Table};
use crate::SharedContext;

/// Recall rates swept (the paper's X axis).
pub const RECALLS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Queries sampled per (r, m) cell.
const QUERIES_PER_CELL: usize = 10;

/// One measured cell: dimension, query size, recall, and the average
/// fraction of nodes contacted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Cell {
    /// Hypercube dimension.
    pub r: u8,
    /// Query size in keywords.
    pub m: u32,
    /// Recall rate requested.
    pub recall: f64,
    /// Average fraction of the `2^r` nodes contacted.
    pub nodes_fraction: f64,
}

/// Runs the sweep and returns every cell.
pub fn run(ctx: &SharedContext) -> Vec<Fig8Cell> {
    section("Figure 8 — query performance, cacheless");
    let mut cells = Vec::new();
    for r in [8u8, 10, 12] {
        let mut index = HypercubeIndex::new(r, ctx.seed).expect("valid dimension");
        for (id, keywords) in ctx.corpus.indexable() {
            index.insert(id, keywords.clone()).expect("non-empty");
        }
        let total_nodes = (1u64 << r) as f64;
        for m in 1..=5u32 {
            let queries = ctx.queries.popular_of_size(m, QUERIES_PER_CELL);
            if queries.is_empty() {
                continue;
            }
            // Ground truth once per query (oracle, not protocol cost).
            let counts: Vec<usize> = queries.iter().map(|q| index.matching_count(q)).collect();
            for &recall in &RECALLS {
                let mut fractions = Vec::new();
                for (q, &matching) in queries.iter().zip(&counts) {
                    if matching == 0 {
                        continue;
                    }
                    let threshold = ((matching as f64 * recall).ceil() as usize).max(1);
                    let out = index
                        .superset_search(
                            &SupersetQuery::new(q.clone())
                                .threshold(threshold)
                                .use_cache(false),
                        )
                        .expect("positive threshold");
                    debug_assert!(out.results.len() >= threshold.min(matching));
                    fractions.push(out.stats.nodes_contacted as f64 / total_nodes);
                }
                if fractions.is_empty() {
                    continue;
                }
                let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
                cells.push(Fig8Cell {
                    r,
                    m,
                    recall,
                    nodes_fraction: avg,
                });
            }
        }
    }

    // Print one table per r: rows = m, columns = recall.
    for r in [8u8, 10, 12] {
        println!("\nr = {r} (% of 2^{r} nodes contacted)");
        let mut table = Table::new(["m", "20%", "40%", "60%", "80%", "100%", "2^-m"]);
        for m in 1..=5u32 {
            let row: Vec<String> = RECALLS
                .iter()
                .map(|&recall| {
                    cells
                        .iter()
                        .find(|c| c.r == r && c.m == m && (c.recall - recall).abs() < 1e-9)
                        .map(|c| pct(c.nodes_fraction))
                        .unwrap_or_else(|| "-".into())
                })
                .collect();
            if row.iter().all(|v| v == "-") {
                continue;
            }
            let mut cells_row = vec![m.to_string()];
            cells_row.extend(row);
            cells_row.push(pct(2f64.powi(-(m as i32))));
            table.row(cells_row);
        }
        print!("{}", table.to_markdown());
    }
    println!(
        "\nPaper: ≈2^-m of nodes at 100% recall for r = 10, 12; higher for r = 8; \
         roughly linear in recall."
    );
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn reproduces_paper_shape() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let cells = run(&ctx);
        assert!(!cells.is_empty());
        let cell = |r: u8, m: u32, recall: f64| {
            cells
                .iter()
                .find(|c| c.r == r && c.m == m && (c.recall - recall).abs() < 1e-9)
                .copied()
        };
        // (1) At 100% recall and r = 12, m = 1: about half the subcube ≈
        // 2^-1 of nodes. Allow generous tolerance for the small corpus.
        if let Some(c) = cell(12, 1, 1.0) {
            let ideal = 0.5;
            assert!(
                c.nodes_fraction > ideal * 0.5 && c.nodes_fraction < ideal * 1.6,
                "r=12 m=1: {} vs 2^-1",
                c.nodes_fraction
            );
        }
        // (2) More keywords → smaller searched fraction (monotone in m).
        for r in [10u8, 12] {
            if let (Some(a), Some(b)) = (cell(r, 1, 1.0), cell(r, 3, 1.0)) {
                assert!(
                    b.nodes_fraction < a.nodes_fraction,
                    "r={r}: m=3 ({}) should cost less than m=1 ({})",
                    b.nodes_fraction,
                    a.nodes_fraction
                );
            }
        }
        // (3) Fractions grow with recall.
        for r in [8u8, 10, 12] {
            if let (Some(lo), Some(hi)) = (cell(r, 1, 0.2), cell(r, 1, 1.0)) {
                assert!(lo.nodes_fraction <= hi.nodes_fraction + 1e-9);
            }
        }
        // (4) r = 8 contacts a larger fraction than r = 12 for m >= 2
        // (collisions shrink |One| on a small cube).
        if let (Some(small), Some(large)) = (cell(8, 3, 1.0), cell(12, 3, 1.0)) {
            assert!(
                small.nodes_fraction >= large.nodes_fraction,
                "r=8 ({}) >= r=12 ({}) at m=3",
                small.nodes_fraction,
                large.nodes_fraction
            );
        }
    }
}
