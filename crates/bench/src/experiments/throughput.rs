//! End-to-end throughput: inserts, pin lookups, and superset queries
//! per second, with the keyword-signature prefilter on and off.
//!
//! The hot-path overhaul (interned keyword sets, per-entry signature
//! masks, table-wide digests, reused traversal buffers) claims the
//! same results for less work. This sweep measures the claim end to
//! end across **cube dimension** (how thinly the corpus spreads),
//! **corpus size**, and the **Zipf exponent** of keyword popularity,
//! reporting per cell:
//!
//! * inserts/second into a fresh index;
//! * pin lookups/second over every indexed keyword set;
//! * superset queries/second three ways — the pre-optimization
//!   unfiltered string-compare scan (`mask(false)`), the
//!   mask-prefiltered scan, and the prefiltered scan with occupancy
//!   pruning on top.
//!
//! Before anything is timed, every query is run with the prefilter on
//! and off and the two [`hyperdex_core::search::SupersetOutcome`]s are
//! asserted **fully equal** (results, stats, exhaustion) — the mask
//! must be invisible except in the clock; the pruned run must return
//! the identical id set. Wall-clock rates are reported, never
//! asserted: CI boxes are noisy, so the speedup claim is carried by
//! the checked-in `BENCH_throughput.json` artifact instead.

use std::path::Path;
use std::time::Instant;

use hyperdex_core::{HypercubeIndex, KeywordSet, ObjectId, SupersetQuery};
use hyperdex_workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

use crate::report::{f, json_series, section, Table};
use crate::{Scale, SharedContext};

/// Cube dimensions swept at full scale.
pub const DIMENSIONS_FULL: [u8; 2] = [10, 12];
/// Cube dimensions swept at small scale (CI smoke): smaller cubes pack
/// more entries per vertex, the regime where scan cost dominates.
pub const DIMENSIONS_SMALL: [u8; 2] = [8, 10];
/// Corpus sizes swept at full scale.
pub const CORPUS_SIZES_FULL: [usize; 2] = [4_000, 16_000];
/// Corpus sizes swept at small scale.
pub const CORPUS_SIZES_SMALL: [usize; 2] = [1_000, 4_000];
/// Zipf exponents of keyword popularity.
pub const ZIPF_EXPONENTS: [f64; 2] = [0.8, 1.2];

/// Superset queries per sweep cell (half `|K| = 1`, half `|K| = 2`).
const QUERIES_PER_CELL: usize = 8;

/// One measured cell of the throughput sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputRow {
    /// Cube dimension `r`.
    pub r: u8,
    /// Objects indexed.
    pub corpus_size: usize,
    /// Zipf exponent of keyword popularity.
    pub zipf: f64,
    /// Superset queries evaluated per mode.
    pub queries: usize,
    /// Index inserts per second.
    pub insert_rate: f64,
    /// Pin lookups per second (one per indexed keyword set entry).
    pub pin_rate: f64,
    /// Superset queries/second, unfiltered string-compare scan.
    pub qps_unfiltered: f64,
    /// Superset queries/second, signature-prefiltered scan.
    pub qps_masked: f64,
    /// Superset queries/second, prefiltered + occupancy pruning.
    pub qps_masked_pruned: f64,
    /// Index entries scanned by the query batch (identical across the
    /// unpruned modes by the parity assert; deterministic).
    pub entries_scanned: u64,
    /// Nodes contacted by the unpruned batch (deterministic).
    pub nodes_unpruned: u64,
    /// Nodes contacted by the pruned batch (deterministic).
    pub nodes_pruned: u64,
}

impl ThroughputRow {
    /// Masked-over-unfiltered queries/second ratio (> 1 ⇒ the
    /// prefilter pays for itself).
    pub fn masked_speedup(&self) -> f64 {
        if self.qps_unfiltered == 0.0 {
            0.0
        } else {
            self.qps_masked / self.qps_unfiltered
        }
    }

    /// The deterministic (seed-reproducible) projection of the row —
    /// everything except the wall-clock rates.
    pub fn deterministic_key(&self) -> (u8, usize, u64, usize, u64, u64, u64) {
        (
            self.r,
            self.corpus_size,
            self.zipf.to_bits(),
            self.queries,
            self.entries_scanned,
            self.nodes_unpruned,
            self.nodes_pruned,
        )
    }
}

/// Times `op` over `count` iterations and returns ops/second.
fn rate(count: usize, op: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    op();
    let secs = t0.elapsed().as_secs_f64();
    if secs == 0.0 {
        f64::INFINITY
    } else {
        count as f64 / secs
    }
}

/// Runs the throughput sweep, prints the markdown table and JSON
/// series, and returns the rows.
///
/// # Panics
///
/// Panics if, for any query, the prefiltered outcome differs from the
/// unfiltered one in any field, or the pruned run returns a different
/// id set — the parity invariants CI runs as a smoke check.
pub fn run(ctx: &SharedContext) -> Vec<ThroughputRow> {
    section("Throughput — inserts, pin lookups, and superset scans per second");
    let (dimensions, corpus_sizes) = match ctx.scale {
        Scale::Full => (DIMENSIONS_FULL, CORPUS_SIZES_FULL),
        Scale::Small => (DIMENSIONS_SMALL, CORPUS_SIZES_SMALL),
    };

    let mut rows = Vec::new();
    for &r in &dimensions {
        for &n in &corpus_sizes {
            for &zipf in &ZIPF_EXPONENTS {
                let cfg = CorpusConfig {
                    zipf_exponent: zipf,
                    ..CorpusConfig::pchome().with_objects(n)
                };
                let cell_seed = ctx.seed ^ (u64::from(r) << 32) ^ (n as u64) ^ zipf.to_bits();
                let corpus = Corpus::generate(&cfg, cell_seed);
                let queries = QueryLog::generate(
                    &QueryLogConfig::pchome_day().with_queries(4_000),
                    &corpus,
                    cell_seed ^ 0xF00D,
                );
                let mut batch: Vec<KeywordSet> = queries.popular_of_size(1, QUERIES_PER_CELL / 2);
                batch.extend(queries.popular_of_size(2, QUERIES_PER_CELL / 2));

                // Inserts/second into a fresh index.
                let mut index = HypercubeIndex::new(r, ctx.seed).expect("valid");
                let pairs: Vec<(ObjectId, KeywordSet)> =
                    corpus.indexable().map(|(id, k)| (id, k.clone())).collect();
                let insert_rate = rate(pairs.len(), || {
                    for (id, k) in pairs {
                        index.insert(id, k).expect("non-empty");
                    }
                });

                // Parity first, untimed: the mask must be invisible in
                // every outcome field, pruning in the id set.
                let mut entries_scanned = 0u64;
                let mut nodes_unpruned = 0u64;
                let mut nodes_pruned = 0u64;
                for q in &batch {
                    let base = SupersetQuery::new(q.clone()).use_cache(false);
                    let plain = index
                        .superset_search(&base.clone().mask(false))
                        .expect("valid");
                    let masked = index.superset_search(&base.clone()).expect("valid");
                    assert_eq!(
                        masked, plain,
                        "prefilter changed the outcome for {q} (r={r}, n={n}, zipf={zipf})"
                    );
                    let pruned = index.superset_search(&base.prune(true)).expect("valid");
                    let mut ids: Vec<_> = plain.results.iter().map(|o| o.object).collect();
                    let mut pruned_ids: Vec<_> = pruned.results.iter().map(|o| o.object).collect();
                    ids.sort_unstable();
                    pruned_ids.sort_unstable();
                    assert_eq!(
                        ids, pruned_ids,
                        "pruning changed the result set for {q} (r={r}, n={n}, zipf={zipf})"
                    );
                    entries_scanned += plain.stats.entries_scanned;
                    nodes_unpruned += plain.stats.nodes_contacted;
                    nodes_pruned += pruned.stats.nodes_contacted;
                }

                // Pin lookups/second: one exact lookup per corpus set.
                let sets: Vec<&KeywordSet> = corpus.indexable().map(|(_, k)| k).collect();
                let mut pin_hits = 0usize;
                let pin_rate = rate(sets.len(), || {
                    for k in &sets {
                        pin_hits += index.pin_search(k).results.len();
                    }
                });
                assert!(pin_hits >= sets.len(), "pin search lost an object");

                // Superset queries/second, per mode.
                let mut timed = |query: &dyn Fn(&KeywordSet) -> SupersetQuery| {
                    rate(batch.len(), || {
                        for q in &batch {
                            let out = index.superset_search(&query(q)).expect("valid");
                            std::hint::black_box(out.results.len());
                        }
                    })
                };
                let qps_unfiltered =
                    timed(&|q| SupersetQuery::new(q.clone()).use_cache(false).mask(false));
                let qps_masked = timed(&|q| SupersetQuery::new(q.clone()).use_cache(false));
                let qps_masked_pruned =
                    timed(&|q| SupersetQuery::new(q.clone()).use_cache(false).prune(true));

                rows.push(ThroughputRow {
                    r,
                    corpus_size: n,
                    zipf,
                    queries: batch.len(),
                    insert_rate,
                    pin_rate,
                    qps_unfiltered,
                    qps_masked,
                    qps_masked_pruned,
                    entries_scanned,
                    nodes_unpruned,
                    nodes_pruned,
                });
            }
        }
    }

    let mut table = Table::new([
        "r",
        "objects",
        "zipf",
        "queries",
        "inserts/s",
        "pins/s",
        "qps (plain)",
        "qps (mask)",
        "qps (mask+prune)",
        "mask speedup",
    ]);
    for row in &rows {
        table.row([
            row.r.to_string(),
            row.corpus_size.to_string(),
            f(row.zipf, 1),
            row.queries.to_string(),
            f(row.insert_rate, 0),
            f(row.pin_rate, 0),
            f(row.qps_unfiltered, 1),
            f(row.qps_masked, 1),
            f(row.qps_masked_pruned, 1),
            f(row.masked_speedup(), 2),
        ]);
    }
    print!("{}", table.to_markdown());

    let wins = rows.iter().filter(|r| r.masked_speedup() > 1.0).count();
    println!(
        "\nmask-prefiltered scan beat the unfiltered baseline in {wins}/{} cells",
        rows.len()
    );

    println!("\n### JSON series (vs corpus size)\n");
    for &r in &dimensions {
        for &zipf in &ZIPF_EXPONENTS {
            let points: Vec<(f64, f64)> = rows
                .iter()
                .filter(|row| row.r == r && row.zipf == zipf)
                .map(|row| (row.corpus_size as f64, row.masked_speedup()))
                .collect();
            println!(
                "{}",
                json_series(
                    "throughput_mask_speedup",
                    &[("r", r.to_string()), ("zipf", f(zipf, 1))],
                    "corpus_size",
                    "masked / unfiltered qps",
                    &points,
                )
            );
        }
    }
    rows
}

/// Writes the sweep as a seed-stamped JSON object (the
/// `BENCH_throughput.json` artifact): `{"seed":N,"rows":[…]}`.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn write_json(rows: &[ThroughputRow], seed: u64, path: &Path) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"r\":{},\"corpus_size\":{},\"zipf\":{:.2},\"queries\":{},\
                 \"insert_rate\":{:.1},\"pin_rate\":{:.1},\
                 \"qps_unfiltered\":{:.2},\"qps_masked\":{:.2},\
                 \"qps_masked_pruned\":{:.2},\"masked_speedup\":{:.4},\
                 \"entries_scanned\":{},\"nodes_unpruned\":{},\
                 \"nodes_pruned\":{}}}",
                r.r,
                r.corpus_size,
                r.zipf,
                r.queries,
                r.insert_rate,
                r.pin_rate,
                r.qps_unfiltered,
                r.qps_masked,
                r.qps_masked_pruned,
                r.masked_speedup(),
                r.entries_scanned,
                r.nodes_unpruned,
                r.nodes_pruned,
            )
        })
        .collect();
    crate::report::write_json_artifact(path, seed, &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_holds_invariants_and_counts_are_deterministic() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let rows = run(&ctx);
        assert_eq!(
            rows.len(),
            DIMENSIONS_SMALL.len() * CORPUS_SIZES_SMALL.len() * ZIPF_EXPONENTS.len()
        );
        for row in &rows {
            assert!(row.queries > 0, "empty query batch in {row:?}");
            assert!(row.insert_rate > 0.0, "{row:?}");
            assert!(row.pin_rate > 0.0, "{row:?}");
            assert!(row.qps_unfiltered > 0.0, "{row:?}");
            assert!(row.qps_masked > 0.0, "{row:?}");
            assert!(row.qps_masked_pruned > 0.0, "{row:?}");
            assert!(row.entries_scanned > 0, "{row:?}");
            assert!(row.nodes_pruned <= row.nodes_unpruned, "{row:?}");
        }
        // Wall-clock rates vary run to run; the counted work must not.
        let again = run(&ctx);
        let keys: Vec<_> = rows.iter().map(ThroughputRow::deterministic_key).collect();
        let again_keys: Vec<_> = again.iter().map(ThroughputRow::deterministic_key).collect();
        assert_eq!(keys, again_keys, "counts are not deterministic");
    }

    #[test]
    fn json_artifact_shape() {
        let row = ThroughputRow {
            r: 10,
            corpus_size: 1_000,
            zipf: 0.8,
            queries: 8,
            insert_rate: 50_000.0,
            pin_rate: 200_000.0,
            qps_unfiltered: 100.0,
            qps_masked: 150.0,
            qps_masked_pruned: 400.0,
            entries_scanned: 12_345,
            nodes_unpruned: 1_024,
            nodes_pruned: 96,
        };
        let dir = std::env::temp_dir().join("hyperdex_throughput_json_test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("BENCH_throughput.json");
        write_json(&[row], 7, &path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with("{\"seed\":7,\"rows\":[\n"));
        assert!(text.contains("\"qps_masked\":150.00"));
        assert!(text.contains("\"masked_speedup\":1.5000"));
        assert!(text.contains("\"entries_scanned\":12345"));
        assert!(text.trim_end().ends_with("]}"));
    }
}
