//! Figure 5: the distribution of keyword-set sizes.
//!
//! The paper reports a unimodal histogram over the PCHome corpus with
//! an average of 7.3 keywords per object. We print the synthetic
//! corpus's histogram and check the calibration targets.

use crate::report::{f, pct, section, Table};
use crate::SharedContext;

/// Summary statistics returned for tests and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Summary {
    /// Mean keywords per object (paper: 7.3).
    pub mean: f64,
    /// The modal set size.
    pub mode: usize,
    /// Largest set size present.
    pub max: usize,
}

/// Prints the histogram and returns summary statistics.
pub fn run(ctx: &SharedContext) -> Fig5Summary {
    section("Figure 5 — distribution of keyword-set sizes");
    let hist = ctx.corpus.set_size_histogram();
    let total = ctx.corpus.len();
    let mut table = Table::new(["keywords", "objects", "fraction"]);
    for (size, &count) in hist.iter().enumerate() {
        if size == 0 || count == 0 {
            continue;
        }
        table.row([
            size.to_string(),
            count.to_string(),
            pct(count as f64 / total as f64),
        ]);
    }
    print!("{}", table.to_markdown());

    let mean = ctx.corpus.mean_keywords_per_object();
    let mode = hist
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(s, _)| s)
        .unwrap_or(0);
    let max = hist.len().saturating_sub(1);
    println!(
        "\nmean = {} keywords/object (paper: 7.3); mode = {mode}; max = {max}",
        f(mean, 2)
    );
    Fig5Summary { mean, mode, max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn calibration_matches_paper() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let summary = run(&ctx);
        assert!((summary.mean - 7.3).abs() < 0.4, "mean {}", summary.mean);
        assert!((5..=8).contains(&summary.mode), "mode {}", summary.mode);
        assert!(summary.max <= 30);
    }
}
