//! Fault-injected runtime: recall and latency under lossy wires and
//! worker crashes, by recovery strategy.
//!
//! The robustness claim of the threaded runtime is graded, not binary:
//! under frame loss and crash-stops, **re-delegation** (Lemma 3.2's
//! subtree reconstruction, ported from the simulator into the shared
//! [`hyperdex_core::FtCoordinator`]) keeps recall at 1.0 while plain
//! **retry-only** recovery degrades — it can only write off a dead
//! child's whole subtree. This sweep measures that difference across
//! **frame-loss rate** × **worker crashes** × **strategy** on a fixed
//! 4-worker cluster:
//!
//! * every query's result set is scored against the fault-free direct
//!   engine (recall = found/truth, aggregated over the query mix);
//! * per-query wall latency is reported as p50/p99 — the price of
//!   timeouts, backoff, and supervised repair is visible in the tail;
//! * retries, timeouts, re-delegations, supervisor respawns, and the
//!   injector's dropped/duplicated frame counts come from the
//!   [`hyperdex_core::CoverageReport`]s and the conservation-checked
//!   shutdown report. Per-frame fates replay exactly for a seed, but
//!   *how many* frames a run sends depends on wall-clock timeout races
//!   — so the sweep asserts determinism only on the schedule-driven
//!   columns (crash/respawn counts) and reports the rest;
//! * the acceptance gate runs in-process: with **re-delegation**, at
//!   ≤ 10% frame loss and a mid-scan crash of a data-owning worker,
//!   recall must be exactly 1.0 — the bench panics otherwise (CI runs
//!   this as its fault smoke).

use std::path::Path;
use std::time::Instant;

use hyperdex_core::{
    HypercubeIndex, KeywordHasher, KeywordSet, ObjectId, RecoveryStrategy, SupersetQuery,
};
use hyperdex_runtime::{FaultPlan, FtSearchOptions, NodeRuntime, RuntimeConfig};
use hyperdex_workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

use crate::report::{f, json_series, section, Table};
use crate::SharedContext;

/// Frame-loss rates swept, in per-mille (0%, 5%, 10%).
pub const LOSS_PER_MILLE: [u16; 3] = [0, 50, 100];
/// Crash counts swept (0 = wires only; 1 = a data-owning worker dies
/// on its first mid-scan frame).
pub const CRASHES: [u32; 2] = [0, 1];
/// Recovery strategies swept.
pub const STRATEGIES: [RecoveryStrategy; 2] =
    [RecoveryStrategy::RetryOnly, RecoveryStrategy::Redelegate];

/// Cube dimension: dense vertices, long broad-query traversals.
const FAULTS_R: u8 = 8;
/// Worker threads per cell.
const FAULTS_WORKERS: u32 = 4;
/// Objects indexed per cell.
const FAULTS_OBJECTS: usize = 2_000;

/// One measured cell of the fault sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsRow {
    /// Cube dimension `r`.
    pub r: u8,
    /// Worker threads.
    pub workers: u32,
    /// Injected frame loss, per mille of traversal sends.
    pub loss_per_mille: u16,
    /// Scheduled worker crashes.
    pub crashes: u32,
    /// Recovery strategy name.
    pub strategy: &'static str,
    /// Queries scored.
    pub queries: usize,
    /// Found / truth over all queries (1.0 = nothing lost).
    pub recall: f64,
    /// Queries whose coverage reported every vertex reached.
    pub complete: usize,
    /// Median per-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    pub p99_us: f64,
    /// Retransmissions across all queries.
    pub retries: u64,
    /// Children declared dead across all queries.
    pub timeouts: u64,
    /// Dead subtrees re-delegated across all queries.
    pub redelegations: u64,
    /// Workers the supervisor respawned.
    pub respawns: u64,
    /// Frames the injector (or a crash) destroyed.
    pub dropped_frames: u64,
    /// Extra frame copies the injector delivered.
    pub duplicated_frames: u64,
}

impl FaultsRow {
    /// The seed-reproducible projection of the row: the cell identity
    /// plus the schedule-driven counters. Frame and retry totals are
    /// excluded — per-frame fates replay exactly, but how many frames
    /// a run sends depends on wall-clock timeout races.
    pub fn deterministic_key(&self) -> (u8, u32, u16, u32, &'static str, usize, u64) {
        (
            self.r,
            self.workers,
            self.loss_per_mille,
            self.crashes,
            self.strategy,
            self.queries,
            self.respawns,
        )
    }
}

fn strategy_name(s: RecoveryStrategy) -> &'static str {
    match s {
        RecoveryStrategy::Naive => "naive",
        RecoveryStrategy::RetryOnly => "retry",
        RecoveryStrategy::Redelegate => "redelegate",
        RecoveryStrategy::ReplicatedFailover => "failover",
    }
}

/// Runs the fault sweep, prints the markdown table and JSON series,
/// and returns the rows.
///
/// # Panics
///
/// Panics when the acceptance gate fails — re-delegation must hold
/// recall at exactly 1.0 for every swept loss rate (≤ 10%) with a
/// worker crash — or when any shutdown violates frame conservation.
pub fn run(ctx: &SharedContext) -> Vec<FaultsRow> {
    section("Faults — recall and latency under loss, crashes, and recovery strategy");

    let cell_seed = ctx.seed ^ 0xFA17_0000;
    let corpus = Corpus::generate(
        &CorpusConfig::pchome().with_objects(FAULTS_OBJECTS),
        cell_seed,
    );
    let log = QueryLog::generate(
        &QueryLogConfig::pchome_day().with_queries(2_000),
        &corpus,
        cell_seed ^ 0xF00D,
    );
    let entries: Vec<(ObjectId, KeywordSet)> =
        corpus.indexable().map(|(id, k)| (id, k.clone())).collect();

    // Query mix: broad (|K|=1) and narrower (|K|=2) popular sets.
    let mut queries: Vec<KeywordSet> = log.popular_of_size(1, 4);
    queries.extend(log.popular_of_size(2, 4));
    assert!(!queries.is_empty(), "query log produced no popular sets");

    // Fault-free ground truth per query, from the direct engine.
    let mut direct = HypercubeIndex::new(FAULTS_R, cell_seed).expect("valid r");
    for (id, k) in &entries {
        direct.insert(*id, k.clone()).expect("non-empty");
    }
    let truths: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| {
            let mut ids: Vec<u64> = direct
                .superset_search(
                    &SupersetQuery::new(q.clone())
                        .threshold(usize::MAX - 1)
                        .use_cache(false),
                )
                .expect("valid query")
                .results
                .iter()
                .map(|m| m.object.raw())
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        })
        .collect();

    // The crash victim provably owns indexed state: the home vertex of
    // the first corpus object, located under the placement policy the
    // runtime will actually use.
    let hasher = KeywordHasher::new(FAULTS_R, cell_seed).expect("valid r");
    let victim = RuntimeConfig::new(FAULTS_R, FAULTS_WORKERS)
        .seed(cell_seed)
        .shard_map()
        .owner_of(hasher.vertex_for(&entries[0].1).bits());

    let mut rows = Vec::new();
    for &loss in &LOSS_PER_MILLE {
        for &crashes in &CRASHES {
            for &strategy in &STRATEGIES {
                // Loss is split: 80% outright drops, 10% duplicates,
                // 10% delays (which reorder).
                let mut plan = FaultPlan::lossy(
                    cell_seed ^ u64::from(loss),
                    loss - loss / 5,
                    loss / 10,
                    loss / 10,
                );
                for c in 0..crashes {
                    plan = plan.crash(victim, u64::from(c) + 1);
                }
                // Patience is sized for a loaded machine (the sweep
                // also runs inside the parallel test suite): timers
                // only fire on real drops/crashes, so generous budgets
                // cost nothing in the fault-free cells but keep
                // scheduler starvation from masquerading as frame
                // loss and exhausting the retry budget.
                let opts = FtSearchOptions {
                    strategy,
                    max_retries: 6,
                    base_timeout_ms: 50,
                    attempt_timeout_ms: 5_000,
                    attempts: 5,
                };

                let mut rt = NodeRuntime::start_faulted(
                    RuntimeConfig::new(FAULTS_R, FAULTS_WORKERS).seed(cell_seed),
                    plan,
                )
                .expect("valid r");
                rt.bulk_load(entries.iter().map(|(id, k)| (*id, k)))
                    .expect("non-empty sets");
                rt.flush();

                let mut lat_us: Vec<f64> = Vec::new();
                let (mut found, mut truth_total) = (0usize, 0usize);
                let mut complete = 0usize;
                let (mut retries, mut timeouts, mut redelegations) = (0u64, 0u64, 0u64);
                for (q, truth) in queries.iter().zip(&truths) {
                    let t0 = Instant::now();
                    let out = rt
                        .superset_search_ft(q, usize::MAX - 1, &opts)
                        .expect("non-zero threshold");
                    lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                    let mut got: Vec<u64> = out.matches.iter().map(|m| m.object.raw()).collect();
                    got.sort_unstable();
                    got.dedup();
                    found += got
                        .iter()
                        .filter(|id| truth.binary_search(id).is_ok())
                        .count();
                    truth_total += truth.len();
                    complete += usize::from(out.complete);
                    if let Some(cov) = &out.coverage {
                        retries += cov.retries;
                        timeouts += cov.timeouts;
                        redelegations += cov.redelegations;
                    }
                }
                let report = rt.shutdown();
                report.assert_conserved();

                let recall = if truth_total == 0 {
                    1.0
                } else {
                    found as f64 / truth_total as f64
                };
                // The acceptance gate: re-delegation survives every
                // swept loss rate plus a data-owning crash at full
                // recall.
                if strategy == RecoveryStrategy::Redelegate {
                    assert!(
                        (recall - 1.0).abs() < f64::EPSILON,
                        "re-delegation lost recall: loss={loss}‰ crashes={crashes} \
                         recall={recall}"
                    );
                }

                lat_us.sort_by(|a, b| a.total_cmp(b));
                let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
                rows.push(FaultsRow {
                    r: FAULTS_R,
                    workers: FAULTS_WORKERS,
                    loss_per_mille: loss,
                    crashes,
                    strategy: strategy_name(strategy),
                    queries: queries.len(),
                    recall,
                    complete,
                    p50_us: pct(0.50),
                    p99_us: pct(0.99),
                    retries,
                    timeouts,
                    redelegations,
                    respawns: report.supervisor.respawns,
                    dropped_frames: report.total_dropped(),
                    duplicated_frames: report.total_duplicated(),
                });
            }
        }
    }

    let mut table = Table::new([
        "loss ‰", "crashes", "strategy", "queries", "recall", "complete", "p50 µs", "p99 µs",
        "retries", "timeouts", "redeleg", "respawns", "dropped", "dup",
    ]);
    for row in &rows {
        table.row([
            row.loss_per_mille.to_string(),
            row.crashes.to_string(),
            row.strategy.to_string(),
            row.queries.to_string(),
            f(row.recall, 4),
            row.complete.to_string(),
            f(row.p50_us, 1),
            f(row.p99_us, 1),
            row.retries.to_string(),
            row.timeouts.to_string(),
            row.redelegations.to_string(),
            row.respawns.to_string(),
            row.dropped_frames.to_string(),
            row.duplicated_frames.to_string(),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "\nre-delegation held recall 1.0 across loss {:?}‰ × crashes {:?} (asserted in-run)",
        LOSS_PER_MILLE, CRASHES
    );

    println!("\n### JSON series (vs loss rate)\n");
    for &crashes in &CRASHES {
        for &strategy in &STRATEGIES {
            let name = strategy_name(strategy);
            let points: Vec<(f64, f64)> = rows
                .iter()
                .filter(|row| row.crashes == crashes && row.strategy == name)
                .map(|row| (f64::from(row.loss_per_mille) / 10.0, row.recall))
                .collect();
            println!(
                "{}",
                json_series(
                    "faults_recall",
                    &[
                        ("strategy", name.to_string()),
                        ("crashes", crashes.to_string()),
                    ],
                    "loss %",
                    "recall",
                    &points,
                )
            );
        }
    }
    rows
}

/// Writes the sweep as a seed-stamped JSON object (the
/// `BENCH_faults.json` artifact): `{"seed":N,"rows":[…]}`.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn write_json(rows: &[FaultsRow], seed: u64, path: &Path) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"r\":{},\"workers\":{},\"loss_per_mille\":{},\"crashes\":{},\
                 \"strategy\":\"{}\",\"queries\":{},\"recall\":{:.6},\"complete\":{},\
                 \"p50_us\":{:.2},\"p99_us\":{:.2},\"retries\":{},\"timeouts\":{},\
                 \"redelegations\":{},\"respawns\":{},\"dropped_frames\":{},\
                 \"duplicated_frames\":{}}}",
                r.r,
                r.workers,
                r.loss_per_mille,
                r.crashes,
                r.strategy,
                r.queries,
                r.recall,
                r.complete,
                r.p50_us,
                r.p99_us,
                r.retries,
                r.timeouts,
                r.redelegations,
                r.respawns,
                r.dropped_frames,
                r.duplicated_frames,
            )
        })
        .collect();
    crate::report::write_json_artifact(path, seed, &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn sweep_grades_strategies_and_is_deterministic() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let rows = run(&ctx);
        assert_eq!(
            rows.len(),
            LOSS_PER_MILLE.len() * CRASHES.len() * STRATEGIES.len()
        );
        for row in &rows {
            assert!(row.queries > 0, "{row:?}");
            assert!((0.0..=1.0).contains(&row.recall), "{row:?}");
            assert!(row.p50_us <= row.p99_us, "{row:?}");
            if row.strategy == "redelegate" {
                assert!((row.recall - 1.0).abs() < f64::EPSILON, "{row:?}");
            }
            if row.loss_per_mille == 0 && row.crashes == 0 {
                assert_eq!(row.recall, 1.0, "fault-free cell lost recall: {row:?}");
                assert_eq!(row.dropped_frames, 0, "{row:?}");
                assert_eq!(row.respawns, 0, "{row:?}");
            }
            if row.crashes > 0 {
                assert!(row.respawns >= 1, "crash cell never respawned: {row:?}");
            }
        }
        // Fault schedules and frame accounting replay exactly.
        let again = run(&ctx);
        let keys: Vec<_> = rows.iter().map(FaultsRow::deterministic_key).collect();
        let again_keys: Vec<_> = again.iter().map(FaultsRow::deterministic_key).collect();
        assert_eq!(keys, again_keys, "fault sweep is not deterministic");
    }

    #[test]
    fn json_artifact_shape() {
        let row = FaultsRow {
            r: 8,
            workers: 4,
            loss_per_mille: 100,
            crashes: 1,
            strategy: "redelegate",
            queries: 8,
            recall: 1.0,
            complete: 7,
            p50_us: 900.0,
            p99_us: 40_000.0,
            retries: 31,
            timeouts: 2,
            redelegations: 2,
            respawns: 1,
            dropped_frames: 120,
            duplicated_frames: 14,
        };
        let dir = std::env::temp_dir().join("hyperdex_faults_json_test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("BENCH_faults.json");
        write_json(&[row], 42, &path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with("{\"seed\":42,\"rows\":[\n"));
        assert!(text.contains("\"strategy\":\"redelegate\""));
        assert!(text.contains("\"recall\":1.000000"));
        assert!(text.contains("\"respawns\":1"));
        assert!(text.trim_end().ends_with("]}"));
    }
}
