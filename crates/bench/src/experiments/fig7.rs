//! Figure 7: object distribution vs. node distribution over
//! `|One(u)| = x`.
//!
//! For each `r`, the node distribution is `Binomial(r, ½)` (centered at
//! `r/2`); the object distribution is where `F_h` actually lands the
//! corpus, which is pinned near the keyword-set sizes regardless of
//! `r`. The curves overlap best around `r = 10` for the PCHome set-size
//! profile — the paper's explanation for why `r = 10` balances load
//! best in Figure 6 — and the same conclusion falls out analytically
//! via Equation (1) ([`hyperdex_core::analysis::recommended_dimension`]).

use hyperdex_core::analysis;
use hyperdex_core::HypercubeIndex;

use crate::report::{f, pct, section, Table};
use crate::SharedContext;

/// One `r`'s pair of distributions plus their total-variation distance.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Series {
    /// The hypercube dimension.
    pub r: u8,
    /// `node[x]` = fraction of vertices with `|One(u)| = x`.
    pub node: Vec<f64>,
    /// `object[x]` = fraction of objects indexed at such vertices.
    pub object: Vec<f64>,
    /// Total-variation distance between the two.
    pub tv_distance: f64,
}

/// The eight dimensions charted (as in the paper's eight panels).
pub const DIMENSIONS: [u8; 8] = [6, 8, 9, 10, 11, 12, 14, 16];

/// Runs the sweep and returns every series.
pub fn run(ctx: &SharedContext) -> Vec<Fig7Series> {
    section("Figure 7 — object vs. node distribution over |One(u)|");
    let mut all = Vec::new();
    for &r in &DIMENSIONS {
        let mut index = HypercubeIndex::new(r, ctx.seed).expect("valid dimension");
        let mut object_counts = vec![0usize; r as usize + 1];
        for (id, keywords) in ctx.corpus.indexable() {
            let vertex = index.insert(id, keywords.clone()).expect("non-empty");
            object_counts[vertex.one_count() as usize] += 1;
        }
        let total = ctx.corpus.len() as f64;
        let object: Vec<f64> = object_counts.iter().map(|&c| c as f64 / total).collect();
        let node: Vec<f64> = (0..=u32::from(r))
            .map(|x| analysis::node_fraction(u32::from(r), x))
            .collect();
        let tv_distance = node
            .iter()
            .zip(&object)
            .map(|(n, o)| (n - o).abs())
            .sum::<f64>()
            / 2.0;
        all.push(Fig7Series {
            r,
            node,
            object,
            tv_distance,
        });
    }

    let mut table = Table::new(["r", "node peak @x", "object peak @x", "TV distance"]);
    for s in &all {
        table.row([
            s.r.to_string(),
            peak(&s.node).to_string(),
            peak(&s.object).to_string(),
            f(s.tv_distance, 3),
        ]);
    }
    print!("{}", table.to_markdown());

    // Detail panels: per-x fractions for the most interesting r values.
    for s in all.iter().filter(|s| [8, 10, 12].contains(&s.r)) {
        println!("\nr = {}: x, node%, object%", s.r);
        for x in 0..=s.r as usize {
            println!("  {x:>2}  {:>7}  {:>7}", pct(s.node[x]), pct(s.object[x]));
        }
    }

    // The paper's "how to choose r without experiment" guidance.
    let weights = ctx.corpus.size_weights();
    let recommended = analysis::recommended_dimension(&weights, 6..=16);
    println!(
        "\nEquation (1) recommendation for this corpus: r = {recommended} \
         (paper found r ≈ 10 optimal)"
    );
    all
}

fn peak(fractions: &[f64]) -> usize {
    fractions
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn reproduces_paper_shape() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let all = run(&ctx);
        let tv = |r: u8| {
            all.iter()
                .find(|s| s.r == r)
                .expect("series present")
                .tv_distance
        };
        // Distributions are closest near r = 10 and drift apart towards
        // both ends of the sweep (the paper's conclusion).
        let best = (9..=11).map(tv).fold(f64::INFINITY, f64::min);
        assert!(best < tv(6), "r≈10 beats r=6: {best} vs {}", tv(6));
        assert!(best < tv(16), "r≈10 beats r=16: {best} vs {}", tv(16));
        // Node distribution peaks at r/2 (binomial; either central value
        // for odd r, where the two middle binomials tie).
        for s in &all {
            let p = peak(&s.node);
            let lo = (s.r / 2) as usize;
            let hi = s.r.div_ceil(2) as usize;
            assert!((lo..=hi).contains(&p), "r={}: peak {p}", s.r);
        }
        // Fractions are distributions.
        for s in &all {
            let n: f64 = s.node.iter().sum();
            let o: f64 = s.object.iter().sum();
            assert!((n - 1.0).abs() < 1e-9 && (o - 1.0).abs() < 1e-9);
        }
    }
}
