//! Figure 6: load distribution — hypercube scheme vs. direct DHT
//! hashing vs. distributed inverted index.
//!
//! For each `r`, index the whole corpus, rank nodes heavy→light, and
//! plot the cumulative fraction of objects vs. the fraction of nodes.
//! The paper's findings, which this run reproduces in shape:
//!
//! * the hypercube curve approaches the `DHT-r` reference as `r` grows
//!   from 6 to ~10, then worsens beyond (object distribution drifts off
//!   the binomial node distribution);
//! * `DII-r` is *far* more skewed than either (Zipf keyword popularity
//!   lands on single nodes).

use hyperdex_core::baseline::{DirectHashPlacement, DistributedInvertedIndex};
use hyperdex_core::HypercubeIndex;
use hyperdex_workload::stats::{gini, ranked_cumulative_curve};

use crate::report::{f, pct, section, Table};
use crate::SharedContext;

/// One scheme's load curve plus its Gini coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSeries {
    /// Series label (`hypercube-10`, `DHT-10`, `DII-10`, …).
    pub label: String,
    /// Ranked cumulative curve points `(node fraction, object fraction)`.
    pub curve: Vec<(f64, f64)>,
    /// Gini coefficient over the full `2^r` node population.
    pub gini: f64,
}

/// Curve resolution (fractions of the node population).
const CURVE_POINTS: usize = 20;

/// Runs the load-distribution sweep and returns every series.
pub fn run(ctx: &SharedContext) -> Vec<LoadSeries> {
    section("Figure 6 — load distribution (ranked cumulative curves)");
    let mut series = Vec::new();

    // Hypercube scheme for r = 6..=16 (even r, as in the paper's chart).
    for r in [6u8, 8, 10, 12, 14, 16] {
        let mut index = HypercubeIndex::new(r, ctx.seed).expect("valid dimension");
        for (id, keywords) in ctx.corpus.indexable() {
            index.insert(id, keywords.clone()).expect("non-empty sets");
        }
        let loads: Vec<usize> = index.node_loads().iter().map(|&(_, l)| l).collect();
        series.push(make_series(format!("hypercube-{r}"), &loads, 1u64 << r));
    }

    // DHT direct-hash references.
    for r in [6u8, 10, 16] {
        let mut dht = DirectHashPlacement::new(r, ctx.seed).expect("valid dimension");
        for (id, _) in ctx.corpus.indexable() {
            dht.insert(id);
        }
        let loads: Vec<usize> = dht.node_loads().iter().map(|&(_, l)| l).collect();
        series.push(make_series(format!("DHT-{r}"), &loads, 1u64 << r));
    }

    // Distributed inverted index (the paper shows r = 10, 12, 14).
    for r in [10u8, 12, 14] {
        let mut dii = DistributedInvertedIndex::new(r, ctx.seed).expect("valid dimension");
        for (id, keywords) in ctx.corpus.indexable() {
            dii.insert(id, keywords);
        }
        let loads: Vec<usize> = dii.node_loads().iter().map(|&(_, l)| l).collect();
        series.push(make_series(format!("DII-{r}"), &loads, 1u64 << r));
    }

    // Print: one row per series, sampled at 10% / 25% / 50% node ranks,
    // plus Gini. (Full curves available programmatically.)
    let mut table = Table::new(["series", "objects @10% nodes", "@25%", "@50%", "gini"]);
    for s in &series {
        table.row([
            s.label.clone(),
            pct(at(&s.curve, 0.10)),
            pct(at(&s.curve, 0.25)),
            pct(at(&s.curve, 0.50)),
            f(s.gini, 3),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "\nPerfect balance = 10%/25%/50% exactly; lower gini is better. \
         Paper: hypercube ≈ DHT at r=10, DII far more skewed."
    );
    series
}

fn make_series(label: String, loads: &[usize], total_nodes: u64) -> LoadSeries {
    LoadSeries {
        label,
        curve: ranked_cumulative_curve(loads, total_nodes, CURVE_POINTS),
        gini: gini(loads, total_nodes),
    }
}

/// Linear interpolation of the cumulative curve at node fraction `x`.
pub fn at(curve: &[(f64, f64)], x: f64) -> f64 {
    match curve.windows(2).find(|w| w[1].0 >= x) {
        Some(w) => {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if (x1 - x0).abs() < f64::EPSILON {
                y1
            } else {
                y0 + (y1 - y0) * (x - x0) / (x1 - x0)
            }
        }
        None => curve.last().map_or(0.0, |&(_, y)| y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn reproduces_paper_shape() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let series = run(&ctx);
        let find = |label: &str| {
            series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("missing series {label}"))
        };
        // (1) Load balance peaks near r = 10 for this set-size profile:
        // the hypercube Gini is minimized at r ∈ {8, 10, 12} and worsens
        // towards both ends of the sweep (the paper's Figure 6 story).
        let gini_of = |r: u8| find(&format!("hypercube-{r}")).gini;
        let best_r = [6u8, 8, 10, 12, 14, 16]
            .into_iter()
            .min_by(|&a, &b| gini_of(a).partial_cmp(&gini_of(b)).expect("no NaN"))
            .expect("non-empty");
        assert!(
            [8u8, 10, 12].contains(&best_r),
            "best r should be near 10, got {best_r}"
        );
        assert!(gini_of(6) > gini_of(best_r));
        assert!(gini_of(16) > gini_of(best_r));
        // (2) DII is far more skewed than the hypercube at the same r.
        assert!(
            find("DII-10").gini > find("hypercube-10").gini + 0.1,
            "DII should be much more skewed"
        );
        // (3) Every curve is monotone and ends at (1, 1).
        for s in &series {
            let &(x, y) = s.curve.last().unwrap();
            assert!(
                (x - 1.0).abs() < 1e-9 && (y - 1.0).abs() < 1e-9,
                "{}",
                s.label
            );
        }
    }

    #[test]
    fn interpolation_matches_endpoints() {
        let curve = vec![(0.0, 0.0), (0.5, 0.8), (1.0, 1.0)];
        assert!((at(&curve, 0.5) - 0.8).abs() < 1e-12);
        assert!((at(&curve, 0.25) - 0.4).abs() < 1e-12);
        assert!((at(&curve, 1.0) - 1.0).abs() < 1e-12);
    }
}
