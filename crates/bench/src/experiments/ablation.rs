//! Ablations over the design choices DESIGN.md calls out.
//!
//! Not published figures, but the studies a systems reviewer would ask
//! for:
//!
//! 1. **Sequential vs. level-parallel** traversal — message count vs.
//!    round count (§3.5's latency/overhead trade-off).
//! 2. **Top-down vs. bottom-up** — generality of the first results.
//! 3. **Insert/delete cost vs. DII** — the paper's 1-lookup-vs-k claim.
//! 4. **Monolithic vs. decomposed** hypercube (§3.4's last remark).
//! 5. **Query-load distribution** — §3.4's hot-spot argument: replaying
//!    the skewed log, how evenly does *query-processing* load spread
//!    over nodes under the hypercube scheme vs. the DII (where one node
//!    owns each keyword)?

use hyperdex_core::baseline::DistributedInvertedIndex;
use hyperdex_core::decompose::DecomposedIndex;
use hyperdex_core::search::{ExecutionMode, TraversalOrder};
use hyperdex_core::{HypercubeIndex, SupersetQuery};

use crate::report::{f, section, Table};
use crate::SharedContext;

/// Aggregated ablation results (consumed by tests and EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationSummary {
    /// Gini of per-node *query-processing* load, hypercube scheme.
    pub hypercube_query_gini: f64,
    /// Gini of per-node query-processing load, DII baseline.
    pub dii_query_gini: f64,
    /// Sequential protocol: average messages per exhaustive query.
    pub sequential_messages: f64,
    /// Sequential protocol: nodes contacted (== time in message units).
    pub sequential_time: f64,
    /// Parallel protocol: average rounds per exhaustive query.
    pub parallel_rounds: f64,
    /// Average extra keywords of the first top-down result.
    pub top_down_first_extra: f64,
    /// Average extra keywords of the first bottom-up result.
    pub bottom_up_first_extra: f64,
    /// Hypercube nodes touched per insert (always 1).
    pub hypercube_insert_cost: f64,
    /// DII nodes touched per insert (≈ keywords per object).
    pub dii_insert_cost: f64,
}

/// Runs all ablations and returns the summary.
pub fn run(ctx: &SharedContext) -> AblationSummary {
    section("Ablations — protocol variants and §3.4 remarks");
    let r = 10u8;
    let mut index = HypercubeIndex::new(r, ctx.seed).expect("valid dimension");
    for (id, keywords) in ctx.corpus.indexable() {
        index.insert(id, keywords.clone()).expect("non-empty");
    }

    // --- 1 & 2: traversal variants over popular 2-keyword queries.
    let queries = ctx.queries.popular_of_size(2, 10);
    let mut seq_msgs = 0.0;
    let mut seq_time = 0.0;
    let mut par_rounds = 0.0;
    let mut td_extra = 0.0;
    let mut bu_extra = 0.0;
    let mut measured = 0.0;
    for q in &queries {
        let base = SupersetQuery::new(q.clone()).use_cache(false);
        let seq = index.superset_search(&base.clone()).expect("valid");
        let par = index
            .superset_search(&base.clone().mode(ExecutionMode::LevelParallel))
            .expect("valid");
        let td = index
            .superset_search(&base.clone().threshold(1))
            .expect("valid");
        let bu = index
            .superset_search(&base.clone().threshold(1).order(TraversalOrder::BottomUp))
            .expect("valid");
        if td.results.is_empty() || bu.results.is_empty() {
            continue;
        }
        seq_msgs += seq.stats.total_messages() as f64;
        seq_time += seq.stats.nodes_contacted as f64;
        par_rounds += f64::from(par.stats.rounds);
        td_extra += f64::from(td.results[0].extra_keywords);
        bu_extra += f64::from(bu.results[0].extra_keywords);
        measured += 1.0;
    }
    let measured = f64::max(measured, 1.0);
    let summary_traversal = (
        seq_msgs / measured,
        seq_time / measured,
        par_rounds / measured,
        td_extra / measured,
        bu_extra / measured,
    );

    let mut t = Table::new(["variant", "avg messages", "avg time (rounds/messages)"]);
    t.row([
        "sequential".into(),
        f(summary_traversal.0, 1),
        f(summary_traversal.1, 1),
    ]);
    t.row([
        "level-parallel".to_string(),
        f(summary_traversal.0, 1),
        f(summary_traversal.2, 1),
    ]);
    print!("{}", t.to_markdown());
    println!(
        "\nfirst-result extra keywords: top-down = {}, bottom-up = {}",
        f(summary_traversal.3, 2),
        f(summary_traversal.4, 2)
    );

    // --- 3: insert cost vs. DII.
    let mut dii = DistributedInvertedIndex::new(r, ctx.seed).expect("valid dimension");
    let mut dii_cost = 0usize;
    let sample = ctx.corpus.records().iter().take(2_000);
    let mut sampled = 0usize;
    for record in sample {
        dii_cost += dii.insert(record.object_id(), &record.keywords);
        sampled += 1;
    }
    let dii_insert_cost = dii_cost as f64 / sampled.max(1) as f64;
    println!(
        "\ninsert cost (nodes touched per object): hypercube = 1.0, DII = {}",
        f(dii_insert_cost, 2)
    );

    // --- 4: monolithic vs. decomposed search cost.
    let mut deco = DecomposedIndex::new(ctx.seed);
    deco.add_field("kw", 6).expect("valid dimension");
    for (id, keywords) in ctx.corpus.indexable().take(2_000) {
        deco.insert("kw", id, keywords.clone()).expect("insertable");
    }
    if let Some(q) = queries.first() {
        let mono = index
            .superset_search(&SupersetQuery::new(q.clone()).use_cache(false))
            .expect("valid");
        let sub = deco
            .superset_search("kw", &SupersetQuery::new(q.clone()).use_cache(false))
            .expect("field exists");
        println!(
            "decomposition: monolithic r=10 contacted {} nodes; decomposed r=6 field \
             contacted {} (smaller cube ⇒ cheaper field-scoped search)",
            mono.stats.nodes_contacted, sub.stats.nodes_contacted
        );
    }

    // --- 5: query-load distribution under the skewed log.
    // Contacted vertices of the sequential engine are exactly a BFS
    // prefix of the induced SBT (same child order), so the per-node
    // query load can be reconstructed from the contacted count.
    let mut cube_load: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut dii_load: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let replay: Vec<_> = ctx.queries.iter().take(2_000).collect();
    for q in &replay {
        let out = index
            .superset_search(
                &SupersetQuery::new((*q).clone())
                    .threshold(20)
                    .use_cache(false),
            )
            .expect("valid");
        let sbt = hyperdex_hypercube::Sbt::induced(index.vertex_for(q));
        for (v, _) in sbt.bfs().take(out.stats.nodes_contacted as usize) {
            *cube_load.entry(v.bits()).or_insert(0) += 1;
        }
        for k in q.iter() {
            *dii_load.entry(dii.node_for(k)).or_insert(0) += 1;
        }
    }
    let cube_loads: Vec<usize> = cube_load.values().copied().collect();
    let dii_loads: Vec<usize> = dii_load.values().copied().collect();
    let hypercube_query_gini = hyperdex_workload::stats::gini(&cube_loads, 1 << r);
    let dii_query_gini = hyperdex_workload::stats::gini(&dii_loads, 1 << r);
    println!(
        "\nquery-processing load gini over 2^{r} nodes (2,000 skewed queries, t=20): \
         hypercube = {}, DII = {}",
        f(hypercube_query_gini, 3),
        f(dii_query_gini, 3)
    );

    AblationSummary {
        hypercube_query_gini,
        dii_query_gini,
        sequential_messages: summary_traversal.0,
        sequential_time: summary_traversal.1,
        parallel_rounds: summary_traversal.2,
        top_down_first_extra: summary_traversal.3,
        bottom_up_first_extra: summary_traversal.4,
        hypercube_insert_cost: 1.0,
        dii_insert_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn ablations_support_the_claims() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let s = run(&ctx);
        // Parallel rounds are far below sequential time.
        assert!(
            s.parallel_rounds < s.sequential_time / 4.0,
            "rounds {} vs time {}",
            s.parallel_rounds,
            s.sequential_time
        );
        // Bottom-up first results carry at least as many extra keywords.
        assert!(s.bottom_up_first_extra >= s.top_down_first_extra);
        // DII pays ~k lookups per insert; the hypercube pays one.
        assert!(s.dii_insert_cost > 3.0, "dii {}", s.dii_insert_cost);
        assert_eq!(s.hypercube_insert_cost, 1.0);
        // Query-processing load spreads better under the hypercube than
        // under per-keyword ownership (§3.4's hot-spot argument).
        assert!(
            s.hypercube_query_gini < s.dii_query_gini,
            "hypercube query gini {} should beat DII {}",
            s.hypercube_query_gini,
            s.dii_query_gini
        );
    }
}
