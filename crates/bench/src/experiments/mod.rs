//! The per-figure experiment runners.
//!
//! Each submodule regenerates one published artifact; `SharedContext`
//! builds the (expensive) corpus and query log once per process.

pub mod ablation;
pub mod availability;
pub mod churn;
pub mod eq1;
pub mod faults;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod net;
pub mod prune;
pub mod runtime;
pub mod scale;
pub mod table1;
pub mod throughput;
pub mod xcheck;

use hyperdex_workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

/// Experiment scale: the paper's full corpus, or a laptop-quick
/// miniature with the same distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 131,180 objects / 178k queries — the paper's numbers.
    Full,
    /// 10,000 objects / 20k queries — same shapes, seconds to run.
    Small,
}

impl Scale {
    /// The corpus configuration for this scale.
    pub fn corpus_config(self) -> CorpusConfig {
        match self {
            Scale::Full => CorpusConfig::pchome(),
            Scale::Small => CorpusConfig::pchome().with_objects(10_000),
        }
    }

    /// The query-log configuration for this scale.
    pub fn query_config(self) -> QueryLogConfig {
        match self {
            Scale::Full => QueryLogConfig::pchome_day(),
            Scale::Small => QueryLogConfig::pchome_day().with_queries(20_000),
        }
    }
}

/// Corpus and query log shared by all experiments in one run.
#[derive(Debug)]
pub struct SharedContext {
    /// The experiment scale.
    pub scale: Scale,
    /// The master seed.
    pub seed: u64,
    /// The synthetic corpus.
    pub corpus: Corpus,
    /// The synthetic query log.
    pub queries: QueryLog,
}

impl SharedContext {
    /// Builds the corpus and query log for a scale and seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let corpus = Corpus::generate(&scale.corpus_config(), seed);
        let queries = QueryLog::generate(&scale.query_config(), &corpus, seed ^ 0xF00D);
        SharedContext {
            scale,
            seed,
            corpus,
            queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_context_builds() {
        let ctx = SharedContext::new(Scale::Small, 1);
        assert_eq!(ctx.corpus.len(), 10_000);
        assert_eq!(ctx.queries.len(), 20_000);
    }

    #[test]
    fn scale_configs_differ() {
        assert_eq!(Scale::Full.corpus_config().objects, 131_180);
        assert_eq!(Scale::Small.corpus_config().objects, 10_000);
    }
}
