//! Table 1: sample website records.
//!
//! The paper shows two records of the PCHome directory to fix the data
//! schema (ID / Title / URL / Category / Description / Keyword). We
//! print sample records from the synthetic corpus in the same shape.

use crate::report::{section, Table};
use crate::SharedContext;

/// Prints Table 1's analogue: the first `count` synthetic records.
pub fn run(ctx: &SharedContext, count: usize) {
    section("Table 1 — sample website records (synthetic corpus)");
    let mut table = Table::new(["ID", "Title", "URL", "Category", "Description", "Keyword"]);
    for record in ctx.corpus.records().iter().take(count) {
        let kw: Vec<&str> = record.keywords.iter().map(|k| k.as_str()).collect();
        table.row([
            record.id.to_string(),
            record.title.clone(),
            record.url.clone(),
            record.category.clone(),
            record.description.clone(),
            kw.join(", "),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "\n(original: 131,180 hand-edited PCHome records; here: {} synthetic records, \
         same schema and keyword statistics)",
        ctx.corpus.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn runs_without_panic() {
        let ctx = SharedContext::new(Scale::Small, 1);
        run(&ctx, 2);
    }
}
