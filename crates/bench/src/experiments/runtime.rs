//! Threaded-runtime throughput: queries/second and tail latency as
//! worker threads scale, with hard sim-parity asserts per cell.
//!
//! The shared-nothing runtime claims that sharding the hypercube's
//! vertices across worker threads buys throughput without changing a
//! single result. This sweep measures both halves of the claim across
//! **worker count**, **corpus size**, **query mix**, and **shard
//! policy** (legacy uniform hash vs. prefix locality):
//!
//! * before anything is timed, every `(corpus, workers, policy)` cell
//!   runs [`hyperdex_runtime::assert_sim_parity_with`] — runtime vs.
//!   message simulator vs. direct engine, set-identical results per
//!   query plus frame conservation at shutdown, or the bench panics
//!   (non-zero exit under the CI smoke job);
//! * then each query mix is replayed through
//!   [`hyperdex_runtime::NodeRuntime::run_batch`] with a fixed
//!   in-flight window — one untimed warmup pass, then the best of
//!   three timed passes — reporting queries/second and p50/p99
//!   per-request latency.
//!
//! Most wall-clock numbers are reported, not asserted — CI boxes are
//! noisy — but the issue-8 regression bar *is* enforced in-run: under
//! the prefix policy the scan mix at the widest worker count `w` must
//! stay within the locality envelope of `w`× the 1-worker frame
//! volume — the point-to-point floor is 2(regions−1)+2 frames per
//! query against a 2-frame baseline, so the ratio is bounded by `w`
//! and measures ~5.5 at `w = 8` versus 22–64× before locality
//! sharding (deterministic, always checked) — and must beat the
//! 1-worker throughput (checked in optimized builds on hosts with at
//! least `w` cores, where the claim is meaningful). Everything else
//! is carried by the checked-in `BENCH_runtime.json` artifact, whose
//! frame counts are deterministic and double as a regression surface.

use std::path::Path;
use std::time::Instant;

use hyperdex_core::{KeywordSet, ObjectId};
use hyperdex_runtime::{assert_sim_parity_with, NodeRuntime, Request, RuntimeConfig, ShardPolicy};
use hyperdex_workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

use crate::report::{f, json_series, section, Table};
use crate::{Scale, SharedContext};

/// Worker-thread counts swept (the thread-count axis).
pub const WORKER_COUNTS: [u32; 4] = [1, 2, 4, 8];
/// Shard-placement policies swept (the locality axis).
pub const POLICIES: [ShardPolicy; 2] = [ShardPolicy::Hash, ShardPolicy::Prefix];
/// Corpus sizes swept at full scale.
pub const CORPUS_SIZES_FULL: [usize; 2] = [16_000, 64_000];
/// Corpus sizes swept at small scale (CI smoke). Sharding only pays
/// once per-vertex scans outweigh per-hop frame costs, so even the
/// small scale needs dense vertices (~16 and ~64 entries each).
pub const CORPUS_SIZES_SMALL: [usize; 2] = [4_000, 16_000];
/// Query-mix names, in sweep order.
pub const MIXES: [&str; 3] = ["pin", "scan", "mixed"];

/// Cube dimension: a small cube packs many entries per vertex, the
/// scan-heavy regime where extra workers have real work to steal.
const RUNTIME_R: u8 = 8;
/// Requests kept in flight by `run_batch` — fixed across worker counts
/// so the sweep varies exactly one thing.
const WINDOW: usize = 32;
/// Timed repetitions per cell; the best one is reported. One untimed
/// warmup pass runs first so no worker count pays the page-fault and
/// allocator warmup for the others.
const REPS: usize = 3;

/// One measured cell of the runtime sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeRow {
    /// Cube dimension `r`.
    pub r: u8,
    /// Objects indexed.
    pub corpus_size: usize,
    /// Query-mix name (one of [`MIXES`]).
    pub mix: &'static str,
    /// Shard-placement policy name (one of [`POLICIES`]).
    pub policy: &'static str,
    /// Worker threads.
    pub workers: u32,
    /// Requests replayed through the batch window.
    pub requests: usize,
    /// Completed requests per second.
    pub qps: f64,
    /// Median per-request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_us: f64,
    /// Total frames sent over the run (deterministic for a fixed seed,
    /// corpus, policy, and worker count; conservation-checked at
    /// shutdown).
    pub frames: u64,
    /// This cell's frames over the 1-worker frames of the same
    /// `(corpus, mix, policy)` — the fan-out factor sharding costs.
    /// Deterministic, so it doubles as a regression surface.
    pub frames_vs_single: f64,
    /// This cell's qps over the 1-worker qps of the same `(corpus,
    /// mix, policy)` — > 1 ⇒ the extra threads paid for themselves.
    pub speedup: f64,
}

impl RuntimeRow {
    /// The deterministic (seed-reproducible) projection of the row —
    /// everything except the wall-clock numbers.
    #[allow(clippy::type_complexity)]
    pub fn deterministic_key(&self) -> (u8, usize, &'static str, &'static str, u32, usize, u64) {
        (
            self.r,
            self.corpus_size,
            self.mix,
            self.policy,
            self.workers,
            self.requests,
            self.frames,
        )
    }
}

/// Builds one mix's request batch from a cell's corpus and query log.
/// Shared with the `net` experiment so channel and socket modes replay
/// byte-identical workloads.
pub(crate) fn requests_for(mix: &str, corpus: &Corpus, log: &QueryLog) -> Vec<Request> {
    let broad = log.popular_of_size(1, 4);
    let narrow = log.popular_of_size(2, 4);
    let sets: Vec<&KeywordSet> = corpus.indexable().map(|(_, k)| k).collect();
    let mut out = Vec::new();
    match mix {
        // Pin-heavy: exact lookups, two frames each — the
        // frame-overhead floor.
        "pin" => {
            for i in 0..512 {
                out.push(Request::Pin(sets[i % sets.len()].clone()));
            }
        }
        // Scan-heavy: exhaustive superset traversals over the induced
        // subcubes — the regime where sharding the scans should scale.
        "scan" => {
            for _ in 0..12 {
                for q in broad.iter().chain(narrow.iter()) {
                    out.push(Request::Superset {
                        keywords: q.clone(),
                        threshold: usize::MAX - 1,
                    });
                }
            }
        }
        // Mixed: thresholded supersets (early-stop path) interleaved
        // with pins, the shape a real front-end would send.
        "mixed" => {
            for tile in 0..16 {
                for q in &broad {
                    out.push(Request::Superset {
                        keywords: q.clone(),
                        threshold: 32,
                    });
                }
                for q in &narrow {
                    out.push(Request::Superset {
                        keywords: q.clone(),
                        threshold: usize::MAX - 1,
                    });
                }
                for i in 0..6 {
                    out.push(Request::Pin(sets[(tile * 6 + i) % sets.len()].clone()));
                }
            }
        }
        other => panic!("unknown mix {other:?}"),
    }
    out
}

/// The per-cell parity queries: broad and narrow popular sets, an
/// early-stop threshold, and a guaranteed miss.
pub(crate) fn parity_queries(log: &QueryLog) -> Vec<(KeywordSet, usize)> {
    let mut queries: Vec<(KeywordSet, usize)> = Vec::new();
    for kw in log.popular_of_size(1, 2) {
        queries.push((kw.clone(), usize::MAX - 1));
        queries.push((kw, 3));
    }
    for kw in log.popular_of_size(2, 2) {
        queries.push((kw, usize::MAX - 1));
    }
    queries.push((
        KeywordSet::parse("no such keyword anywhere").expect("parses"),
        10,
    ));
    queries
}

/// Runs the runtime sweep, prints the markdown table and JSON series,
/// and returns the rows.
///
/// # Panics
///
/// Panics if any `(corpus, workers)` cell fails sim parity (result
/// sets or frame conservation), or a timed run's shutdown loses a
/// frame — the invariants CI runs as a smoke check.
pub fn run(ctx: &SharedContext) -> Vec<RuntimeRow> {
    section("Runtime — threaded shared-nothing throughput vs. worker count");
    let corpus_sizes = match ctx.scale {
        Scale::Full => CORPUS_SIZES_FULL,
        Scale::Small => CORPUS_SIZES_SMALL,
    };

    let mut rows: Vec<RuntimeRow> = Vec::new();
    for &n in &corpus_sizes {
        let cell_seed = ctx.seed ^ (u64::from(RUNTIME_R) << 32) ^ (n as u64);
        let corpus = Corpus::generate(&CorpusConfig::pchome().with_objects(n), cell_seed);
        let log = QueryLog::generate(
            &QueryLogConfig::pchome_day().with_queries(4_000),
            &corpus,
            cell_seed ^ 0xF00D,
        );
        let entries: Vec<(ObjectId, KeywordSet)> =
            corpus.indexable().map(|(id, k)| (id, k.clone())).collect();

        // Parity first, untimed: every worker count × policy must
        // return set-identical results to the simulator and the direct
        // engine, and conserve frames.
        let checks = parity_queries(&log);
        for &workers in &WORKER_COUNTS {
            for policy in POLICIES {
                let report = assert_sim_parity_with(
                    RUNTIME_R, cell_seed, workers, policy, &entries, &checks,
                );
                assert_eq!(report.shutdown.in_flight(), 0);
            }
        }
        println!(
            "parity: {} objects × {} queries × workers {WORKER_COUNTS:?} × \
             policies [hash, prefix] — ok",
            entries.len(),
            checks.len()
        );

        for mix in MIXES {
            let requests = requests_for(mix, &corpus, &log);
            for policy in POLICIES {
                for &workers in &WORKER_COUNTS {
                    let mut rt = NodeRuntime::start(
                        RuntimeConfig::new(RUNTIME_R, workers)
                            .seed(cell_seed)
                            .policy(policy),
                    )
                    .expect("valid r");
                    rt.bulk_load(entries.iter().map(|(id, k)| (*id, k)))
                        .expect("non-empty sets");
                    rt.flush();

                    // One warmup pass, then the best of REPS timed passes.
                    rt.run_batch(&requests, WINDOW);
                    let mut best_qps = 0.0f64;
                    let mut best_lat: Vec<f64> = Vec::new();
                    for _ in 0..REPS {
                        let t0 = Instant::now();
                        let batch = rt.run_batch(&requests, WINDOW);
                        let secs = t0.elapsed().as_secs_f64();
                        let qps = if secs == 0.0 {
                            f64::INFINITY
                        } else {
                            requests.len() as f64 / secs
                        };
                        if qps >= best_qps {
                            best_qps = qps;
                            best_lat = batch
                                .iter()
                                .map(|b| b.latency.as_secs_f64() * 1e6)
                                .collect();
                        }
                    }
                    best_lat.sort_by(|a, b| a.total_cmp(b));
                    let pct = |p: f64| best_lat[((best_lat.len() - 1) as f64 * p) as usize];

                    let report = rt.shutdown();
                    report.assert_conserved();

                    rows.push(RuntimeRow {
                        r: RUNTIME_R,
                        corpus_size: n,
                        mix,
                        policy: policy.name(),
                        workers,
                        requests: requests.len(),
                        qps: best_qps,
                        p50_us: pct(0.50),
                        p99_us: pct(0.99),
                        frames: report.total_sent(),
                        // Both filled in below from the 1-worker
                        // baseline of the same (corpus, mix, policy).
                        frames_vs_single: 0.0,
                        speedup: 0.0,
                    });
                }
            }
        }
    }

    // Speedup and frame fan-out over the 1-worker run of the same
    // (corpus, mix, policy).
    let baselines: Vec<(usize, &'static str, &'static str, f64, u64)> = rows
        .iter()
        .filter(|r| r.workers == 1)
        .map(|r| (r.corpus_size, r.mix, r.policy, r.qps, r.frames))
        .collect();
    for row in &mut rows {
        let (_, _, _, base_qps, base_frames) = *baselines
            .iter()
            .find(|(n, m, p, ..)| *n == row.corpus_size && *m == row.mix && *p == row.policy)
            .expect("1-worker baseline exists");
        row.speedup = if base_qps == 0.0 {
            0.0
        } else {
            row.qps / base_qps
        };
        row.frames_vs_single = if base_frames == 0 {
            0.0
        } else {
            row.frames as f64 / base_frames as f64
        };
    }

    // The issue-8 regression bar, asserted in-run so the CI bench
    // smoke fails the build on a locality regression: under the prefix
    // policy at the widest worker count, scans must beat the 1-worker
    // baseline and stay within the locality envelope on frames. The
    // envelope is the point-to-point floor: a query spanning R prefix
    // regions needs one dispatch and one reply per cross-region edge
    // (2(R-1) frames) plus Query/QueryDone, R ≤ 2^⌈log2 w⌉ ≤ 2w, and
    // the 1-worker baseline pays 2 frames per query — so the ratio is
    // bounded by w. (Measured: ~5.5 at w = 8, versus 22-64× for the
    // hash policy or per-vertex dispatch.) The frame bound is
    // deterministic and always enforced; the wall-clock half only
    // means something in an optimized build on a host that actually
    // has `widest` cores — w threads on fewer cores can only
    // timeslice, never scale.
    let widest = *WORKER_COUNTS.last().expect("non-empty sweep");
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    for row in rows.iter().filter(|r| {
        r.policy == ShardPolicy::Prefix.name() && r.mix == "scan" && r.workers == widest
    }) {
        assert!(
            row.frames_vs_single <= widest as f64,
            "scan frame fan-out regressed: {row:?}"
        );
        #[cfg(not(debug_assertions))]
        if cores >= widest as usize {
            assert!(
                row.speedup > 1.0,
                "scan no longer scales at {widest} workers on {cores} cores: {row:?}"
            );
        }
    }
    #[cfg(debug_assertions)]
    let _ = cores;

    let mut table = Table::new([
        "r", "objects", "mix", "policy", "workers", "requests", "qps", "p50 µs", "p99 µs",
        "frames", "f×1w", "speedup",
    ]);
    for row in &rows {
        table.row([
            row.r.to_string(),
            row.corpus_size.to_string(),
            row.mix.to_string(),
            row.policy.to_string(),
            row.workers.to_string(),
            row.requests.to_string(),
            f(row.qps, 0),
            f(row.p50_us, 1),
            f(row.p99_us, 1),
            row.frames.to_string(),
            f(row.frames_vs_single, 2),
            f(row.speedup, 2),
        ]);
    }
    print!("{}", table.to_markdown());

    let wins = rows
        .iter()
        .filter(|r| r.workers > 1 && r.speedup > 1.0)
        .count();
    let multi = rows.iter().filter(|r| r.workers > 1).count();
    println!("\nmulti-worker runs beat the 1-worker baseline in {wins}/{multi} cells");

    println!("\n### JSON series (vs worker count)\n");
    for &n in &corpus_sizes {
        for mix in MIXES {
            for policy in POLICIES {
                let points: Vec<(f64, f64)> = rows
                    .iter()
                    .filter(|row| {
                        row.corpus_size == n && row.mix == mix && row.policy == policy.name()
                    })
                    .map(|row| (f64::from(row.workers), row.qps))
                    .collect();
                println!(
                    "{}",
                    json_series(
                        "runtime_qps",
                        &[
                            ("objects", n.to_string()),
                            ("mix", mix.to_string()),
                            ("policy", policy.name().to_string()),
                        ],
                        "workers",
                        "queries/sec",
                        &points,
                    )
                );
            }
        }
    }
    rows
}

/// Writes the sweep as a seed-stamped JSON object (the
/// `BENCH_runtime.json` artifact): `{"seed":N,"rows":[…]}`.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn write_json(rows: &[RuntimeRow], seed: u64, path: &Path) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"r\":{},\"corpus_size\":{},\"mix\":\"{}\",\"policy\":\"{}\",\
                 \"workers\":{},\"requests\":{},\"qps\":{:.2},\"p50_us\":{:.2},\
                 \"p99_us\":{:.2},\"frames\":{},\"frames_vs_single\":{:.4},\
                 \"speedup\":{:.4}}}",
                r.r,
                r.corpus_size,
                r.mix,
                r.policy,
                r.workers,
                r.requests,
                r.qps,
                r.p50_us,
                r.p99_us,
                r.frames,
                r.frames_vs_single,
                r.speedup,
            )
        })
        .collect();
    crate::report::write_json_artifact(path, seed, &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_passes_parity_and_frame_counts_are_deterministic() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let rows = run(&ctx);
        assert_eq!(
            rows.len(),
            CORPUS_SIZES_SMALL.len() * MIXES.len() * POLICIES.len() * WORKER_COUNTS.len()
        );
        for row in &rows {
            assert!(row.requests > 0, "empty batch in {row:?}");
            assert!(row.qps > 0.0, "{row:?}");
            assert!(row.p50_us <= row.p99_us, "{row:?}");
            assert!(row.frames > 0, "{row:?}");
            if row.workers == 1 {
                assert!((row.speedup - 1.0).abs() < 1e-9, "{row:?}");
                assert!((row.frames_vs_single - 1.0).abs() < 1e-9, "{row:?}");
            }
        }
        // Wall-clock rates vary run to run; the frame counts must not.
        let again = run(&ctx);
        let keys: Vec<_> = rows.iter().map(RuntimeRow::deterministic_key).collect();
        let again_keys: Vec<_> = again.iter().map(RuntimeRow::deterministic_key).collect();
        assert_eq!(keys, again_keys, "frame counts are not deterministic");
    }

    #[test]
    fn json_artifact_shape() {
        let row = RuntimeRow {
            r: 8,
            corpus_size: 1_000,
            mix: "scan",
            policy: "prefix",
            workers: 4,
            requests: 96,
            qps: 1234.5,
            p50_us: 800.0,
            p99_us: 2500.0,
            frames: 42_000,
            frames_vs_single: 1.25,
            speedup: 2.5,
        };
        let dir = std::env::temp_dir().join("hyperdex_runtime_json_test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("BENCH_runtime.json");
        write_json(&[row], 42, &path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with("{\"seed\":42,\"rows\":[\n"));
        assert!(text.contains("\"mix\":\"scan\""));
        assert!(text.contains("\"policy\":\"prefix\""));
        assert!(text.contains("\"qps\":1234.50"));
        assert!(text.contains("\"frames_vs_single\":1.2500"));
        assert!(text.contains("\"speedup\":2.5000"));
        assert!(text.trim_end().ends_with("]}"));
    }
}
