//! Cross-validation: the direct measurement engine vs. the
//! message-level protocol execution.
//!
//! Every figure is produced by the direct engine (analytic routing,
//! exact counters). This experiment certifies that the engine and the
//! actual message protocol agree — result sets identical, node counts
//! identical, one `T_QUERY` per contacted node — on live corpus
//! queries, and reports the latency the direct engine cannot measure.

use hyperdex_core::sim_protocol::ProtocolSim;
use hyperdex_core::{HypercubeIndex, SupersetQuery};
use hyperdex_simnet::latency::LatencyModel;

use crate::report::{f, section, Table};
use crate::SharedContext;

/// Per-query-size cross-validation summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XcheckRow {
    /// Query size in keywords.
    pub m: u32,
    /// Queries checked.
    pub queries: usize,
    /// Queries where results and node counts matched exactly.
    pub matched: usize,
    /// Mean sequential latency (ticks, unit link latency).
    pub seq_ticks: f64,
    /// Mean level-parallel latency (ticks).
    pub par_ticks: f64,
}

/// Objects loaded into the protocol simulator (kept moderate: each
/// search is a full event-loop run).
const XCHECK_OBJECTS: usize = 4_000;
/// Queries cross-checked per size.
const QUERIES_PER_SIZE: usize = 5;

/// Runs the cross-validation and returns per-size rows.
pub fn run(ctx: &SharedContext) -> Vec<XcheckRow> {
    section("Cross-check — direct engine vs. message-level protocol");
    let r = 10u8;
    let mut direct = HypercubeIndex::new(r, ctx.seed).expect("valid dimension");
    let mut sim =
        ProtocolSim::new(r, ctx.seed, LatencyModel::constant(1)).expect("valid dimension");
    for (id, keywords) in ctx.corpus.indexable().take(XCHECK_OBJECTS) {
        direct.insert(id, keywords.clone()).expect("non-empty");
        sim.insert(id, keywords.clone()).expect("non-empty");
    }

    let mut rows = Vec::new();
    for m in 1..=3u32 {
        let queries = ctx.queries.popular_of_size(m, QUERIES_PER_SIZE);
        if queries.is_empty() {
            continue;
        }
        let mut matched = 0;
        let mut seq_total = 0u64;
        let mut par_total = 0u64;
        for q in &queries {
            let d = direct
                .superset_search(&SupersetQuery::new(q.clone()).use_cache(false))
                .expect("valid");
            let s = sim.search_sequential(q, usize::MAX - 1).expect("valid");
            let p = sim.search_parallel(q, usize::MAX - 1).expect("valid");
            let mut d_ids: Vec<_> = d.results.iter().map(|r| r.object).collect();
            let mut s_ids: Vec<_> = s.results.iter().map(|r| r.object).collect();
            d_ids.sort_unstable();
            s_ids.sort_unstable();
            if d_ids == s_ids && d.stats.nodes_contacted == s.nodes_contacted {
                matched += 1;
            }
            seq_total += s.elapsed.ticks();
            par_total += p.elapsed.ticks();
        }
        rows.push(XcheckRow {
            m,
            queries: queries.len(),
            matched,
            seq_ticks: seq_total as f64 / queries.len() as f64,
            par_ticks: par_total as f64 / queries.len() as f64,
        });
    }

    let mut table = Table::new([
        "m",
        "queries",
        "exact matches",
        "seq latency (ticks)",
        "parallel latency",
        "speedup",
    ]);
    for row in &rows {
        table.row([
            row.m.to_string(),
            row.queries.to_string(),
            format!("{}/{}", row.matched, row.queries),
            f(row.seq_ticks, 1),
            f(row.par_ticks, 1),
            format!("{:.1}x", row.seq_ticks / row.par_ticks.max(1.0)),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "\nEvery figure uses the direct engine; this certifies it agrees with \
         the real T_QUERY/T_CONT/T_STOP message exchange."
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn engines_agree_perfectly() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let rows = run(&ctx);
        assert!(!rows.is_empty());
        for row in &rows {
            assert_eq!(
                row.matched,
                row.queries,
                "m={}: engines disagreed on {} queries",
                row.m,
                row.queries - row.matched
            );
            assert!(
                row.par_ticks <= row.seq_ticks,
                "m={}: parallel latency should not exceed sequential",
                row.m
            );
        }
    }
}
