//! Figure 9: query performance with per-node FIFO caches.
//!
//! Replays a full day of (heavily skewed) queries against indexes with
//! cache capacity `α · |O| / 2^r` and measures the average fraction of
//! nodes contacted per query. The paper's headline: with `α = 1/6`,
//! fewer than 1 % of nodes are contacted per query even at 100 % recall
//! (for `r = 10` and `12`), because the top-10 queries are ~60 % of the
//! volume and hit the root's cache after their first execution.

use hyperdex_core::{HypercubeIndex, SupersetQuery};

use crate::report::{f as fmt_f, pct, section, Table};
use crate::SharedContext;

/// Cache-capacity factors swept (the paper's X axis).
///
/// Four points suffice to draw the curve: the cacheless baseline, the
/// paper's headline α = 1/6, and two larger capacities showing the
/// plateau. (Every α level replays the log against a fresh index, so
/// each extra point costs a full cold-start sweep.)
pub const ALPHAS: [f64; 4] = [0.0, 1.0 / 6.0, 1.0 / 3.0, 1.0];

/// One measured line point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Cell {
    /// Hypercube dimension.
    pub r: u8,
    /// Recall rate requested.
    pub recall: f64,
    /// Cache capacity factor α.
    pub alpha: f64,
    /// Average fraction of nodes contacted per query.
    pub nodes_fraction: f64,
    /// Overall cache hit rate across the replay.
    pub hit_rate: f64,
}

/// How many log queries to replay per configuration (the full log at
/// full scale is 178k; a prefix keeps the sweep tractable and the skew
/// statistics are stationary).
fn replay_len(scale: crate::Scale, total: usize) -> usize {
    match scale {
        crate::Scale::Full => total.min(10_000),
        crate::Scale::Small => total.min(4_000),
    }
}

/// Runs the sweep and returns every point.
pub fn run(ctx: &SharedContext) -> Vec<Fig9Cell> {
    section("Figure 9 — query performance with per-node FIFO caches");
    let mut cells = Vec::new();
    let replay: Vec<_> = ctx
        .queries
        .iter()
        .take(replay_len(ctx.scale, ctx.queries.len()))
        .collect();
    for r in [10u8, 12] {
        // Base index built once per r; per-α runs clone it.
        let mut base = HypercubeIndex::new(r, ctx.seed).expect("valid dimension");
        for (id, keywords) in ctx.corpus.indexable() {
            base.insert(id, keywords.clone()).expect("non-empty");
        }
        let total_nodes = (1u64 << r) as f64;
        // Ground-truth |O_K| per distinct replayed query, computed once
        // per r (an oracle, not part of the protocol cost).
        let mut matching: std::collections::HashMap<&hyperdex_core::KeywordSet, usize> =
            std::collections::HashMap::new();
        for q in &replay {
            matching.entry(q).or_insert_with(|| base.matching_count(q));
        }
        for &recall in &[0.5f64, 1.0] {
            for &alpha in &ALPHAS {
                let mut index = base.clone();
                // α × |O| / 2^r slots; at miniature scale the formula can
                // floor to zero, so a positive α keeps at least one slot.
                let raw = (alpha * ctx.corpus.len() as f64 / total_nodes).floor() as usize;
                let capacity = if alpha > 0.0 { raw.max(1) } else { 0 };
                index.set_cache_capacity(capacity);
                let mut contacted = 0u64;
                let mut hits = 0u64;
                for q in &replay {
                    let found = matching[q];
                    if found == 0 {
                        continue;
                    }
                    let threshold = ((found as f64 * recall).ceil() as usize).max(1);
                    let out = index
                        .superset_search(&SupersetQuery::new((*q).clone()).threshold(threshold))
                        .expect("positive threshold");
                    contacted += out.stats.nodes_contacted;
                    hits += u64::from(out.stats.cache_hit);
                }
                let n = replay.len() as f64;
                cells.push(Fig9Cell {
                    r,
                    recall,
                    alpha,
                    nodes_fraction: contacted as f64 / n / total_nodes,
                    hit_rate: hits as f64 / n,
                });
            }
        }
    }

    let mut table = Table::new(["r", "recall", "alpha", "nodes contacted", "cache hit rate"]);
    for c in &cells {
        table.row([
            c.r.to_string(),
            pct(c.recall),
            fmt_f(c.alpha, 3),
            pct(c.nodes_fraction),
            pct(c.hit_rate),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "\nPaper: with α = 1/6, < 1% of nodes contacted per query at 100% recall \
         (top-10 queries ≈ 60% of volume)."
    );
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn reproduces_paper_shape() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let cells = run(&ctx);
        let cell = |r: u8, recall: f64, alpha: f64| {
            cells
                .iter()
                .find(|c| {
                    c.r == r && (c.recall - recall).abs() < 1e-9 && (c.alpha - alpha).abs() < 1e-9
                })
                .copied()
                .expect("cell present")
        };
        for r in [10u8, 12] {
            let no_cache = cell(r, 1.0, 0.0);
            let small_cache = cell(r, 1.0, 1.0 / 6.0);
            // (1) A small cache slashes the per-query cost. (The paper's
            // absolute <1% needs the full 131k-object / 178k-query
            // scale, where each node's slots cover its whole hot query
            // set; the miniature keeps the shape.)
            assert!(
                small_cache.nodes_fraction < no_cache.nodes_fraction / 2.5,
                "r={r}: α=1/6 gives {} vs cacheless {}",
                small_cache.nodes_fraction,
                no_cache.nodes_fraction
            );
            // (2) Hit rate reflects the 60% top-10 query skew.
            assert!(
                small_cache.hit_rate > 0.4,
                "r={r}: hit rate {}",
                small_cache.hit_rate
            );
            // (3) More cache never hurts.
            let big_cache = cell(r, 1.0, 1.0);
            assert!(big_cache.nodes_fraction <= small_cache.nodes_fraction + 1e-6);
            // (4) Lower recall costs fewer nodes at equal α.
            let half = cell(r, 0.5, 1.0 / 6.0);
            assert!(half.nodes_fraction <= small_cache.nodes_fraction + 1e-6);
        }
    }
}
