//! Availability under index-node failures (§3.4's fault-tolerance
//! argument, made quantitative).
//!
//! The paper argues qualitatively: "since a number of nodes are
//! responsible for a single keyword, any failure of them cannot block
//! all queries involving the keyword" — unlike the DII, where one node
//! owns each keyword outright. This experiment kills a growing fraction
//! of index nodes and measures, over popular queries:
//!
//! * **recall retained** — the fraction of the original matches still
//!   returned (hypercube degrades gracefully; DII drops a keyword's
//!   entire result set the moment its owner dies);
//! * **queries fully blocked** — zero results returned despite a
//!   non-empty ground truth;
//! * the same with the **secondary-hypercube replication** of §3.4
//!   ([`hyperdex_core::replication::ReplicatedIndex`]), which restores
//!   recall until both copies of an entry are lost.

use hyperdex_core::baseline::DistributedInvertedIndex;
use hyperdex_core::replication::ReplicatedIndex;
use hyperdex_core::sim_protocol::{FtConfig, ProtocolSim, RecoveryStrategy};
use hyperdex_core::{HypercubeIndex, SupersetQuery};
use hyperdex_simnet::latency::LatencyModel;
use hyperdex_simnet::rng::SimRng;

use crate::report::{f, json_series, pct, section, Table};
use crate::SharedContext;

/// Failed fractions of the node population swept.
pub const FAILURE_FRACTIONS: [f64; 4] = [0.05, 0.10, 0.20, 0.40];

/// One measured row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityRow {
    /// Fraction of index nodes failed.
    pub failed_fraction: f64,
    /// Mean recall retained by the plain hypercube index.
    pub hypercube_recall: f64,
    /// Mean recall retained by the DII baseline.
    pub dii_recall: f64,
    /// Mean recall retained with secondary-hypercube replication.
    pub replicated_recall: f64,
    /// Fraction of queries fully blocked (hypercube / DII).
    pub hypercube_blocked: f64,
    /// Fraction of queries fully blocked under DII.
    pub dii_blocked: f64,
}

/// Objects loaded (a sample keeps the sweep fast; availability ratios
/// are scale-free).
const OBJECTS: usize = 8_000;
/// Queries evaluated per failure level.
const QUERIES: usize = 30;

/// Runs the sweep and returns the rows.
pub fn run(ctx: &SharedContext) -> Vec<AvailabilityRow> {
    section("Availability — recall under index-node failures (§3.4)");
    let r = 10u8;
    let mut rows = Vec::new();

    // Queries: popular sets of sizes 1..=2 (the hot, fragile ones).
    let mut queries = ctx.queries.popular_of_size(1, QUERIES / 2);
    queries.extend(ctx.queries.popular_of_size(2, QUERIES / 2));

    for &fraction in &FAILURE_FRACTIONS {
        // Fresh indexes per level so failures do not accumulate.
        let mut cube = HypercubeIndex::new(r, ctx.seed).expect("valid");
        let mut dii = DistributedInvertedIndex::new(r, ctx.seed).expect("valid");
        let mut replicated = ReplicatedIndex::new(r, ctx.seed).expect("valid");
        for (id, k) in ctx.corpus.indexable().take(OBJECTS) {
            cube.insert(id, k.clone()).expect("non-empty");
            dii.insert(id, k);
            replicated.insert(id, k.clone()).expect("non-empty");
        }
        let truths: Vec<usize> = queries.iter().map(|q| cube.matching_count(q)).collect();

        // Fail the same uniformly chosen fraction of the 2^r nodes in
        // every scheme (same RNG stream → comparable failure sets).
        let mut rng = SimRng::new(ctx.seed ^ 0xFA11 ^ fraction.to_bits());
        let n_fail = ((1u64 << r) as f64 * fraction) as usize;
        let shape = cube.shape();
        let mut failed_bits = Vec::with_capacity(n_fail);
        while failed_bits.len() < n_fail {
            let bits = rng.gen_range(1u64 << r);
            if !failed_bits.contains(&bits) {
                failed_bits.push(bits);
            }
        }
        for &bits in &failed_bits {
            let v = hyperdex_hypercube::Vertex::from_bits(shape, bits).expect("valid");
            cube.drop_node(v);
            replicated.fail_primary(v);
            dii.drop_node(bits);
        }
        // Independently fail the same fraction of secondary nodes (the
        // replicated scheme's copies fail too — no free lunch).
        for _ in 0..n_fail {
            let bits = rng.gen_range(1u64 << r);
            let v = hyperdex_hypercube::Vertex::from_bits(shape, bits).expect("valid");
            replicated.fail_secondary(v);
        }

        // Measure.
        let mut cube_recall = 0.0;
        let mut dii_recall = 0.0;
        let mut rep_recall = 0.0;
        let mut cube_blocked = 0usize;
        let mut dii_blocked = 0usize;
        let mut counted = 0usize;
        for (q, &truth) in queries.iter().zip(&truths) {
            if truth == 0 {
                continue;
            }
            counted += 1;
            let got_cube = cube
                .superset_search(&SupersetQuery::new(q.clone()).use_cache(false))
                .expect("valid")
                .results
                .len();
            let got_dii = dii.query(q).results.len();
            let got_rep = replicated
                .superset_search(&SupersetQuery::new(q.clone()).use_cache(false))
                .expect("valid")
                .results
                .len();
            cube_recall += got_cube as f64 / truth as f64;
            dii_recall += got_dii as f64 / truth as f64;
            rep_recall += got_rep as f64 / truth as f64;
            // "Blocked" is only meaningful for genuinely popular
            // queries: a query with a couple of matches on one vertex
            // dies with that vertex under any placement scheme.
            if truth >= 10 {
                cube_blocked += usize::from(got_cube == 0);
                dii_blocked += usize::from(got_dii == 0);
            }
        }
        let n = counted.max(1) as f64;
        rows.push(AvailabilityRow {
            failed_fraction: fraction,
            hypercube_recall: cube_recall / n,
            dii_recall: dii_recall / n,
            replicated_recall: rep_recall / n,
            hypercube_blocked: cube_blocked as f64 / n,
            dii_blocked: dii_blocked as f64 / n,
        });
    }

    let mut table = Table::new([
        "nodes failed",
        "hypercube recall",
        "DII recall",
        "replicated recall",
        "hypercube blocked",
        "DII blocked",
    ]);
    for row in &rows {
        table.row([
            pct(row.failed_fraction),
            pct(row.hypercube_recall),
            pct(row.dii_recall),
            pct(row.replicated_recall),
            pct(row.hypercube_blocked),
            pct(row.dii_blocked),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "\n§3.4's claim: the hypercube loses recall proportionally and never \
         blocks a keyword outright; DII queries die whole when a keyword's \
         single owner dies; a secondary hypercube restores recall."
    );
    rows
}

// ---------------------------------------------------------------------
// Message-level sweep: recovery strategies under crashes and loss
// ---------------------------------------------------------------------

/// Strategies compared by the protocol-level sweep.
pub const STRATEGIES: [(&str, RecoveryStrategy); 4] = [
    ("naive", RecoveryStrategy::Naive),
    ("retry", RecoveryStrategy::RetryOnly),
    ("redelegate", RecoveryStrategy::Redelegate),
    ("failover", RecoveryStrategy::ReplicatedFailover),
];

/// Crashed fractions of the endpoint population swept.
pub const CRASH_FRACTIONS: [f64; 4] = [0.0, 0.05, 0.1, 0.2];

/// Link-loss probabilities swept.
pub const DROP_PROBABILITIES: [f64; 2] = [0.0, 0.2];

/// One cell of the protocol-level sweep (means over the query set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolAvailabilityRow {
    /// Strategy label (see [`STRATEGIES`]).
    pub strategy: &'static str,
    /// Fraction of endpoints crashed before the searches.
    pub crash_fraction: f64,
    /// Uniform message-loss probability.
    pub drop_probability: f64,
    /// Mean recall vs the fault-free ground truth.
    pub recall: f64,
    /// Mean retransmissions per query.
    pub retries: f64,
    /// Mean subtree re-delegations per query.
    pub redelegations: f64,
    /// Mean messages per query.
    pub messages: f64,
}

/// Cube dimension for the message-level sweep (kept small: every
/// vertex is a simulated endpoint).
const SIM_R: u8 = 8;
/// Objects loaded into the simulated index.
const SIM_OBJECTS: usize = 2_000;
/// Queries evaluated per cell.
const SIM_QUERIES: usize = 12;

/// Runs the message-level recovery sweep and returns its rows; also
/// prints a markdown table and one JSON series per strategy × loss
/// level (recall vs crash fraction) for downstream plotting.
pub fn run_protocol(ctx: &SharedContext) -> Vec<ProtocolAvailabilityRow> {
    section("Availability — message-level recovery strategies (§3.4)");
    let mut queries = ctx.queries.popular_of_size(1, SIM_QUERIES / 2);
    queries.extend(ctx.queries.popular_of_size(2, SIM_QUERIES / 2));

    // Ground truth from the direct engine (same hasher seed).
    let mut truth_index = HypercubeIndex::new(SIM_R, ctx.seed).expect("valid");
    for (id, k) in ctx.corpus.indexable().take(SIM_OBJECTS) {
        truth_index.insert(id, k.clone()).expect("non-empty");
    }
    let truths: Vec<usize> = queries
        .iter()
        .map(|q| truth_index.matching_count(q))
        .collect();

    let mut rows = Vec::new();
    for &(name, strategy) in &STRATEGIES {
        for &drop_p in &DROP_PROBABILITIES {
            for &crash in &CRASH_FRACTIONS {
                // A fresh simulation per cell; the crash set depends
                // only on the fraction, so every strategy faces the
                // same dead vertices.
                let mut sim =
                    ProtocolSim::new(SIM_R, ctx.seed, LatencyModel::constant(1)).expect("valid");
                for (id, k) in ctx.corpus.indexable().take(SIM_OBJECTS) {
                    sim.insert(id, k.clone()).expect("non-empty");
                }
                let mut rng = SimRng::new(ctx.seed ^ 0xC4A5 ^ crash.to_bits());
                let n_fail = ((1u64 << SIM_R) as f64 * crash) as usize;
                let mut killed = Vec::with_capacity(n_fail);
                while killed.len() < n_fail {
                    let bits = rng.gen_range(1u64 << SIM_R);
                    if !killed.contains(&bits) {
                        killed.push(bits);
                        let ep = sim.endpoint_of(bits);
                        sim.network_mut().faults_mut().kill(ep);
                    }
                }
                sim.network_mut().faults_mut().set_drop_probability(drop_p);

                let cfg = FtConfig::new(strategy).max_retries(8);
                let mut recall = 0.0;
                let mut counted = 0usize;
                let mut retries = 0u64;
                let mut redelegations = 0u64;
                let before = sim.network().metrics().messages_sent.get();
                for (q, &truth) in queries.iter().zip(&truths) {
                    if truth == 0 {
                        continue;
                    }
                    counted += 1;
                    let out = sim
                        .search_fault_tolerant(q, usize::MAX >> 1, cfg)
                        .expect("valid");
                    recall += out.results.len() as f64 / truth as f64;
                    retries += out.coverage.retries;
                    redelegations += out.coverage.redelegations;
                }
                let messages = sim.network().metrics().messages_sent.get() - before;
                let n = counted.max(1) as f64;
                rows.push(ProtocolAvailabilityRow {
                    strategy: name,
                    crash_fraction: crash,
                    drop_probability: drop_p,
                    recall: recall / n,
                    retries: retries as f64 / n,
                    redelegations: redelegations as f64 / n,
                    messages: messages as f64 / n,
                });
            }
        }
    }

    let mut table = Table::new([
        "strategy",
        "loss",
        "crashed",
        "recall",
        "retries/q",
        "redelegations/q",
        "msgs/q",
    ]);
    for row in &rows {
        table.row([
            row.strategy.to_string(),
            pct(row.drop_probability),
            pct(row.crash_fraction),
            pct(row.recall),
            f(row.retries, 1),
            f(row.redelegations, 1),
            f(row.messages, 0),
        ]);
    }
    print!("{}", table.to_markdown());

    println!("\n### JSON series (recall vs crash fraction)\n");
    for &(name, _) in &STRATEGIES {
        for &drop_p in &DROP_PROBABILITIES {
            let points: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.strategy == name && r.drop_probability == drop_p)
                .map(|r| (r.crash_fraction, r.recall))
                .collect();
            println!(
                "{}",
                json_series(
                    "protocol_recall",
                    &[
                        ("strategy", name.to_string()),
                        ("drop_probability", format!("{drop_p}")),
                    ],
                    "crash_fraction",
                    "recall",
                    &points,
                )
            );
        }
    }
    println!(
        "\nTimeout-driven retries absorb link loss; re-delegation routes \
         around crashed vertices (Lemma 3.2); the secondary cube recovers \
         the objects the dead vertices held."
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn supports_the_fault_tolerance_claims() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let rows = run(&ctx);
        for row in &rows {
            // Proportional degradation: recall loss tracks the failed
            // fraction (generous tolerance: hot nodes may be hit).
            assert!(
                row.hypercube_recall >= 1.0 - 2.5 * row.failed_fraction,
                "at {}: hypercube recall {}",
                row.failed_fraction,
                row.hypercube_recall
            );
            // The hypercube never blocks more popular queries than the
            // DII, whose per-keyword owners are single points of
            // failure.
            assert!(
                row.hypercube_blocked <= row.dii_blocked + 1e-9,
                "at {}: hypercube blocked {} vs DII {}",
                row.failed_fraction,
                row.hypercube_blocked,
                row.dii_blocked
            );
            // Replication dominates the plain cube.
            assert!(row.replicated_recall >= row.hypercube_recall - 1e-9);
        }
        // At low failure levels popular queries survive the hypercube
        // outright.
        assert_eq!(rows[0].hypercube_blocked, 0.0, "5% failures block nothing");
        // DII eventually blocks whole queries; the hypercube does not.
        let worst = rows.last().expect("non-empty");
        assert!(
            worst.dii_blocked > 0.0,
            "at 40% failures some DII keyword owners must be dead"
        );
        assert!(
            worst.replicated_recall > worst.hypercube_recall,
            "replication should visibly help at 40% failures"
        );
    }

    #[test]
    fn protocol_sweep_ranks_strategies() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let rows = run_protocol(&ctx);
        assert_eq!(
            rows.len(),
            STRATEGIES.len() * DROP_PROBABILITIES.len() * CRASH_FRACTIONS.len()
        );
        let cell = |strategy: &str, drop_p: f64, crash: f64| -> ProtocolAvailabilityRow {
            *rows
                .iter()
                .find(|r| {
                    r.strategy == strategy
                        && r.drop_probability == drop_p
                        && r.crash_fraction == crash
                })
                .expect("cell present")
        };
        // Fault-free cells: perfect recall for every strategy, no
        // recovery machinery engaged.
        for &(name, _) in &STRATEGIES {
            let row = cell(name, 0.0, 0.0);
            assert!(
                row.recall > 0.999,
                "{name} fault-free recall {}",
                row.recall
            );
            assert_eq!(row.retries, 0.0, "{name} retried without faults");
        }
        // Retries engage under loss and recover full recall.
        let retry_lossy = cell("retry", 0.2, 0.0);
        assert!(retry_lossy.retries > 0.0, "loss must trigger retries");
        assert!(
            retry_lossy.recall > 0.999,
            "retries must absorb pure loss: recall {}",
            retry_lossy.recall
        );
        // Under combined crash + loss the strategies are ordered (small
        // slack: different strategies draw different drop streams).
        let worst_crash = *CRASH_FRACTIONS.last().expect("non-empty");
        let naive = cell("naive", 0.2, worst_crash);
        let retry = cell("retry", 0.2, worst_crash);
        let redelegate = cell("redelegate", 0.2, worst_crash);
        let failover = cell("failover", 0.2, worst_crash);
        assert!(naive.recall <= retry.recall + 0.05);
        assert!(retry.recall <= redelegate.recall + 0.02);
        assert!(redelegate.recall <= failover.recall + 0.02);
        assert!(
            failover.recall > naive.recall,
            "failover {} must beat naive {}",
            failover.recall,
            naive.recall
        );
        assert!(
            redelegate.redelegations > 0.0,
            "crashes must trigger re-delegations"
        );
    }
}
