//! Availability under index-node failures (§3.4's fault-tolerance
//! argument, made quantitative).
//!
//! The paper argues qualitatively: "since a number of nodes are
//! responsible for a single keyword, any failure of them cannot block
//! all queries involving the keyword" — unlike the DII, where one node
//! owns each keyword outright. This experiment kills a growing fraction
//! of index nodes and measures, over popular queries:
//!
//! * **recall retained** — the fraction of the original matches still
//!   returned (hypercube degrades gracefully; DII drops a keyword's
//!   entire result set the moment its owner dies);
//! * **queries fully blocked** — zero results returned despite a
//!   non-empty ground truth;
//! * the same with the **secondary-hypercube replication** of §3.4
//!   ([`hyperdex_core::replication::ReplicatedIndex`]), which restores
//!   recall until both copies of an entry are lost.

use hyperdex_core::baseline::DistributedInvertedIndex;
use hyperdex_core::replication::ReplicatedIndex;
use hyperdex_core::{HypercubeIndex, SupersetQuery};
use hyperdex_simnet::rng::SimRng;

use crate::report::{pct, section, Table};
use crate::SharedContext;

/// Failed fractions of the node population swept.
pub const FAILURE_FRACTIONS: [f64; 4] = [0.05, 0.10, 0.20, 0.40];

/// One measured row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityRow {
    /// Fraction of index nodes failed.
    pub failed_fraction: f64,
    /// Mean recall retained by the plain hypercube index.
    pub hypercube_recall: f64,
    /// Mean recall retained by the DII baseline.
    pub dii_recall: f64,
    /// Mean recall retained with secondary-hypercube replication.
    pub replicated_recall: f64,
    /// Fraction of queries fully blocked (hypercube / DII).
    pub hypercube_blocked: f64,
    /// Fraction of queries fully blocked under DII.
    pub dii_blocked: f64,
}

/// Objects loaded (a sample keeps the sweep fast; availability ratios
/// are scale-free).
const OBJECTS: usize = 8_000;
/// Queries evaluated per failure level.
const QUERIES: usize = 30;

/// Runs the sweep and returns the rows.
pub fn run(ctx: &SharedContext) -> Vec<AvailabilityRow> {
    section("Availability — recall under index-node failures (§3.4)");
    let r = 10u8;
    let mut rows = Vec::new();

    // Queries: popular sets of sizes 1..=2 (the hot, fragile ones).
    let mut queries = ctx.queries.popular_of_size(1, QUERIES / 2);
    queries.extend(ctx.queries.popular_of_size(2, QUERIES / 2));

    for &fraction in &FAILURE_FRACTIONS {
        // Fresh indexes per level so failures do not accumulate.
        let mut cube = HypercubeIndex::new(r, ctx.seed).expect("valid");
        let mut dii = DistributedInvertedIndex::new(r, ctx.seed).expect("valid");
        let mut replicated = ReplicatedIndex::new(r, ctx.seed).expect("valid");
        for (id, k) in ctx.corpus.indexable().take(OBJECTS) {
            cube.insert(id, k.clone()).expect("non-empty");
            dii.insert(id, k);
            replicated.insert(id, k.clone()).expect("non-empty");
        }
        let truths: Vec<usize> = queries.iter().map(|q| cube.matching_count(q)).collect();

        // Fail the same uniformly chosen fraction of the 2^r nodes in
        // every scheme (same RNG stream → comparable failure sets).
        let mut rng = SimRng::new(ctx.seed ^ 0xFA11 ^ fraction.to_bits());
        let n_fail = ((1u64 << r) as f64 * fraction) as usize;
        let shape = cube.shape();
        let mut failed_bits = Vec::with_capacity(n_fail);
        while failed_bits.len() < n_fail {
            let bits = rng.gen_range(1u64 << r);
            if !failed_bits.contains(&bits) {
                failed_bits.push(bits);
            }
        }
        for &bits in &failed_bits {
            let v = hyperdex_hypercube::Vertex::from_bits(shape, bits).expect("valid");
            cube.drop_node(v);
            replicated.fail_primary(v);
            dii.drop_node(bits);
        }
        // Independently fail the same fraction of secondary nodes (the
        // replicated scheme's copies fail too — no free lunch).
        for _ in 0..n_fail {
            let bits = rng.gen_range(1u64 << r);
            let v = hyperdex_hypercube::Vertex::from_bits(shape, bits).expect("valid");
            replicated.fail_secondary(v);
        }

        // Measure.
        let mut cube_recall = 0.0;
        let mut dii_recall = 0.0;
        let mut rep_recall = 0.0;
        let mut cube_blocked = 0usize;
        let mut dii_blocked = 0usize;
        let mut counted = 0usize;
        for (q, &truth) in queries.iter().zip(&truths) {
            if truth == 0 {
                continue;
            }
            counted += 1;
            let got_cube = cube
                .superset_search(&SupersetQuery::new(q.clone()).use_cache(false))
                .expect("valid")
                .results
                .len();
            let got_dii = dii.query(q).results.len();
            let got_rep = replicated
                .superset_search(&SupersetQuery::new(q.clone()).use_cache(false))
                .expect("valid")
                .results
                .len();
            cube_recall += got_cube as f64 / truth as f64;
            dii_recall += got_dii as f64 / truth as f64;
            rep_recall += got_rep as f64 / truth as f64;
            // "Blocked" is only meaningful for genuinely popular
            // queries: a query with a couple of matches on one vertex
            // dies with that vertex under any placement scheme.
            if truth >= 10 {
                cube_blocked += usize::from(got_cube == 0);
                dii_blocked += usize::from(got_dii == 0);
            }
        }
        let n = counted.max(1) as f64;
        rows.push(AvailabilityRow {
            failed_fraction: fraction,
            hypercube_recall: cube_recall / n,
            dii_recall: dii_recall / n,
            replicated_recall: rep_recall / n,
            hypercube_blocked: cube_blocked as f64 / n,
            dii_blocked: dii_blocked as f64 / n,
        });
    }

    let mut table = Table::new([
        "nodes failed",
        "hypercube recall",
        "DII recall",
        "replicated recall",
        "hypercube blocked",
        "DII blocked",
    ]);
    for row in &rows {
        table.row([
            pct(row.failed_fraction),
            pct(row.hypercube_recall),
            pct(row.dii_recall),
            pct(row.replicated_recall),
            pct(row.hypercube_blocked),
            pct(row.dii_blocked),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "\n§3.4's claim: the hypercube loses recall proportionally and never \
         blocks a keyword outright; DII queries die whole when a keyword's \
         single owner dies; a secondary hypercube restores recall."
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn supports_the_fault_tolerance_claims() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let rows = run(&ctx);
        for row in &rows {
            // Proportional degradation: recall loss tracks the failed
            // fraction (generous tolerance: hot nodes may be hit).
            assert!(
                row.hypercube_recall >= 1.0 - 2.5 * row.failed_fraction,
                "at {}: hypercube recall {}",
                row.failed_fraction,
                row.hypercube_recall
            );
            // The hypercube never blocks more popular queries than the
            // DII, whose per-keyword owners are single points of
            // failure.
            assert!(
                row.hypercube_blocked <= row.dii_blocked + 1e-9,
                "at {}: hypercube blocked {} vs DII {}",
                row.failed_fraction,
                row.hypercube_blocked,
                row.dii_blocked
            );
            // Replication dominates the plain cube.
            assert!(row.replicated_recall >= row.hypercube_recall - 1e-9);
        }
        // At low failure levels popular queries survive the hypercube
        // outright.
        assert_eq!(rows[0].hypercube_blocked, 0.0, "5% failures block nothing");
        // DII eventually blocks whole queries; the hypercube does not.
        let worst = rows.last().expect("non-empty");
        assert!(
            worst.dii_blocked > 0.0,
            "at 40% failures some DII keyword owners must be dead"
        );
        assert!(
            worst.replicated_recall > worst.hypercube_recall,
            "replication should visibly help at 40% failures"
        );
    }
}
