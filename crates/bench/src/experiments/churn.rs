//! Search quality and repair cost under live membership churn.
//!
//! The paper's availability experiment (§3.4, [`crate::experiments::
//! availability`]) kills a *static* fraction of index nodes. Here the
//! population is **live**: a seeded [`ChurnPlan`] joins, gracefully
//! removes, and crashes physical hosts while queries run, and the
//! churn engine of [`hyperdex_core::churn`] moves each vertex's index
//! table to its new surrogate (bounded handoff batches), reassigns
//! orphans at stabilization rounds, and anti-entropy-repairs crash
//! losses from the secondary cube.
//!
//! The sweep crosses **churn rate** (membership events per 1000 ticks)
//! with the **stabilization interval** and reports, per cell:
//!
//! * **recall** — mean fraction of the static ground truth returned by
//!   fault-tolerant searches probing at four instants mid-churn;
//! * **lookup consistency** — fraction of vertices answered by their
//!   true surrogate owner at the probe instants;
//! * **handoff traffic** — batches, entries, and payload bytes moved;
//! * **repair lag** — mean/max ticks from a crash loss to the diff
//!   against the secondary cube reaching empty;
//! * the settled (quiescent) consistency, which must return to 1.0.
//!
//! A churn rate of zero reproduces the static ring: full recall, full
//! consistency, zero handoff traffic — the availability experiment's
//! fault-free baseline.

use std::path::Path;

use hyperdex_core::churn::StabilizationConfig;
use hyperdex_core::sim_protocol::{FtConfig, ProtocolSim, RecoveryStrategy};
use hyperdex_core::HypercubeIndex;
use hyperdex_simnet::churn::{ChurnConfig, ChurnPlan};
use hyperdex_simnet::latency::LatencyModel;
use hyperdex_simnet::time::SimTime;

use crate::report::{f, json_series, pct, section, Table};
use crate::SharedContext;

/// Membership events per 1000 ticks (0 = static ring baseline).
pub const CHURN_RATES: [f64; 4] = [0.0, 5.0, 20.0, 60.0];
/// Stabilization intervals (ticks) crossed with every churn rate.
pub const STAB_INTERVALS: [u64; 2] = [32, 128];

/// Cube dimension (every vertex is a simulated endpoint).
const SIM_R: u8 = 7;
/// Objects loaded into the simulated index.
const SIM_OBJECTS: usize = 2_000;
/// Queries evaluated per probe instant.
const SIM_QUERIES: usize = 12;
/// Physical hosts alive at time zero.
const HOSTS: u64 = 48;
/// Virtual-time horizon of each churn plan.
const HORIZON: u64 = 2_000;
/// Probe instants per cell (evenly spaced across the horizon).
const PROBES: u64 = 4;

/// One measured cell of the churn sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnRow {
    /// Membership events per 1000 ticks.
    pub rate: f64,
    /// Ticks between stabilization rounds.
    pub stab_interval: u64,
    /// Plan events actually applied (joins + leaves + crashes).
    pub events: u64,
    /// Mean recall vs the static ground truth over all probes.
    pub recall: f64,
    /// Mean lookup consistency at the probe instants.
    pub consistency: f64,
    /// Consistency after the plan drains to quiescence.
    pub settled_consistency: f64,
    /// Handoff batches installed.
    pub handoff_batches: u64,
    /// Index entries moved by handoffs.
    pub handoff_entries: u64,
    /// Handoff payload bytes (retransmits included).
    pub handoff_bytes: u64,
    /// Mean ticks from crash loss to repaired (0 when no crash lost
    /// postings).
    pub repair_lag_mean: f64,
    /// Worst repair lag in ticks.
    pub repair_lag_max: u64,
    /// Stabilization rounds executed.
    pub stabilization_rounds: u64,
}

/// Runs the churn sweep, prints the markdown table and JSON series,
/// and returns the rows.
pub fn run(ctx: &SharedContext) -> Vec<ChurnRow> {
    section("Churn — recall, consistency, and repair under live membership");
    let mut queries = ctx.queries.popular_of_size(1, SIM_QUERIES / 2);
    queries.extend(ctx.queries.popular_of_size(2, SIM_QUERIES / 2));

    // Static ground truth from the direct engine (same hasher seed).
    let mut truth_index = HypercubeIndex::new(SIM_R, ctx.seed).expect("valid");
    for (id, k) in ctx.corpus.indexable().take(SIM_OBJECTS) {
        truth_index.insert(id, k.clone()).expect("non-empty");
    }
    let truths: Vec<usize> = queries
        .iter()
        .map(|q| truth_index.matching_count(q))
        .collect();

    let members: Vec<u64> = (1..=HOSTS).collect();
    let mut rows = Vec::new();
    for &rate in &CHURN_RATES {
        for &stab in &STAB_INTERVALS {
            let gen_cfg = ChurnConfig {
                horizon: SimTime::from_ticks(HORIZON),
                events_per_kilotick: rate,
                join_fraction: 0.4,
                graceful_fraction: 0.6,
            };
            let plan = ChurnPlan::generate(&gen_cfg, &members, ctx.seed ^ rate.to_bits());
            let stab_cfg = StabilizationConfig {
                stabilization_interval: stab,
                repair_interval: stab,
                ..StabilizationConfig::default()
            };

            let mut sim =
                ProtocolSim::new(SIM_R, ctx.seed, LatencyModel::constant(1)).expect("valid");
            for (id, k) in ctx.corpus.indexable().take(SIM_OBJECTS) {
                sim.insert(id, k.clone()).expect("non-empty");
            }
            sim.enable_churn(&plan, stab_cfg, &members).expect("valid");

            let ft = FtConfig::new(RecoveryStrategy::ReplicatedFailover).max_retries(8);
            let mut recall = 0.0;
            let mut counted = 0usize;
            let mut consistency = 0.0;
            for probe in 1..=PROBES {
                sim.run_churn_to(SimTime::from_ticks(HORIZON * probe / PROBES));
                // Consistency snapshot *before* the searches: their
                // event-loop drain settles in-flight handoffs.
                consistency += sim.churn().expect("enabled").consistency();
                for (q, &truth) in queries.iter().zip(&truths) {
                    if truth == 0 {
                        continue;
                    }
                    counted += 1;
                    let out = sim
                        .search_fault_tolerant(q, usize::MAX >> 1, ft)
                        .expect("valid");
                    recall += out.results.len() as f64 / truth as f64;
                }
            }
            sim.run_churn_to_quiescence();
            let st = sim.churn().expect("enabled");
            let stats = *st.stats();
            rows.push(ChurnRow {
                rate,
                stab_interval: stab,
                events: stats.joins + stats.leaves + stats.crashes,
                recall: recall / counted.max(1) as f64,
                consistency: consistency / PROBES as f64,
                settled_consistency: st.consistency(),
                handoff_batches: stats.handoff_batches,
                handoff_entries: stats.handoff_entries,
                handoff_bytes: stats.handoff_bytes,
                repair_lag_mean: stats.repair_lag_mean(),
                repair_lag_max: stats.repair_lag_max,
                stabilization_rounds: stats.stabilization_rounds,
            });
        }
    }

    let mut table = Table::new([
        "rate/kt",
        "stab",
        "events",
        "recall",
        "consistency",
        "settled",
        "handoff batches",
        "handoff KiB",
        "repair lag (mean/max)",
        "rounds",
    ]);
    for row in &rows {
        table.row([
            f(row.rate, 0),
            row.stab_interval.to_string(),
            row.events.to_string(),
            pct(row.recall),
            pct(row.consistency),
            pct(row.settled_consistency),
            row.handoff_batches.to_string(),
            f(row.handoff_bytes as f64 / 1024.0, 1),
            format!("{}/{}", f(row.repair_lag_mean, 0), row.repair_lag_max),
            row.stabilization_rounds.to_string(),
        ]);
    }
    print!("{}", table.to_markdown());

    println!("\n### JSON series (vs churn rate)\n");
    for &stab in &STAB_INTERVALS {
        for (name, y, pick) in [
            ("churn_recall", "recall", 0usize),
            ("churn_consistency", "lookup consistency", 1),
            ("churn_handoff_bytes", "handoff bytes", 2),
        ] {
            let points: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.stab_interval == stab)
                .map(|r| {
                    let v = match pick {
                        0 => r.recall,
                        1 => r.consistency,
                        _ => r.handoff_bytes as f64,
                    };
                    (r.rate, v)
                })
                .collect();
            println!(
                "{}",
                json_series(
                    name,
                    &[("stabilization_interval", stab.to_string())],
                    "events_per_kilotick",
                    y,
                    &points,
                )
            );
        }
    }
    rows
}

/// Writes the sweep as a seed-stamped JSON object (the
/// `BENCH_churn.json` artifact): `{"seed":N,"rows":[…]}`.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn write_json(rows: &[ChurnRow], seed: u64, path: &Path) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"rate\":{},\"stab_interval\":{},\"events\":{},\"recall\":{:.6},\
                 \"consistency\":{:.6},\"settled_consistency\":{:.6},\
                 \"handoff_batches\":{},\"handoff_entries\":{},\"handoff_bytes\":{},\
                 \"repair_lag_mean\":{:.3},\"repair_lag_max\":{},\
                 \"stabilization_rounds\":{}}}",
                r.rate,
                r.stab_interval,
                r.events,
                r.recall,
                r.consistency,
                r.settled_consistency,
                r.handoff_batches,
                r.handoff_entries,
                r.handoff_bytes,
                r.repair_lag_mean,
                r.repair_lag_max,
                r.stabilization_rounds,
            )
        })
        .collect();
    crate::report::write_json_artifact(path, seed, &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn zero_churn_reproduces_the_static_ring_and_sweep_is_deterministic() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let rows = run(&ctx);
        assert_eq!(rows.len(), CHURN_RATES.len() * STAB_INTERVALS.len());
        for row in &rows {
            // Every cell settles back to a fully consistent ring.
            assert_eq!(
                row.settled_consistency, 1.0,
                "rate {} stab {} never settled",
                row.rate, row.stab_interval
            );
            if row.rate == 0.0 {
                // The static baseline: nothing moves, nothing is lost.
                assert_eq!(row.recall, 1.0, "static ring lost recall");
                assert_eq!(row.consistency, 1.0);
                assert_eq!(row.handoff_bytes, 0);
                assert_eq!(row.events, 0);
            } else {
                // Replicated failover holds recall high through churn.
                assert!(
                    row.recall > 0.85,
                    "rate {} stab {}: recall {}",
                    row.rate,
                    row.stab_interval,
                    row.recall
                );
            }
        }
        // Churn moves index state: the busiest cell pays real traffic.
        let busiest = rows.last().expect("non-empty");
        assert!(busiest.handoff_bytes > 0, "60 events/kt moved nothing");

        // Same seed ⇒ byte-identical series.
        let again = run(&ctx);
        assert_eq!(rows, again, "sweep is not deterministic");
    }
}
