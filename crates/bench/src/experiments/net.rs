//! Socket-mode throughput: the same batched workload through a real
//! multi-process TCP cluster, side by side with the in-process
//! channel fabric.
//!
//! Every cell replays a byte-identical request batch (shared with the
//! `runtime` sweep via [`super::runtime::requests_for`]) two ways:
//!
//! * **channel mode** — [`hyperdex_runtime::NodeRuntime::run_batch`]
//!   with `workers` threads, the PR 6 baseline;
//! * **socket mode** — a loopback cluster of `workers` server
//!   processes (one shard each) driven through
//!   [`hyperdex_net::NetClient::run_batch`] with the same in-flight
//!   window.
//!
//! Before anything is timed the cell runs the four-executor parity
//! check ([`hyperdex_net::assert_net_parity`]), so a socket-layer bug
//! cannot masquerade as a performance result. Both modes assert frame
//! conservation at shutdown. The `socket/channel` column is the
//! honest price of real syscalls and process hops: expected **below
//! 1** on loopback, shrinking as scans dominate frames.

use std::path::Path;
use std::time::Instant;

use hyperdex_core::{KeywordSet, ObjectId};
use hyperdex_net::client::NetConfig;
use hyperdex_net::cluster::{server_binary, Cluster, ClusterConfig};
use hyperdex_net::parity::assert_net_parity;
use hyperdex_runtime::{NodeRuntime, RuntimeConfig, ShardPolicy};
use hyperdex_workload::{Corpus, CorpusConfig, QueryLog, QueryLogConfig};

use crate::experiments::runtime::{parity_queries, requests_for};
use crate::report::{f, json_series, section, Table};
use crate::{Scale, SharedContext};

/// Cluster sizes swept: `workers` processes, one shard each.
pub const CLUSTER_SIZES: [u32; 3] = [1, 2, 4];
/// Query-mix names, in sweep order (shared with the runtime sweep).
pub const MIXES: [&str; 3] = ["pin", "scan", "mixed"];

/// Cube dimension (same scan-heavy regime as the runtime sweep).
const NET_R: u8 = 8;
/// Timed repetitions per mode; the best one is reported.
const REPS: usize = 3;

/// Shard placement both modes run under; recorded per row.
const POLICY: ShardPolicy = ShardPolicy::Prefix;

/// Objects indexed per scale. One size per scale — each cell pays
/// real process launches, so the sweep axis is cluster size, not
/// corpus size.
const OBJECTS_FULL: usize = 16_000;
const OBJECTS_SMALL: usize = 4_000;

/// One measured cell of the socket sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NetRow {
    /// Cube dimension `r`.
    pub r: u8,
    /// Objects indexed.
    pub corpus_size: usize,
    /// Query-mix name (one of [`MIXES`]).
    pub mix: &'static str,
    /// Shard-placement policy name (both modes).
    pub policy: &'static str,
    /// Server processes (= worker shards).
    pub servers: u32,
    /// Requests kept in flight per connection (`HYPERDEX_NET_WINDOW`).
    pub window: usize,
    /// Requests replayed through the batch window.
    pub requests: usize,
    /// Socket-mode completed requests per second.
    pub qps: f64,
    /// Socket-mode median per-request latency, microseconds.
    pub p50_us: f64,
    /// Socket-mode p99 per-request latency, microseconds.
    pub p99_us: f64,
    /// Socket-mode frames sent over the run (deterministic;
    /// conservation-checked at shutdown).
    pub frames: u64,
    /// Channel-mode qps on the same batch and worker count.
    pub channel_qps: f64,
    /// `qps / channel_qps` — the cost of real sockets.
    pub socket_vs_channel: f64,
}

impl NetRow {
    /// The deterministic (seed-reproducible) projection of the row.
    pub fn deterministic_key(&self) -> (u8, usize, &'static str, u32, usize, u64) {
        (
            self.r,
            self.corpus_size,
            self.mix,
            self.servers,
            self.requests,
            self.frames,
        )
    }
}

/// Times one warmup-plus-best-of-[`REPS`] batch run; `run` replays the
/// whole batch and returns its per-request latencies in microseconds.
fn best_of(mut run: impl FnMut() -> Vec<f64>, requests: usize) -> (f64, Vec<f64>) {
    run(); // warmup
    let mut best_qps = 0.0f64;
    let mut best_lat: Vec<f64> = Vec::new();
    for _ in 0..REPS {
        let t0 = Instant::now();
        let lat = run();
        let secs = t0.elapsed().as_secs_f64();
        let qps = if secs == 0.0 {
            f64::INFINITY
        } else {
            requests as f64 / secs
        };
        if qps >= best_qps {
            best_qps = qps;
            best_lat = lat;
        }
    }
    best_lat.sort_by(|a, b| a.total_cmp(b));
    (best_qps, best_lat)
}

/// Runs the socket sweep, prints the markdown table and JSON series,
/// and returns the rows.
///
/// # Panics
///
/// Panics when the `hyperdex-server` binary cannot be found (build it
/// with `cargo build -p hyperdex-net` first), when any cell fails
/// four-executor parity, or when either mode's shutdown loses a frame.
pub fn run(ctx: &SharedContext) -> Vec<NetRow> {
    section("Net — socket-mode throughput vs. the in-process channel fabric");
    let bin = server_binary().expect("hyperdex-server binary (cargo build -p hyperdex-net)");
    // `HYPERDEX_NET_SMOKE=1` shrinks the sweep to the CI throughput
    // smoke: pin mix only, {1, 2} processes, small corpus — enough to
    // catch a transport regression without a full bench run.
    let smoke = std::env::var("HYPERDEX_NET_SMOKE").is_ok_and(|v| v == "1");
    let sizes: &[u32] = if smoke {
        &CLUSTER_SIZES[..2]
    } else {
        &CLUSTER_SIZES
    };
    let mixes: &[&'static str] = if smoke { &MIXES[..1] } else { &MIXES };
    let window = NetConfig::default().window;
    let objects = match ctx.scale {
        Scale::Full => OBJECTS_FULL,
        Scale::Small => OBJECTS_SMALL,
    };
    let cell_seed = ctx.seed ^ (u64::from(NET_R) << 32) ^ (objects as u64);
    let corpus = Corpus::generate(&CorpusConfig::pchome().with_objects(objects), cell_seed);
    let log = QueryLog::generate(
        &QueryLogConfig::pchome_day().with_queries(4_000),
        &corpus,
        cell_seed ^ 0xF00D,
    );
    let entries: Vec<(ObjectId, KeywordSet)> =
        corpus.indexable().map(|(id, k)| (id, k.clone())).collect();

    // Parity first, untimed: every cluster size must agree with the
    // direct engine, the sim, and the threaded runtime.
    let checks = parity_queries(&log);
    for &servers in sizes {
        let report = assert_net_parity(
            NET_R,
            cell_seed,
            servers,
            servers,
            &entries,
            &checks,
            Some(bin.clone()),
        );
        assert_eq!(report.shutdown.in_flight(), 0);
    }
    println!(
        "parity: {} objects × {} queries × processes {sizes:?} — ok (4 executors)",
        entries.len(),
        checks.len()
    );

    let mut rows: Vec<NetRow> = Vec::new();
    for &mix in mixes {
        let requests = requests_for(mix, &corpus, &log);
        for &servers in sizes {
            // Channel mode: the in-process baseline on the same batch,
            // same placement policy.
            let mut rt = NodeRuntime::start(
                RuntimeConfig::new(NET_R, servers)
                    .seed(cell_seed)
                    .policy(POLICY),
            )
            .expect("valid r");
            rt.bulk_load(entries.iter().map(|(id, k)| (*id, k)))
                .expect("non-empty sets");
            rt.flush();
            let (channel_qps, _) = best_of(
                || {
                    rt.run_batch(&requests, window)
                        .iter()
                        .map(|b| b.latency.as_secs_f64() * 1e6)
                        .collect()
                },
                requests.len(),
            );
            rt.shutdown().assert_conserved();

            // Socket mode: one process per shard over loopback.
            let mut cfg = ClusterConfig::new(NET_R, cell_seed, servers, servers);
            cfg.policy = POLICY;
            cfg.server_bin = Some(bin.clone());
            let cluster = Cluster::launch(cfg).expect("cluster launch");
            let mut client = cluster.client().expect("cluster client");
            for (id, k) in &entries {
                client.insert(*id, k.clone()).expect("insert");
            }
            client.flush().expect("flush barrier");
            let (qps, lat) = best_of(
                || {
                    client
                        .run_batch(&requests, window)
                        .expect("batch over TCP")
                        .iter()
                        .map(|b| b.latency.as_secs_f64() * 1e6)
                        .collect()
                },
                requests.len(),
            );
            let report = cluster.shutdown(client).expect("cluster shutdown");
            report.assert_conserved();

            let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
            rows.push(NetRow {
                r: NET_R,
                corpus_size: objects,
                mix,
                policy: POLICY.name(),
                servers,
                window,
                requests: requests.len(),
                qps,
                p50_us: pct(0.50),
                p99_us: pct(0.99),
                frames: report.total_sent(),
                channel_qps,
                socket_vs_channel: if channel_qps == 0.0 {
                    0.0
                } else {
                    qps / channel_qps
                },
            });
        }
    }

    // In-run throughput bars: real perf claims only hold in release
    // builds on hosts with enough cores to actually run the processes
    // in parallel, so both gates check that first.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    #[cfg(not(debug_assertions))]
    for row in &rows {
        if row.mix == "pin" && row.servers == 2 && cores >= 2 {
            assert!(
                row.socket_vs_channel >= 0.5,
                "socket throughput bar: pin mix at 2 processes reached only \
                 {:.3}× of channel mode (bar: 0.5)",
                row.socket_vs_channel
            );
        }
        if row.mix == "scan" && row.servers == 4 && cores >= 4 {
            assert!(
                row.socket_vs_channel >= 0.8,
                "socket throughput bar: scan mix at 4 processes reached only \
                 {:.3}× of channel mode (bar: 0.8)",
                row.socket_vs_channel
            );
        }
    }
    let _ = cores;

    let mut table = Table::new([
        "r",
        "objects",
        "mix",
        "policy",
        "processes",
        "window",
        "requests",
        "qps",
        "p50 µs",
        "p99 µs",
        "frames",
        "channel qps",
        "socket/channel",
    ]);
    for row in &rows {
        table.row([
            row.r.to_string(),
            row.corpus_size.to_string(),
            row.mix.to_string(),
            row.policy.to_string(),
            row.servers.to_string(),
            row.window.to_string(),
            row.requests.to_string(),
            f(row.qps, 0),
            f(row.p50_us, 1),
            f(row.p99_us, 1),
            row.frames.to_string(),
            f(row.channel_qps, 0),
            f(row.socket_vs_channel, 3),
        ]);
    }
    print!("{}", table.to_markdown());

    println!("\n### JSON series (vs cluster size)\n");
    for &mix in mixes {
        let points: Vec<(f64, f64)> = rows
            .iter()
            .filter(|row| row.mix == mix)
            .map(|row| (f64::from(row.servers), row.qps))
            .collect();
        println!(
            "{}",
            json_series(
                "net_qps",
                &[("objects", objects.to_string()), ("mix", mix.to_string()),],
                "processes",
                "queries/sec",
                &points,
            )
        );
    }
    rows
}

/// Writes the sweep as a seed-stamped JSON object (the
/// `BENCH_net.json` artifact): `{"seed":N,"rows":[…]}`.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn write_json(rows: &[NetRow], seed: u64, path: &Path) -> std::io::Result<()> {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"r\":{},\"corpus_size\":{},\"mix\":\"{}\",\"policy\":\"{}\",\
                 \"servers\":{},\"window\":{},\
                 \"requests\":{},\"qps\":{:.2},\"p50_us\":{:.2},\"p99_us\":{:.2},\
                 \"frames\":{},\"channel_qps\":{:.2},\"socket_vs_channel\":{:.4}}}",
                r.r,
                r.corpus_size,
                r.mix,
                r.policy,
                r.servers,
                r.window,
                r.requests,
                r.qps,
                r.p50_us,
                r.p99_us,
                r.frames,
                r.channel_qps,
                r.socket_vs_channel,
            )
        })
        .collect();
    crate::report::write_json_artifact(path, seed, &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_artifact_shape() {
        let row = NetRow {
            r: 8,
            corpus_size: 1_000,
            mix: "pin",
            policy: "prefix",
            servers: 2,
            window: 32,
            requests: 512,
            qps: 900.5,
            p50_us: 950.0,
            p99_us: 4200.0,
            frames: 2048,
            channel_qps: 4500.0,
            socket_vs_channel: 0.2,
        };
        let dir = std::env::temp_dir().join("hyperdex_net_json_test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("BENCH_net.json");
        write_json(&[row], 42, &path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with("{\"seed\":42,\"rows\":[\n"));
        assert!(text.contains("\"servers\":2"));
        assert!(text.contains("\"policy\":\"prefix\""));
        assert!(text.contains("\"window\":32"));
        assert!(text.contains("\"channel_qps\":4500.00"));
        assert!(text.contains("\"socket_vs_channel\":0.2000"));
        assert!(text.trim_end().ends_with("]}"));
    }

    #[test]
    fn one_socket_cell_end_to_end() {
        // The full sweep runs under the bench smoke job; here one tiny
        // two-process cell proves the plumbing. Skipped when the server
        // binary has not been built (plain `cargo test` ordering).
        let Ok(bin) = server_binary() else {
            eprintln!("skipping: hyperdex-server not built");
            return;
        };
        let seed = 7u64;
        let corpus = Corpus::generate(&CorpusConfig::pchome().with_objects(300), seed);
        let entries: Vec<(ObjectId, KeywordSet)> =
            corpus.indexable().map(|(id, k)| (id, k.clone())).collect();
        let mut cfg = ClusterConfig::new(8, seed, 2, 2);
        cfg.server_bin = Some(bin);
        let cluster = Cluster::launch(cfg).expect("launch");
        let mut client = cluster.client().expect("client");
        for (id, k) in &entries {
            client.insert(*id, k.clone()).expect("insert");
        }
        client.flush().expect("flush");
        let requests: Vec<hyperdex_runtime::Request> = entries
            .iter()
            .take(32)
            .map(|(_, k)| hyperdex_runtime::Request::Pin(k.clone()))
            .collect();
        let results = client.run_batch(&requests, 8).expect("batch");
        assert_eq!(results.len(), 32);
        assert!(results.iter().all(|b| !b.objects.is_empty()));
        let report = cluster.shutdown(client).expect("shutdown");
        report.assert_conserved();
    }
}
