//! Equation (1) and the §3.5 complexity analysis, checked empirically.
//!
//! Prints the analytic distribution of `|One(F_h(K))|`, its closed-form
//! expectation, and the empirical distribution measured by hashing real
//! query sets from the corpus — the dimensioning machinery behind the
//! paper's "how to pick r without experiment" remark.

use hyperdex_core::{analysis, KeywordHasher, KeywordSet};

use crate::report::{f, section, Table};
use crate::SharedContext;

/// Analytic-vs-empirical comparison for one `(r, m)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Eq1Row {
    /// Hypercube dimension.
    pub r: u32,
    /// Keyword-set size.
    pub m: u32,
    /// `E|One|` per Equation (1).
    pub analytic_mean: f64,
    /// Mean `|One|` over corpus keyword sets of size `m`.
    pub empirical_mean: Option<f64>,
    /// Worst-case search bound `2^{r − ⌈E|One|⌉}` as a node fraction.
    pub search_fraction_bound: f64,
}

/// Runs the comparison and returns the rows.
pub fn run(ctx: &SharedContext) -> Vec<Eq1Row> {
    section("Equation (1) — |One(F_h(K))| analytics vs. corpus measurements");
    let r = 10u32;
    let hasher = KeywordHasher::new(r as u8, ctx.seed).expect("valid dimension");

    // Empirical: hash every corpus keyword set, group by size.
    let mut sums = vec![0u64; 31];
    let mut counts = vec![0u64; 31];
    for (_, keywords) in ctx.corpus.indexable() {
        let m = keywords.len();
        if m < sums.len() {
            sums[m] += u64::from(hasher.vertex_for(keywords).one_count());
            counts[m] += 1;
        }
    }

    let mut rows = Vec::new();
    let mut table = Table::new([
        "m",
        "E|One| (Eq.1)",
        "mean |One| (corpus)",
        "samples",
        "≈ fraction searched",
    ]);
    for m in 1..=12u32 {
        let analytic_mean = analysis::expected_ones(r, m);
        let empirical_mean =
            (counts[m as usize] > 0).then(|| sums[m as usize] as f64 / counts[m as usize] as f64);
        let search_fraction_bound = analysis::expected_search_fraction(r, m);
        table.row([
            m.to_string(),
            f(analytic_mean, 3),
            empirical_mean.map_or("-".into(), |v| f(v, 3)),
            counts[m as usize].to_string(),
            f(search_fraction_bound, 4),
        ]);
        rows.push(Eq1Row {
            r,
            m,
            analytic_mean,
            empirical_mean,
            search_fraction_bound,
        });
    }
    print!("{}", table.to_markdown());

    // Distribution detail for one example set size.
    println!("\nP(|One| = j) for r = 10, m = 5 (Equation 1):");
    for j in 1..=5u32 {
        println!("  j = {j}: {}", f(analysis::prob_ones(r, 5, j), 4));
    }

    // Verify against a real multi-word set from Table 1's schema.
    let example =
        KeywordSet::parse("isp telecommunication network download").expect("static set parses");
    println!(
        "\nexample: F_h({example}) has |One| = {} (m = 4, E|One| = {})",
        hasher.vertex_for(&example).one_count(),
        f(analysis::expected_ones(r, 4), 3)
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn analytics_match_corpus() {
        let ctx = SharedContext::new(Scale::Small, 1);
        let rows = run(&ctx);
        for row in rows.iter().filter(|r| r.empirical_mean.is_some()) {
            let emp = row.empirical_mean.unwrap();
            // Corpus sets are real hash draws; Eq (1) should predict the
            // mean within a few percent when samples are plentiful.
            if row.m <= 10 {
                assert!(
                    (emp - row.analytic_mean).abs() < 0.25,
                    "m={}: empirical {} vs analytic {}",
                    row.m,
                    emp,
                    row.analytic_mean
                );
            }
        }
        // Search-fraction bound decreases with m.
        for w in rows.windows(2) {
            assert!(w[1].search_fraction_bound <= w[0].search_fraction_bound);
        }
    }
}
