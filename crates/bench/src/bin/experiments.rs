//! The experiment runner: regenerates every table and figure.
//!
//! ```text
//! experiments [EXPERIMENT ...] [--scale full|small] [--seed N] [--list]
//!
//! EXPERIMENT: table1 fig5 fig6 fig7 fig8 fig9 eq1 ablation xcheck
//!             availability churn prune throughput runtime faults net
//!             scale   all (default: all)
//!
//! `churn`, `prune`, `throughput`, `runtime`, `faults`, `net`, and
//! `scale` additionally write their rows to `BENCH_churn.json` /
//! `BENCH_prune.json` / `BENCH_throughput.json` / `BENCH_runtime.json`
//! / `BENCH_faults.json` / `BENCH_net.json` / `BENCH_scale.json` in
//! the current directory, each stamped with the effective seed. `net`
//! launches real `hyperdex-server` processes — build them first with
//! `cargo build -p hyperdex-net`.
//!
//! Experiments with environment knobs list them under `--list` and in
//! the run-summary table; `HYPERDEX_STORE=table|slab` additionally
//! switches the posting-store backend of every executor-backed
//! experiment (the `scale` harness ignores it and always measures
//! both backends).
//! A final table maps each experiment run to the artifact it produced.
//! ```

use std::process::ExitCode;

use hyperdex_bench::experiments::{
    ablation, availability, churn, eq1, faults, fig5, fig6, fig7, fig8, fig9, net, prune, runtime,
    scale as scale_exp, table1, throughput, xcheck,
};
use hyperdex_bench::report::Table;
use hyperdex_bench::{Scale, SharedContext};

const USAGE: &str = "usage: experiments \
                     [table1|fig5|...|eq1|ablation|xcheck|availability|churn|prune|throughput\
                     |runtime|faults|net|scale|all ...] [--scale full|small] [--seed N] [--list]";

/// Every experiment: name, one-line description, and the environment
/// knobs it reads (empty when none beyond the global
/// `HYPERDEX_STORE`), in run order.
const EXPERIMENTS: [(&str, &str, &str); 17] = [
    ("table1", "load distribution across index nodes", ""),
    ("fig5", "keyword-set size distribution", ""),
    ("fig6", "query popularity distribution", ""),
    ("fig7", "index storage per node", ""),
    ("fig8", "nodes contacted vs threshold (top-down)", ""),
    ("fig9", "nodes contacted vs threshold (bottom-up)", ""),
    ("eq1", "analytic node-count formula cross-check", ""),
    ("ablation", "design-knob ablation", ""),
    ("xcheck", "engine vs message-protocol parity", ""),
    ("availability", "recall under static node failures", ""),
    ("churn", "recall and repair under live membership churn", ""),
    ("prune", "occupancy-guided SBT pruning savings", ""),
    (
        "throughput",
        "insert/pin/superset rates, mask prefilter on/off",
        "",
    ),
    (
        "runtime",
        "threaded shared-nothing qps/latency vs worker count",
        "HYPERDEX_STORE",
    ),
    (
        "faults",
        "recall/latency under frame loss and worker crashes",
        "HYPERDEX_STORE",
    ),
    (
        "net",
        "socket-mode qps/latency vs the in-process channel fabric",
        "HYPERDEX_NET_SMOKE, HYPERDEX_NET_WINDOW, HYPERDEX_STORE",
    ),
    (
        "scale",
        "million-object mixed traffic: table vs slab store, SLOs, bytes/object",
        "HYPERDEX_SCALE_OBJECTS, HYPERDEX_SCALE_SMOKE, HYPERDEX_SCALE_R, \
         HYPERDEX_SCALE_PIN_P99_US, HYPERDEX_SCALE_SUP_P99_US",
    ),
];

fn main() -> ExitCode {
    let mut scale = Scale::Small;
    let mut seed = 42u64;
    let mut chosen: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("full") => scale = Scale::Full,
                Some("small") => scale = Scale::Small,
                other => {
                    eprintln!("bad --scale {other:?}\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("bad --seed\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for (name, what, knobs) in EXPERIMENTS {
                    println!("{name:<14} {what}");
                    if !knobs.is_empty() {
                        println!("{:<14} knobs: {knobs}", "");
                    }
                }
                println!(
                    "\nHYPERDEX_STORE=table|slab switches the posting backend of every \
                     executor-backed experiment; `scale` always measures both."
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            name => chosen.push(name.to_string()),
        }
    }
    if chosen.is_empty() || chosen.iter().any(|c| c == "all") {
        chosen = EXPERIMENTS.map(|(name, _, _)| name.to_string()).to_vec();
    }

    let scale_name = match scale {
        Scale::Full => "full (131,180 objects / 178k queries)",
        Scale::Small => "small (10,000 objects / 20k queries)",
    };
    println!("# hyperdex experiment run\nscale: {scale_name}; seed: {seed}");
    println!("building corpus and query log...");
    let ctx = SharedContext::new(scale, seed);
    println!(
        "corpus: {} records, mean {:.2} keywords/object; log: {} queries, top-10 share {:.1}%",
        ctx.corpus.len(),
        ctx.corpus.mean_keywords_per_object(),
        ctx.queries.len(),
        ctx.queries.top_share(10) * 100.0
    );

    // (experiment, artifact) pairs for the final summary table.
    let mut ran: Vec<(String, String)> = Vec::new();
    for name in &chosen {
        let mut artifact = "stdout".to_string();
        match name.as_str() {
            "table1" => {
                table1::run(&ctx, 5);
            }
            "fig5" => {
                fig5::run(&ctx);
            }
            "fig6" => {
                fig6::run(&ctx);
            }
            "fig7" => {
                fig7::run(&ctx);
            }
            "fig8" => {
                fig8::run(&ctx);
            }
            "fig9" => {
                fig9::run(&ctx);
            }
            "eq1" => {
                eq1::run(&ctx);
            }
            "ablation" => {
                ablation::run(&ctx);
            }
            "xcheck" => {
                xcheck::run(&ctx);
            }
            "availability" => {
                availability::run(&ctx);
                availability::run_protocol(&ctx);
            }
            "churn" => {
                let rows = churn::run(&ctx);
                let path = std::path::Path::new("BENCH_churn.json");
                match churn::write_json(&rows, seed, path) {
                    Ok(()) => artifact = path.display().to_string(),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "prune" => {
                let rows = prune::run(&ctx);
                let path = std::path::Path::new("BENCH_prune.json");
                match prune::write_json(&rows, seed, path) {
                    Ok(()) => artifact = path.display().to_string(),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "throughput" => {
                let rows = throughput::run(&ctx);
                let path = std::path::Path::new("BENCH_throughput.json");
                match throughput::write_json(&rows, seed, path) {
                    Ok(()) => artifact = path.display().to_string(),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "runtime" => {
                let rows = runtime::run(&ctx);
                let path = std::path::Path::new("BENCH_runtime.json");
                match runtime::write_json(&rows, seed, path) {
                    Ok(()) => artifact = path.display().to_string(),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "faults" => {
                let rows = faults::run(&ctx);
                let path = std::path::Path::new("BENCH_faults.json");
                match faults::write_json(&rows, seed, path) {
                    Ok(()) => artifact = path.display().to_string(),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "net" => {
                let rows = net::run(&ctx);
                let path = std::path::Path::new("BENCH_net.json");
                match net::write_json(&rows, seed, path) {
                    Ok(()) => artifact = path.display().to_string(),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "scale" => {
                let rows = scale_exp::run(&ctx);
                let path = std::path::Path::new("BENCH_scale.json");
                match scale_exp::write_json(&rows, seed, path) {
                    Ok(()) => artifact = path.display().to_string(),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown experiment `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        ran.push((name.clone(), artifact));
    }

    println!("\n## Run summary\n");
    // The effective seed rides along on every row so a pasted summary
    // is reproducible without the preamble; the knobs column records
    // which environment variables could have shaped each row.
    let seed_text = seed.to_string();
    let mut summary = Table::new(["experiment", "seed", "knobs", "output"]);
    for (name, artifact) in &ran {
        let knobs = EXPERIMENTS
            .iter()
            .find(|(n, _, _)| n == name)
            .map_or("", |(_, _, k)| *k);
        let knobs = if knobs.is_empty() { "—" } else { knobs };
        summary.row([name.as_str(), seed_text.as_str(), knobs, artifact.as_str()]);
    }
    print!("{}", summary.to_markdown());
    println!("\ndone.");
    ExitCode::SUCCESS
}
