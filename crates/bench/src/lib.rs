//! # hyperdex-bench
//!
//! The experiment harness that regenerates every table and figure of
//! *Keyword Search in DHT-based Peer-to-Peer Networks* (ICDCS 2005),
//! plus the ablations DESIGN.md calls out.
//!
//! Run via the `experiments` binary:
//!
//! ```text
//! cargo run -p hyperdex-bench --release --bin experiments -- all
//! cargo run -p hyperdex-bench --release --bin experiments -- fig6 fig8 --scale small
//! ```
//!
//! Each experiment prints a self-describing report (markdown tables /
//! CSV series) to stdout; EXPERIMENTS.md records a full-scale run next
//! to the paper's published curves.
//!
//! Criterion micro-benches live under `benches/` and cover the
//! per-operation costs (§3.5): pin search, superset search, insert and
//! delete versus the DII baseline, hypercube primitives, and DHT
//! routing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::{Scale, SharedContext};
