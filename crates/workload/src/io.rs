//! Corpus and query-log persistence.
//!
//! Experiments should be re-runnable against a *frozen* dataset, not
//! just a seed: a reviewer can export the corpus a figure was produced
//! from, inspect it, and re-load it byte-identically. The format is a
//! deliberately boring tab-separated text file (no external parser
//! dependencies): one record per line, keywords comma-separated in the
//! last field.

use std::io::{self, BufRead, Write};

use hyperdex_core::KeywordSet;

use crate::corpus::Corpus;
use crate::queries::QueryLog;
use crate::records::WebsiteRecord;

/// Writes a corpus as TSV: `id \t title \t url \t category \t
/// description \t kw1,kw2,...`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_corpus<W: Write>(corpus: &Corpus, mut out: W) -> io::Result<()> {
    for r in corpus.records() {
        let kw: Vec<&str> = r.keywords.iter().map(|k| k.as_str()).collect();
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}",
            r.id,
            sanitize(&r.title),
            sanitize(&r.url),
            sanitize(&r.category),
            sanitize(&r.description),
            kw.join(",")
        )?;
    }
    Ok(())
}

/// Reads a corpus previously written by [`write_corpus`].
///
/// # Errors
///
/// Returns `InvalidData` for malformed lines and propagates reader
/// errors.
pub fn read_corpus<R: BufRead>(input: R) -> io::Result<Corpus> {
    let mut records = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 6 {
            return Err(bad_line(lineno, "expected 6 tab-separated fields"));
        }
        let id: u64 = fields[0]
            .parse()
            .map_err(|_| bad_line(lineno, "bad record id"))?;
        let keywords =
            KeywordSet::parse(fields[5]).map_err(|_| bad_line(lineno, "bad keyword list"))?;
        if keywords.is_empty() {
            return Err(bad_line(lineno, "record without keywords"));
        }
        records.push(WebsiteRecord {
            id,
            title: fields[1].to_owned(),
            url: fields[2].to_owned(),
            category: fields[3].to_owned(),
            description: fields[4].to_owned(),
            keywords,
        });
    }
    Ok(Corpus::from_records(records))
}

/// Writes a query log: one query per line, keywords comma-separated,
/// in arrival order.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_query_log<W: Write>(log: &QueryLog, mut out: W) -> io::Result<()> {
    for q in log.iter() {
        let kw: Vec<&str> = q.iter().map(|k| k.as_str()).collect();
        writeln!(out, "{}", kw.join(","))?;
    }
    Ok(())
}

/// Reads a query log written by [`write_query_log`].
///
/// # Errors
///
/// Returns `InvalidData` for unparsable lines and propagates reader
/// errors.
pub fn read_query_log<R: BufRead>(input: R) -> io::Result<QueryLog> {
    let mut queries = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let set = KeywordSet::parse(&line).map_err(|_| bad_line(lineno, "bad query keywords"))?;
        if set.is_empty() {
            return Err(bad_line(lineno, "empty query"));
        }
        queries.push(set);
    }
    Ok(QueryLog::from_queries(queries))
}

/// Replaces tabs/newlines so free-text fields cannot break the format.
fn sanitize(field: &str) -> String {
    field.replace(['\t', '\n', '\r'], " ")
}

fn bad_line(lineno: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {}: {what}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use crate::queries::QueryLogConfig;

    #[test]
    fn corpus_roundtrip() {
        let corpus = Corpus::generate(&CorpusConfig::small_test().with_objects(200), 3);
        let mut buf = Vec::new();
        write_corpus(&corpus, &mut buf).unwrap();
        let loaded = read_corpus(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), corpus.len());
        assert_eq!(loaded.records(), corpus.records());
    }

    #[test]
    fn query_log_roundtrip() {
        let corpus = Corpus::generate(&CorpusConfig::small_test(), 3);
        let log = QueryLog::generate(&QueryLogConfig::small_test().with_queries(500), &corpus, 4);
        let mut buf = Vec::new();
        write_query_log(&log, &mut buf).unwrap();
        let loaded = read_query_log(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), log.len());
        assert!(loaded.iter().eq(log.iter()));
    }

    #[test]
    fn malformed_corpus_lines_rejected() {
        assert!(read_corpus("not-tsv".as_bytes()).is_err());
        assert!(
            read_corpus("x\ta\tb\tc\td\tkw".as_bytes()).is_err(),
            "bad id"
        );
        assert!(
            read_corpus("1\ta\tb\tc\td\t \n".as_bytes()).is_err(),
            "empty keywords"
        );
    }

    #[test]
    fn blank_lines_skipped() {
        let corpus = read_corpus("\n1\tt\tu\tc\td\ta,b\n\n".as_bytes()).unwrap();
        assert_eq!(corpus.len(), 1);
        let log = read_query_log("\na b\n\n".as_bytes()).unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn sanitization_keeps_format_parseable() {
        let mut corpus = Corpus::generate(&CorpusConfig::small_test().with_objects(1), 3);
        // Corrupt a free-text field with a tab via from_records.
        let mut records = corpus.records().to_vec();
        records[0].title = "evil\ttitle\nwith newline".into();
        corpus = Corpus::from_records(records);
        let mut buf = Vec::new();
        write_corpus(&corpus, &mut buf).unwrap();
        let loaded = read_corpus(buf.as_slice()).unwrap();
        assert_eq!(loaded.records()[0].title, "evil title with newline");
    }
}
