//! Distribution statistics for the load-balance figures.
//!
//! Figure 6 ranks nodes from heavy to light and plots the cumulative
//! percentage of objects against the percentage of nodes; a perfectly
//! balanced scheme is the diagonal. These helpers turn raw per-node
//! loads into that curve, plus scalar summaries (Gini coefficient,
//! max/mean ratio) used by tests and the experiment report.

/// A point on a ranked cumulative-load curve: `(fraction of nodes,
/// cumulative fraction of objects)`.
pub type CurvePoint = (f64, f64);

/// Builds Figure 6's ranked cumulative curve from per-node loads.
///
/// `loads` holds the loads of the *non-empty* nodes; `total_nodes` is
/// the full population (e.g. `2^r`), so empty nodes flatten the tail.
/// The curve is downsampled to at most `points` evenly spaced ranks.
///
/// # Panics
///
/// Panics if `total_nodes` is smaller than `loads.len()` or zero.
pub fn ranked_cumulative_curve(
    loads: &[usize],
    total_nodes: u64,
    points: usize,
) -> Vec<CurvePoint> {
    assert!(total_nodes > 0, "need at least one node");
    assert!(
        (loads.len() as u64) <= total_nodes,
        "more loaded nodes than nodes"
    );
    let mut sorted: Vec<usize> = loads.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total_objects: usize = sorted.iter().sum();
    if total_objects == 0 {
        return vec![(0.0, 0.0), (1.0, 0.0)];
    }
    let points = points.max(2);
    let mut curve = Vec::with_capacity(points + 1);
    curve.push((0.0, 0.0));
    // Prefix sums over the ranked loads (zeros implicit past the end).
    let mut prefix: Vec<usize> = Vec::with_capacity(sorted.len() + 1);
    prefix.push(0);
    for &l in &sorted {
        prefix.push(prefix.last().unwrap() + l);
    }
    for p in 1..=points {
        let node_rank = (total_nodes as f64 * p as f64 / points as f64).round() as u64;
        let covered = prefix[(node_rank as usize).min(sorted.len())];
        curve.push((
            node_rank as f64 / total_nodes as f64,
            covered as f64 / total_objects as f64,
        ));
    }
    curve
}

/// The Gini coefficient of the load distribution over `total_nodes`
/// nodes (0 = perfectly even, →1 = maximally concentrated).
///
/// # Panics
///
/// Panics if `total_nodes` is smaller than `loads.len()` or zero.
pub fn gini(loads: &[usize], total_nodes: u64) -> f64 {
    assert!(total_nodes > 0, "need at least one node");
    assert!(
        (loads.len() as u64) <= total_nodes,
        "more loaded nodes than nodes"
    );
    let total: usize = loads.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Gini = 1 − 2·(area under the Lorenz curve). Ascending order with
    // the implicit zero-load nodes first.
    let mut sorted: Vec<usize> = loads.to_vec();
    sorted.sort_unstable();
    let n = total_nodes as f64;
    let mut cumulative = 0.0f64;
    let mut area = 0.0f64;
    let zero_nodes = total_nodes - loads.len() as u64;
    // Zero-load prefix contributes zero area except the trapezoid base.
    let _ = zero_nodes; // Lorenz value stays 0 across the zero prefix.
    for (i, &l) in sorted.iter().enumerate() {
        let prev = cumulative;
        cumulative += l as f64 / total as f64;
        let rank0 = (zero_nodes + i as u64) as f64 / n;
        let rank1 = (zero_nodes + i as u64 + 1) as f64 / n;
        area += (rank1 - rank0) * (prev + cumulative) / 2.0;
    }
    1.0 - 2.0 * area
}

/// Max-to-mean load ratio over the full node population — the hot-spot
/// indicator (1.0 = perfectly even).
///
/// # Panics
///
/// Panics if `total_nodes` is zero.
pub fn max_mean_ratio(loads: &[usize], total_nodes: u64) -> f64 {
    assert!(total_nodes > 0, "need at least one node");
    let total: usize = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / total_nodes as f64;
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    max / mean
}

/// Normalized histogram: `fractions[i] = counts[i] / Σ counts`.
pub fn normalized(counts: &[usize]) -> Vec<f64> {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_even_curve_is_diagonal() {
        let loads = vec![10; 100];
        let curve = ranked_cumulative_curve(&loads, 100, 10);
        for &(x, y) in &curve {
            assert!((x - y).abs() < 1e-9, "({x}, {y}) off the diagonal");
        }
    }

    #[test]
    fn concentrated_curve_jumps_early() {
        // One node holds everything.
        let mut loads = vec![0usize; 99];
        loads.push(1000);
        let curve = ranked_cumulative_curve(&loads, 100, 100);
        // After the first 1% of nodes, 100% of objects are covered.
        let (_, y) = curve[1];
        assert!((y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let loads = vec![5, 3, 9, 1, 7, 2];
        let curve = ranked_cumulative_curve(&loads, 16, 8);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1, "monotone");
        }
        let &(x_end, y_end) = curve.last().unwrap();
        assert!((x_end - 1.0).abs() < 1e-9);
        assert!((y_end - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_loads_flatline() {
        let curve = ranked_cumulative_curve(&[], 8, 4);
        assert_eq!(curve, vec![(0.0, 0.0), (1.0, 0.0)]);
    }

    #[test]
    fn gini_even_is_zero() {
        assert!(gini(&[7; 50], 50).abs() < 1e-9);
    }

    #[test]
    fn gini_concentrated_near_one() {
        let g = gini(&[1000], 1000);
        assert!(g > 0.99, "gini {g}");
    }

    #[test]
    fn gini_orders_schemes() {
        // A skewed distribution has a higher Gini than a mild one.
        let mild = vec![9, 10, 11, 10, 9, 11, 10, 10];
        let skewed = vec![70, 5, 2, 1, 1, 1, 0, 0];
        assert!(gini(&skewed, 8) > gini(&mild, 8));
    }

    #[test]
    fn gini_counts_empty_nodes() {
        // Same non-empty loads, more empty nodes ⇒ more inequality.
        let loads = vec![10, 10, 10, 10];
        assert!(gini(&loads, 16) > gini(&loads, 4));
    }

    #[test]
    fn max_mean_ratio_basics() {
        assert!((max_mean_ratio(&[5, 5, 5, 5], 4) - 1.0).abs() < 1e-9);
        assert!((max_mean_ratio(&[20], 4) - 4.0).abs() < 1e-9);
        assert_eq!(max_mean_ratio(&[], 4), 1.0);
    }

    #[test]
    fn normalized_sums_to_one() {
        let f = normalized(&[1, 3, 4]);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(normalized(&[0, 0]), vec![0.0, 0.0]);
    }
}
