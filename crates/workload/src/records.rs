//! Website records shaped like the paper's Table 1.
//!
//! Each PCHome record carries six fields: ID, Title, URL, Category,
//! Description, and Keyword. Only the keyword set participates in
//! indexing; the other fields exist so examples and Table 1 output look
//! like the original data.

use hyperdex_core::{KeywordSet, ObjectId};
use serde::{Deserialize, Serialize};

/// One website directory record (Table 1 schema).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WebsiteRecord {
    /// Record id (also the DHT object id).
    pub id: u64,
    /// Site title.
    pub title: String,
    /// Site URL.
    pub url: String,
    /// PCHome-style numeric category path.
    pub category: String,
    /// Editor-written description.
    pub description: String,
    /// The keyword set used for indexing.
    pub keywords: KeywordSet,
}

impl WebsiteRecord {
    /// The DHT object id for this record.
    pub fn object_id(&self) -> ObjectId {
        ObjectId::from_raw(self.id)
    }

    /// Renders the record as a Table 1-style row.
    pub fn table_row(&self) -> String {
        let kw: Vec<&str> = self.keywords.iter().map(|k| k.as_str()).collect();
        format!(
            "| {} | {} | {} | {} | {} | {} |",
            self.id,
            self.title,
            self.url,
            self.category,
            self.description,
            kw.join(", ")
        )
    }
}

impl std::fmt::Display for WebsiteRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{} {} <{}> {}",
            self.id, self.title, self.url, self.keywords
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> WebsiteRecord {
        WebsiteRecord {
            id: 11,
            title: "Hinet".into(),
            url: "http://www.hinet.net".into(),
            category: "0818013020".into(),
            description: "Largest ISP in Taiwan".into(),
            keywords: KeywordSet::parse("ISP, telecommunication, network, download").unwrap(),
        }
    }

    #[test]
    fn object_id_derives_from_record_id() {
        assert_eq!(record().object_id(), ObjectId::from_raw(11));
    }

    #[test]
    fn table_row_contains_all_fields() {
        let row = record().table_row();
        for field in [
            "11",
            "Hinet",
            "hinet.net",
            "0818013020",
            "ISP in Taiwan",
            "isp",
        ] {
            assert!(row.contains(field), "missing {field} in {row}");
        }
    }

    #[test]
    fn display_is_compact() {
        let s = record().to_string();
        assert!(s.starts_with("#11 Hinet"));
        assert!(s.contains("isp"));
    }

    #[test]
    fn implements_serde_traits() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<WebsiteRecord>();
    }
}
