//! # hyperdex-workload
//!
//! Synthetic workload generation calibrated to the paper's dataset.
//!
//! The evaluation in §4 of *Keyword Search in DHT-based Peer-to-Peer
//! Networks* (ICDCS 2005) uses two proprietary inputs we cannot obtain:
//!
//! 1. the **PCHome website directory** — 131,180 hand-edited records
//!    averaging 7.3 keywords each, with the keyword-set-size histogram
//!    of Figure 5;
//! 2. two weeks of **PCHome query logs** (~178,000 queries/day), whose
//!    top-10 distinct queries carry over 60 % of daily volume.
//!
//! This crate substitutes statistically equivalent synthetic versions:
//! every §4 result depends only on (a) the keyword-set-size
//! distribution, (b) Zipf-skewed keyword popularity, and (c) query
//! skew — all three are reproduced and unit-tested here. See DESIGN.md
//! §4 for the substitution argument.
//!
//! * [`zipf`] — an exact, seedable Zipf sampler.
//! * [`setsize`] — the keyword-set-size distribution (Figure 5's shape).
//! * [`vocab`] — a synthetic keyword vocabulary.
//! * [`corpus`] — website-record corpus generation (Table 1's schema).
//! * [`queries`] — query-log generation with calibrated skew.
//! * [`stats`] — histograms and the ranked-load curves of Figure 6.
//!
//! # Example
//!
//! ```
//! use hyperdex_workload::corpus::{Corpus, CorpusConfig};
//!
//! let corpus = Corpus::generate(&CorpusConfig::small_test(), 42);
//! assert_eq!(corpus.len(), CorpusConfig::small_test().objects);
//! let mean = corpus.mean_keywords_per_object();
//! assert!((5.0..10.0).contains(&mean), "mean keywords {mean}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod io;
pub mod queries;
pub mod records;
pub mod setsize;
pub mod stats;
pub mod vocab;
pub mod zipf;

pub use corpus::{Corpus, CorpusConfig};
pub use queries::{QueryLog, QueryLogConfig};
pub use records::WebsiteRecord;
pub use setsize::SetSizeDistribution;
pub use vocab::Vocabulary;
pub use zipf::ZipfSampler;
