//! Query-log generation with calibrated skew.
//!
//! The paper replays PCHome query logs: ~178,000 queries per day, and
//! "on average, the ten most popular queries account for more than 60 %
//! of the total queries per day" (footnote 1) — the statistic that
//! makes per-node caching so effective in Figure 9. We synthesize a log
//! with exactly that structure: a pool of distinct query keyword sets
//! (each a subset of some corpus record's keywords, so queries have
//! matches), replayed under a Zipf law whose exponent is calibrated so
//! the top-10 distinct queries carry the target share.

use std::collections::BTreeSet;

use hyperdex_core::KeywordSet;
use hyperdex_simnet::rng::SimRng;

use crate::corpus::Corpus;
use crate::zipf::ZipfSampler;

/// Configuration for query-log generation.
#[derive(Debug, Clone)]
pub struct QueryLogConfig {
    /// Total queries in the log (paper: ~178,000/day).
    pub queries: usize,
    /// Distinct query keyword sets in the popularity pool.
    pub distinct_pool: usize,
    /// Target share of volume carried by the top-10 distinct queries.
    pub top10_share: f64,
    /// Maximum query size in keywords (paper sweeps m = 1..5).
    pub max_query_size: u32,
}

impl QueryLogConfig {
    /// The paper-scale day: 178k queries, 10k distinct sets, top-10
    /// share 60 %, sizes 1..=5.
    pub fn pchome_day() -> Self {
        QueryLogConfig {
            queries: 178_000,
            distinct_pool: 10_000,
            top10_share: 0.6,
            max_query_size: 5,
        }
    }

    /// A miniature for tests: 2k queries over a 200-set pool.
    pub fn small_test() -> Self {
        QueryLogConfig {
            queries: 2_000,
            distinct_pool: 200,
            top10_share: 0.6,
            max_query_size: 5,
        }
    }

    /// Overrides the total query count.
    pub fn with_queries(mut self, n: usize) -> Self {
        self.queries = n;
        self
    }
}

/// A synthetic query log: a ranked pool of distinct query sets plus the
/// replayed sequence.
#[derive(Debug, Clone)]
pub struct QueryLog {
    pool: Vec<KeywordSet>,
    queries: Vec<usize>, // indices into the pool, in arrival order
}

impl QueryLog {
    /// Generates a log against `corpus` deterministically from a seed.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty or the configuration degenerate
    /// (zero pool or zero queries).
    pub fn generate(config: &QueryLogConfig, corpus: &Corpus, seed: u64) -> Self {
        assert!(!corpus.is_empty(), "query log needs a corpus");
        assert!(config.distinct_pool > 10, "pool must exceed the top-10");
        assert!(config.queries > 0, "log must contain queries");
        let mut rng = SimRng::new(seed ^ 0x9E_11_07);

        // Build the distinct pool. Stratify the first slots across
        // sizes 1..=max so every size has popular representatives
        // (Figure 8 samples "popular keyword sets of size m").
        let mut seen: BTreeSet<KeywordSet> = BTreeSet::new();
        let mut pool: Vec<KeywordSet> = Vec::with_capacity(config.distinct_pool);
        let records = corpus.records();
        let mut attempts = 0usize;
        let max_attempts = config.distinct_pool * 200;
        while pool.len() < config.distinct_pool && attempts < max_attempts {
            attempts += 1;
            // Round-robin target size while stratifying; afterwards bias
            // towards small queries ("this kind of simple queries play a
            // major part in user query behavior", §3.4).
            let target_size = if pool.len() < 5 * config.max_query_size as usize {
                (pool.len() as u32 % config.max_query_size) + 1
            } else {
                1 + rng.geometric(0.45, config.max_query_size - 1)
            };
            let record = &records[rng.gen_index(records.len())];
            if record.keywords.len() < target_size as usize {
                continue;
            }
            let words: Vec<_> = record.keywords.iter().cloned().collect();
            let chosen = rng.sample_indices(words.len(), target_size as usize);
            let set: KeywordSet = chosen.into_iter().map(|i| words[i].clone()).collect();
            if seen.insert(set.clone()) {
                pool.push(set);
            }
        }
        assert!(
            pool.len() > 10,
            "could not build a query pool from this corpus"
        );

        // Calibrate the replay skew to the top-10 share.
        let s = ZipfSampler::calibrate_exponent(pool.len(), 10, config.top10_share);
        let zipf = ZipfSampler::new(pool.len(), s);
        let queries = (0..config.queries).map(|_| zipf.sample(&mut rng)).collect();
        QueryLog { pool, queries }
    }

    /// Rebuilds a log from a raw query sequence (e.g. loaded from disk
    /// via [`crate::io::read_query_log`]). The pool is reconstructed as
    /// the distinct queries ordered by frequency (most popular first).
    pub fn from_queries(queries: Vec<KeywordSet>) -> Self {
        let mut counts: std::collections::HashMap<KeywordSet, usize> =
            std::collections::HashMap::new();
        for q in &queries {
            *counts.entry(q.clone()).or_insert(0) += 1;
        }
        let mut pool: Vec<(KeywordSet, usize)> = counts.into_iter().collect();
        pool.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let pool: Vec<KeywordSet> = pool.into_iter().map(|(q, _)| q).collect();
        let index_of: std::collections::HashMap<&KeywordSet, usize> =
            pool.iter().enumerate().map(|(i, q)| (q, i)).collect();
        let queries = queries.iter().map(|q| index_of[q]).collect();
        QueryLog { pool, queries }
    }

    /// The distinct query sets, most popular first.
    pub fn pool(&self) -> &[KeywordSet] {
        &self.pool
    }

    /// Number of queries in the log.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates over the queries in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &KeywordSet> {
        self.queries.iter().map(|&i| &self.pool[i])
    }

    /// Empirical share of the log carried by the `k` most frequent
    /// distinct queries.
    pub fn top_share(&self, k: usize) -> f64 {
        let mut counts = vec![0usize; self.pool.len()];
        for &i in &self.queries {
            counts[i] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts.iter().take(k).sum::<usize>() as f64 / self.queries.len().max(1) as f64
    }

    /// The most popular distinct query sets of exactly `m` keywords —
    /// the Figure 8 query sample.
    pub fn popular_of_size(&self, m: u32, count: usize) -> Vec<KeywordSet> {
        self.pool
            .iter()
            .filter(|q| q.len() == m as usize)
            .take(count)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn log() -> QueryLog {
        let corpus = Corpus::generate(&CorpusConfig::small_test(), 3);
        QueryLog::generate(&QueryLogConfig::small_test(), &corpus, 4)
    }

    #[test]
    fn generates_requested_volume() {
        let l = log();
        assert_eq!(l.len(), 2_000);
        assert!(l.pool().len() > 10);
    }

    #[test]
    fn top10_share_calibrated() {
        let l = log();
        let share = l.top_share(10);
        assert!(
            (share - 0.6).abs() < 0.06,
            "top-10 share {share}, expected ≈ 0.6"
        );
    }

    #[test]
    fn queries_have_bounded_sizes() {
        let l = log();
        for q in l.iter() {
            assert!((1..=5).contains(&q.len()), "size {}", q.len());
        }
    }

    #[test]
    fn every_size_has_popular_representatives() {
        let l = log();
        for m in 1..=5u32 {
            assert!(
                !l.popular_of_size(m, 3).is_empty(),
                "no popular size-{m} queries"
            );
        }
    }

    #[test]
    fn queries_match_corpus_records() {
        // Every pool query is a subset of some record's keywords, so the
        // index will return at least one hit.
        let corpus = Corpus::generate(&CorpusConfig::small_test(), 3);
        let l = QueryLog::generate(&QueryLogConfig::small_test(), &corpus, 4);
        for q in l.pool().iter().take(50) {
            assert!(
                corpus.records().iter().any(|r| q.describes(&r.keywords)),
                "query {q} matches nothing"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = Corpus::generate(&CorpusConfig::small_test(), 3);
        let a = QueryLog::generate(&QueryLogConfig::small_test(), &corpus, 9);
        let b = QueryLog::generate(&QueryLogConfig::small_test(), &corpus, 9);
        assert_eq!(a.pool(), b.pool());
        assert!(a.iter().eq(b.iter()));
    }

    #[test]
    fn small_queries_dominate() {
        let l = log();
        let small = l.iter().filter(|q| q.len() <= 2).count();
        assert!(
            small * 2 > l.len(),
            "simple queries should dominate: {small}/{}",
            l.len()
        );
    }
}
