//! A synthetic keyword vocabulary with Zipf popularity.
//!
//! Keywords are identified by rank: rank 0 is the most popular word
//! (think `mp3` in the paper's discussion). Word strings are synthetic
//! but stable, so two generators with the same configuration agree on
//! every word.

use hyperdex_core::{Keyword, KeywordSet};
use hyperdex_simnet::rng::SimRng;

use crate::zipf::ZipfSampler;

/// A ranked vocabulary with a Zipf popularity law.
///
/// # Example
///
/// ```
/// use hyperdex_simnet::rng::SimRng;
/// use hyperdex_workload::vocab::Vocabulary;
///
/// let vocab = Vocabulary::new(1000, 1.0);
/// assert_eq!(vocab.word(0), vocab.word(0));
/// let mut rng = SimRng::new(1);
/// let set = vocab.sample_set(3, &mut rng);
/// assert_eq!(set.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Vocabulary {
    zipf: ZipfSampler,
}

impl Vocabulary {
    /// Creates a vocabulary of `size` words with Zipf exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` (via the Zipf sampler).
    pub fn new(size: usize, s: f64) -> Self {
        Vocabulary {
            zipf: ZipfSampler::new(size, s),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.zipf.len()
    }

    /// Whether the vocabulary is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.zipf.is_empty()
    }

    /// The word at popularity rank `rank` (0 = most popular).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn word(&self, rank: usize) -> Keyword {
        assert!(rank < self.len(), "vocabulary rank {rank} out of range");
        Keyword::new(&format!("kw{rank:06}")).expect("synthetic words are non-empty")
    }

    /// The popularity (probability) of a rank.
    pub fn popularity(&self, rank: usize) -> f64 {
        self.zipf.probability(rank)
    }

    /// Draws one word rank by popularity.
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        self.zipf.sample(rng)
    }

    /// Draws a keyword set of exactly `size` *distinct* words by
    /// popularity (rejection on duplicates).
    ///
    /// # Panics
    ///
    /// Panics if `size` exceeds the vocabulary size.
    pub fn sample_set(&self, size: u32, rng: &mut SimRng) -> KeywordSet {
        assert!(
            (size as usize) <= self.len(),
            "cannot draw {size} distinct words from {} total",
            self.len()
        );
        let mut ranks = std::collections::BTreeSet::new();
        // Popular words collide often; cap rejection rounds, then fill
        // from uniform ranks to guarantee termination.
        let mut attempts = 0;
        while ranks.len() < size as usize && attempts < 64 * size {
            ranks.insert(self.sample_rank(rng));
            attempts += 1;
        }
        while ranks.len() < size as usize {
            ranks.insert(rng.gen_index(self.len()));
        }
        ranks.into_iter().map(|r| self.word(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_stable_and_distinct() {
        let v = Vocabulary::new(100, 1.0);
        assert_eq!(v.word(3), v.word(3));
        assert_ne!(v.word(3), v.word(4));
        assert_eq!(v.word(0).as_str(), "kw000000");
    }

    #[test]
    fn popular_words_sampled_more() {
        let v = Vocabulary::new(1000, 1.0);
        let mut rng = SimRng::new(2);
        let mut top = 0;
        let mut deep = 0;
        for _ in 0..10_000 {
            let r = v.sample_rank(&mut rng);
            if r == 0 {
                top += 1;
            }
            if r >= 500 {
                deep += 1;
            }
        }
        assert!(top > 1000, "rank 0 drew {top}");
        assert!(deep < top, "deep ranks drew {deep}");
    }

    #[test]
    fn sample_set_has_exact_size() {
        let v = Vocabulary::new(50, 1.2);
        let mut rng = SimRng::new(3);
        for size in [1u32, 2, 5, 10, 30] {
            assert_eq!(v.sample_set(size, &mut rng).len(), size as usize);
        }
    }

    #[test]
    fn sample_set_full_vocabulary() {
        let v = Vocabulary::new(5, 1.0);
        let mut rng = SimRng::new(4);
        let set = v.sample_set(5, &mut rng);
        assert_eq!(set.len(), 5, "exhausts the vocabulary");
    }

    #[test]
    #[should_panic(expected = "distinct words")]
    fn oversized_set_panics() {
        let v = Vocabulary::new(3, 1.0);
        v.sample_set(4, &mut SimRng::new(0));
    }

    #[test]
    fn deterministic_given_seed() {
        let v = Vocabulary::new(200, 1.0);
        let a = v.sample_set(6, &mut SimRng::new(9));
        let b = v.sample_set(6, &mut SimRng::new(9));
        assert_eq!(a, b);
    }
}
