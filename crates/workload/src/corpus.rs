//! Corpus generation: the synthetic PCHome website directory.
//!
//! The generated corpus reproduces the two statistics §4's results rest
//! on: the keyword-set-size distribution of Figure 5 (mean 7.3) and
//! Zipf keyword popularity. Record count defaults to the paper's
//! 131,180.

use hyperdex_core::KeywordSet;
use hyperdex_simnet::rng::SimRng;

use crate::records::WebsiteRecord;
use crate::setsize::SetSizeDistribution;
use crate::vocab::Vocabulary;

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of records (paper: 131,180).
    pub objects: usize,
    /// Vocabulary size (distinct keywords in the corpus universe).
    pub vocab_size: usize,
    /// Zipf exponent of keyword popularity.
    pub zipf_exponent: f64,
    /// Keyword-set-size distribution.
    pub set_sizes: SetSizeDistribution,
}

impl CorpusConfig {
    /// The paper-scale corpus: 131,180 records, 60k-word vocabulary,
    /// Zipf(1.0) popularity, Figure 5 set sizes.
    pub fn pchome() -> Self {
        CorpusConfig {
            objects: 131_180,
            vocab_size: 60_000,
            zipf_exponent: 1.0,
            set_sizes: SetSizeDistribution::pchome(),
        }
    }

    /// A laptop-friendly miniature with the same distributions
    /// (2,000 records, 3k words) for tests and examples.
    pub fn small_test() -> Self {
        CorpusConfig {
            objects: 2_000,
            vocab_size: 3_000,
            zipf_exponent: 1.0,
            set_sizes: SetSizeDistribution::pchome(),
        }
    }

    /// Overrides the record count.
    pub fn with_objects(mut self, n: usize) -> Self {
        self.objects = n;
        self
    }
}

/// A generated corpus of website records.
#[derive(Debug, Clone)]
pub struct Corpus {
    records: Vec<WebsiteRecord>,
}

impl Corpus {
    /// Generates a corpus deterministically from a seed.
    pub fn generate(config: &CorpusConfig, seed: u64) -> Self {
        let vocab = Vocabulary::new(config.vocab_size, config.zipf_exponent);
        let mut rng = SimRng::new(seed ^ 0xC0_4F_05);
        let records = (0..config.objects)
            .map(|i| {
                let size = config.set_sizes.sample(&mut rng);
                let keywords = vocab.sample_set(size, &mut rng);
                Self::record(i as u64, keywords)
            })
            .collect();
        Corpus { records }
    }

    fn record(id: u64, keywords: KeywordSet) -> WebsiteRecord {
        WebsiteRecord {
            id,
            title: format!("Site {id}"),
            url: format!("http://site{id}.example"),
            category: format!("{:010}", id % 9_999_999),
            description: format!("Synthetic directory record {id}"),
            keywords,
        }
    }

    /// Builds a corpus directly from records (e.g. loaded from disk via
    /// [`crate::io::read_corpus`]).
    pub fn from_records(records: Vec<WebsiteRecord>) -> Self {
        Corpus { records }
    }

    /// The records.
    pub fn records(&self) -> &[WebsiteRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over `(object id, keyword set)` pairs ready for
    /// indexing.
    pub fn indexable(&self) -> impl Iterator<Item = (hyperdex_core::ObjectId, &KeywordSet)> {
        self.records.iter().map(|r| (r.object_id(), &r.keywords))
    }

    /// Mean keywords per record (the paper reports 7.3).
    pub fn mean_keywords_per_object(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.keywords.len()).sum::<usize>() as f64
            / self.records.len() as f64
    }

    /// Histogram of keyword-set sizes — the Figure 5 data series.
    /// Index `i` holds the count of records with `i` keywords.
    pub fn set_size_histogram(&self) -> Vec<usize> {
        let max = self
            .records
            .iter()
            .map(|r| r.keywords.len())
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for r in &self.records {
            hist[r.keywords.len()] += 1;
        }
        hist
    }

    /// Empirical `(size, fraction)` weights for analytical consumers.
    pub fn size_weights(&self) -> Vec<(u32, f64)> {
        let hist = self.set_size_histogram();
        let total = self.len() as f64;
        hist.into_iter()
            .enumerate()
            .filter(|&(size, count)| size > 0 && count > 0)
            .map(|(size, count)| (size as u32, count as f64 / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(&CorpusConfig::small_test(), 7)
    }

    #[test]
    fn generates_requested_count() {
        let c = small();
        assert_eq!(c.len(), 2_000);
        assert!(!c.is_empty());
    }

    #[test]
    fn mean_tracks_figure_5() {
        let c = small();
        let mean = c.mean_keywords_per_object();
        assert!((mean - 7.3).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn histogram_sums_to_len_and_has_no_empty_sets() {
        let c = small();
        let hist = c.set_size_histogram();
        assert_eq!(hist.iter().sum::<usize>(), c.len());
        assert_eq!(hist[0], 0, "every record has at least one keyword");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Corpus::generate(&CorpusConfig::small_test(), 5);
        let b = Corpus::generate(&CorpusConfig::small_test(), 5);
        assert_eq!(a.records()[..10], b.records()[..10]);
        let c = Corpus::generate(&CorpusConfig::small_test(), 6);
        assert_ne!(a.records()[..10], c.records()[..10]);
    }

    #[test]
    fn popular_keywords_shared_across_records() {
        // Zipf popularity ⇒ the rank-0 word appears in many records.
        let c = small();
        let top = Vocabulary::new(3_000, 1.0).word(0);
        let containing = c
            .records()
            .iter()
            .filter(|r| r.keywords.contains(&top))
            .count();
        assert!(containing > 50, "top word in only {containing} records");
    }

    #[test]
    fn indexable_pairs_align() {
        let c = small();
        let (id, kw) = c.indexable().next().unwrap();
        assert_eq!(id, c.records()[0].object_id());
        assert_eq!(kw, &c.records()[0].keywords);
        assert_eq!(c.indexable().count(), c.len());
    }

    #[test]
    fn size_weights_sum_to_one() {
        let c = small();
        let total: f64 = c.size_weights().iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
