//! The keyword-set-size distribution (Figure 5).
//!
//! Figure 5 shows the PCHome corpus's keyword-set sizes: a unimodal,
//! right-skewed histogram over roughly 1..=30 keywords with mean 7.3.
//! We model it as a discretized log-normal — the standard shape for
//! such human-annotated metadata — with parameters chosen to hit the
//! published mean, and expose the probability weights so experiments
//! (and `analysis::recommended_dimension`) can consume the distribution
//! analytically as well as by sampling.

use hyperdex_simnet::rng::SimRng;

/// Maximum keyword-set size the distribution supports.
pub const MAX_SET_SIZE: u32 = 30;

/// A discretized log-normal distribution over set sizes `1..=30`.
///
/// # Example
///
/// ```
/// use hyperdex_workload::setsize::SetSizeDistribution;
///
/// let dist = SetSizeDistribution::pchome();
/// let mean = dist.mean();
/// assert!((mean - 7.3).abs() < 0.35, "mean {mean}");
/// ```
#[derive(Debug, Clone)]
pub struct SetSizeDistribution {
    /// `weights[i]` is the probability of size `i + 1`.
    weights: Vec<f64>,
    cdf: Vec<f64>,
}

impl SetSizeDistribution {
    /// The paper's corpus: log-normal with `μ = ln 7.3 − σ²/2`,
    /// `σ = 0.45`, discretized to `1..=30` — mean ≈ 7.3 keywords,
    /// mode ≈ 6, right tail to ~20+ (the Figure 5 silhouette).
    pub fn pchome() -> Self {
        let sigma = 0.45f64;
        let mu = 7.3f64.ln() - sigma * sigma / 2.0;
        Self::log_normal(mu, sigma)
    }

    /// A discretized log-normal with the given underlying parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or either parameter is non-finite.
    pub fn log_normal(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite() && mu.is_finite());
        // Mass of size k = ∫ density over [k − 0.5, k + 0.5], computed
        // from the log-normal CDF via erf approximation.
        let cdf_ln = |x: f64| -> f64 {
            if x <= 0.0 {
                0.0
            } else {
                0.5 * (1.0 + erf((x.ln() - mu) / (sigma * std::f64::consts::SQRT_2)))
            }
        };
        let mut weights: Vec<f64> = (1..=MAX_SET_SIZE)
            .map(|k| {
                let k = f64::from(k);
                (cdf_ln(k + 0.5) - cdf_ln(k - 0.5)).max(0.0)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cdf.push(acc);
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        SetSizeDistribution { weights, cdf }
    }

    /// Builds a distribution directly from per-size weights
    /// (`weights[i]` is the *unnormalized* mass of size `i + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, longer than [`MAX_SET_SIZE`], or
    /// sums to zero.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty() && weights.len() <= MAX_SET_SIZE as usize,
            "1..=30 sizes supported"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive mass");
        let weights: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cdf.push(acc);
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        SetSizeDistribution { weights, cdf }
    }

    /// The probability of set size `k` (1-based).
    pub fn probability(&self, k: u32) -> f64 {
        if k == 0 || k as usize > self.weights.len() {
            0.0
        } else {
            self.weights[(k - 1) as usize]
        }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i + 1) as f64 * w)
            .sum()
    }

    /// `(size, probability)` pairs for analytical consumers (e.g.
    /// `hyperdex_core::analysis::object_fraction`).
    pub fn size_weights(&self) -> Vec<(u32, f64)> {
        self.weights
            .iter()
            .enumerate()
            .map(|(i, &w)| ((i + 1) as u32, w))
            .collect()
    }

    /// Draws a set size in `1..=30`.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        let u = rng.gen_f64();
        (self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) + 1) as u32
    }
}

/// Abramowitz–Stegun 7.1.26 rational approximation of the error
/// function (|error| < 1.5e−7, ample for a synthetic histogram).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn pchome_mean_matches_paper() {
        let d = SetSizeDistribution::pchome();
        assert!((d.mean() - 7.3).abs() < 0.35, "mean {}", d.mean());
    }

    #[test]
    fn weights_sum_to_one() {
        let d = SetSizeDistribution::pchome();
        let total: f64 = (1..=MAX_SET_SIZE).map(|k| d.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(d.probability(0), 0.0);
        assert_eq!(d.probability(MAX_SET_SIZE + 1), 0.0);
    }

    #[test]
    fn unimodal_right_skewed() {
        let d = SetSizeDistribution::pchome();
        // Mode in the 5-8 range, with p(1) tiny and a right tail.
        let mode = (1..=MAX_SET_SIZE)
            .max_by(|&a, &b| d.probability(a).partial_cmp(&d.probability(b)).unwrap())
            .unwrap();
        assert!((5..=8).contains(&mode), "mode {mode}");
        assert!(d.probability(1) < 0.02);
        assert!(d.probability(15) > 0.001, "needs a right tail");
    }

    #[test]
    fn samples_match_mean() {
        let d = SetSizeDistribution::pchome();
        let mut rng = SimRng::new(11);
        let n = 50_000;
        let mean = (0..n).map(|_| f64::from(d.sample(&mut rng))).sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() < 0.1, "sampled mean {mean}");
    }

    #[test]
    fn samples_in_support() {
        let d = SetSizeDistribution::pchome();
        let mut rng = SimRng::new(13);
        for _ in 0..10_000 {
            let k = d.sample(&mut rng);
            assert!((1..=MAX_SET_SIZE).contains(&k));
        }
    }

    #[test]
    fn from_weights_custom() {
        let d = SetSizeDistribution::from_weights(&[1.0, 1.0, 2.0]);
        assert!((d.probability(3) - 0.5).abs() < 1e-12);
        assert!((d.mean() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn size_weights_align_with_probability() {
        let d = SetSizeDistribution::pchome();
        for (k, w) in d.size_weights() {
            assert_eq!(w, d.probability(k));
        }
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn zero_weights_panic() {
        SetSizeDistribution::from_weights(&[0.0, 0.0]);
    }
}
