//! An exact, seedable Zipf sampler.
//!
//! §1: "keyword frequency … typically follows *Zipf's law*: a few
//! keywords occur very often while many others occur rarely." Rank `k`
//! (1-based) gets probability proportional to `k^(−s)`.

use hyperdex_simnet::rng::SimRng;

/// A Zipf(`s`) distribution over ranks `0..n` sampled by inverse-CDF
/// binary search — exact (no rejection), deterministic given the RNG.
///
/// # Example
///
/// ```
/// use hyperdex_simnet::rng::SimRng;
/// use hyperdex_workload::zipf::ZipfSampler;
///
/// let zipf = ZipfSampler::new(1000, 1.0);
/// let mut rng = SimRng::new(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against rounding leaving the last value below 1.
        *cdf.last_mut().expect("non-empty") = 1.0;
        ZipfSampler { cdf, exponent: s }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of rank `k` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn probability(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Cumulative probability of the top `k` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > len()`.
    pub fn top_share(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "k out of range");
        self.cdf[k - 1]
    }

    /// Draws a rank (0-based; rank 0 is the most popular).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Finds an exponent `s` such that the top `k` of `n` ranks carry
    /// approximately `share` of the mass (bisection) — used to calibrate
    /// query skew to the paper's "top-10 ≈ 60 %" statistic.
    ///
    /// # Panics
    ///
    /// Panics if `share` is not in `(0, 1)` or `k >= n`.
    pub fn calibrate_exponent(n: usize, k: usize, share: f64) -> f64 {
        assert!((0.0..1.0).contains(&share) && share > 0.0, "share in (0,1)");
        assert!(k >= 1 && k < n, "need 1 <= k < n");
        let (mut lo, mut hi) = (0.0f64, 8.0f64);
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            let got = ZipfSampler::new(n, mid).top_share(k);
            if got < share {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo + hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(500, 1.0);
        let total: f64 = (0..500).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_one_dominates() {
        let z = ZipfSampler::new(100, 1.0);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(50));
        // p(k) ∝ 1/k: p(0)/p(1) = 2.
        assert!((z.probability(0) / z.probability(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn s_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((z.probability(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_matches_distribution() {
        let z = ZipfSampler::new(50, 1.2);
        let mut rng = SimRng::new(3);
        let n = 100_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 20] {
            let observed = f64::from(counts[k]) / n as f64;
            let expected = z.probability(k);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {k}: {observed} vs {expected}"
            );
        }
    }

    #[test]
    fn samples_within_range() {
        let z = ZipfSampler::new(7, 2.0);
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn top_share_monotone_in_exponent() {
        let low = ZipfSampler::new(1000, 0.5).top_share(10);
        let high = ZipfSampler::new(1000, 1.5).top_share(10);
        assert!(high > low);
    }

    #[test]
    fn calibrate_hits_target_share() {
        // The paper's statistic: top-10 of the daily distinct queries
        // carry 60 % of the volume.
        let s = ZipfSampler::calibrate_exponent(10_000, 10, 0.6);
        let achieved = ZipfSampler::new(10_000, s).top_share(10);
        assert!((achieved - 0.6).abs() < 0.01, "achieved {achieved}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let z = ZipfSampler::new(100, 1.0);
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
