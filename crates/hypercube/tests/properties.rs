//! Property-based tests for the hypercube lemmas the search scheme
//! relies on.

use hyperdex_hypercube::{broadcast, Sbt, Shape, Subcube, Vertex};
use proptest::prelude::*;

/// Strategy: a shape with r in 1..=10 plus a valid vertex bit pattern.
fn shape_and_bits() -> impl Strategy<Value = (Shape, u64)> {
    (1u8..=10).prop_flat_map(|r| {
        let shape = Shape::new(r).unwrap();
        (Just(shape), 0u64..shape.vertex_count())
    })
}

/// Strategy: a shape plus two valid vertex bit patterns.
fn shape_and_two() -> impl Strategy<Value = (Shape, u64, u64)> {
    (1u8..=10).prop_flat_map(|r| {
        let shape = Shape::new(r).unwrap();
        let n = shape.vertex_count();
        (Just(shape), 0..n, 0..n)
    })
}

proptest! {
    /// Containment is exactly the subset relation on one-positions.
    #[test]
    fn containment_is_subset((shape, a, b) in shape_and_two()) {
        let u = Vertex::from_bits(shape, a).unwrap();
        let w = Vertex::from_bits(shape, b).unwrap();
        let ones_u: Vec<u8> = u.one_positions().collect();
        let ones_w: Vec<u8> = w.one_positions().collect();
        let subset = ones_u.iter().all(|i| ones_w.contains(i));
        prop_assert_eq!(w.contains(u), subset);
    }

    /// Hamming distance is a metric (symmetry + triangle inequality
    /// against a third point chosen as the XOR midpoint).
    #[test]
    fn hamming_symmetric((shape, a, b) in shape_and_two()) {
        let u = Vertex::from_bits(shape, a).unwrap();
        let w = Vertex::from_bits(shape, b).unwrap();
        prop_assert_eq!(u.hamming(w), w.hamming(u));
        prop_assert_eq!(u.hamming(w) == 0, u == w);
    }

    /// One/Zero positions partition the dimension set.
    #[test]
    fn one_zero_partition((shape, bits) in shape_and_bits()) {
        let v = Vertex::from_bits(shape, bits).unwrap();
        let mut all: Vec<u8> = v.one_positions().chain(v.zero_positions()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..shape.r()).collect::<Vec<_>>());
    }

    /// The induced subcube contains exactly the vertices that contain
    /// the root (Definition 3.1), and its size is 2^|Zero(u)|.
    #[test]
    fn subcube_membership((shape, bits) in shape_and_bits()) {
        let u = Vertex::from_bits(shape, bits).unwrap();
        let sub = Subcube::induced_by(u);
        let members: Vec<Vertex> = sub.iter().collect();
        prop_assert_eq!(members.len() as u64, 1u64 << u.zero_count());
        for w_bits in 0..shape.vertex_count() {
            let w = Vertex::from_bits(shape, w_bits).unwrap();
            prop_assert_eq!(members.contains(&w), w.contains(u));
        }
    }

    /// Lemma 3.3 (geometry): u ⊆ w implies H(w) ⊆ H(u).
    #[test]
    fn lemma_3_3_subcube_nesting((shape, a, b) in shape_and_two()) {
        let u = Vertex::from_bits(shape, a).unwrap();
        let w = Vertex::from_bits(shape, a | b).unwrap(); // w contains u
        prop_assert!(w.contains(u));
        let hu = Subcube::induced_by(u);
        let hw = Subcube::induced_by(w);
        prop_assert!(hu.contains_subcube(hw));
        for m in hw.iter() {
            prop_assert!(hu.contains(m));
        }
    }

    /// The induced SBT spans its subcube: every vertex appears exactly
    /// once in BFS order, at depth equal to its Hamming distance.
    #[test]
    fn sbt_spans_subcube((shape, bits) in shape_and_bits()) {
        let root = Vertex::from_bits(shape, bits).unwrap();
        let sbt = Sbt::induced(root);
        let mut seen = std::collections::HashSet::new();
        let mut last_depth = 0;
        for (node, depth) in sbt.bfs() {
            prop_assert!(seen.insert(node.bits()), "duplicate visit");
            prop_assert!(depth >= last_depth, "BFS depth order");
            prop_assert_eq!(depth, node.hamming(root));
            prop_assert!(node.contains(root));
            last_depth = depth;
        }
        prop_assert_eq!(seen.len() as u64, sbt.node_count());
    }

    /// Lemma 3.2: a depth-d node of the induced SBT has exactly d more
    /// one-bits than the root.
    #[test]
    fn lemma_3_2_extra_ones((shape, bits) in shape_and_bits()) {
        let root = Vertex::from_bits(shape, bits).unwrap();
        let sbt = Sbt::induced(root);
        for (node, depth) in sbt.bfs() {
            prop_assert_eq!(node.one_count(), root.one_count() + depth);
        }
    }

    /// parent(child) == node for every tree edge; depth increments by 1.
    #[test]
    fn sbt_parent_child_inverse((shape, bits) in shape_and_bits()) {
        let root = Vertex::from_bits(shape, bits).unwrap();
        let sbt = Sbt::spanning(root);
        for (node, depth) in sbt.bfs() {
            for child in sbt.children(node) {
                prop_assert_eq!(sbt.parent(child), Some(node));
                prop_assert_eq!(sbt.depth(child), depth + 1);
            }
        }
    }

    /// Walking parents from any node reaches the root in depth steps.
    #[test]
    fn sbt_root_path((shape, a, b) in shape_and_two()) {
        let root = Vertex::from_bits(shape, a).unwrap();
        let node = Vertex::from_bits(shape, b).unwrap();
        let sbt = Sbt::spanning(root);
        let mut cur = node;
        let mut steps = 0;
        while let Some(p) = sbt.parent(cur) {
            cur = p;
            steps += 1;
            prop_assert!(steps <= shape.r() as u32, "path too long");
        }
        prop_assert_eq!(cur, root);
        prop_assert_eq!(steps, node.hamming(root));
    }

    /// Broadcast schedules inform every node exactly once in height()
    /// rounds, along tree edges only.
    #[test]
    fn broadcast_covers((shape, bits) in shape_and_bits()) {
        let root = Vertex::from_bits(shape, bits).unwrap();
        let sbt = Sbt::induced(root);
        let rounds = broadcast::schedule(&sbt);
        prop_assert_eq!(rounds.len() as u32, sbt.height());
        let mut informed = std::collections::HashSet::new();
        informed.insert(root.bits());
        for round in &rounds {
            for t in round {
                prop_assert!(informed.contains(&t.from.bits()));
                prop_assert!(informed.insert(t.to.bits()));
                prop_assert_eq!(sbt.parent(t.to), Some(t.from));
            }
        }
        prop_assert_eq!(informed.len() as u64, sbt.node_count());
    }

    /// Subcube dense indexing round-trips.
    #[test]
    fn subcube_index_roundtrip((shape, bits) in shape_and_bits()) {
        let u = Vertex::from_bits(shape, bits).unwrap();
        let sub = Subcube::induced_by(u);
        for i in 0..sub.len() {
            prop_assert_eq!(sub.index_of(sub.vertex_at(i)), i);
        }
    }

    /// Subtree sizes of the root's children sum to node_count - 1.
    #[test]
    fn sbt_subtree_decomposition((shape, bits) in shape_and_bits()) {
        let root = Vertex::from_bits(shape, bits).unwrap();
        let sbt = Sbt::induced(root);
        let sum: u64 = sbt.children(root).map(|c| sbt.subtree_size(c)).sum();
        prop_assert_eq!(sum + 1, sbt.node_count());
    }
}
