//! Gray-code walks of (sub)hypercubes.
//!
//! The binary-reflected Gray code visits every vertex of a hypercube
//! changing exactly **one bit per step** — i.e. every step crosses a
//! single hypercube edge. Walking a subcube in Gray order therefore
//! gives a Hamiltonian path over real overlay links, useful when a
//! traversal should hop between *neighboring* index nodes (whose
//! contact information is cached, §3.4) instead of dialing arbitrary
//! vertices.

use crate::bits;
use crate::subcube::Subcube;
use crate::vertex::Vertex;

/// The `i`-th binary-reflected Gray code.
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::gray::gray_code;
///
/// let codes: Vec<u64> = (0..4).map(gray_code).collect();
/// assert_eq!(codes, vec![0b00, 0b01, 0b11, 0b10]);
/// ```
pub fn gray_code(i: u64) -> u64 {
    i ^ (i >> 1)
}

/// The rank of a Gray code (inverse of [`gray_code`]).
pub fn gray_rank(code: u64) -> u64 {
    let mut rank = code;
    let mut shift = 1;
    while shift < 64 {
        rank ^= rank >> shift;
        shift <<= 1;
    }
    rank
}

/// Iterates over a subcube's vertices in Gray order: consecutive
/// vertices differ in exactly one (free) bit.
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::{gray, Shape, Vertex};
///
/// let shape = Shape::new(4)?;
/// let root = Vertex::from_bits(shape, 0b0100)?;
/// let walk: Vec<Vertex> = gray::walk(root.subcube()).collect();
/// assert_eq!(walk.len(), 8);
/// for pair in walk.windows(2) {
///     assert_eq!(pair[0].hamming(pair[1]), 1, "single-edge steps");
/// }
/// # Ok::<(), hyperdex_hypercube::DimensionError>(())
/// ```
pub fn walk(subcube: Subcube) -> impl Iterator<Item = Vertex> {
    let root = subcube.root();
    let mask = subcube.free_mask();
    (0..subcube.len()).map(move |i| {
        let scattered = bits::deposit(gray_code(i), mask);
        Vertex::from_bits(root.shape(), root.bits() | scattered)
            .expect("free-bit patterns stay within shape")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn v(r: u8, bits: u64) -> Vertex {
        Vertex::from_bits(Shape::new(r).unwrap(), bits).unwrap()
    }

    #[test]
    fn gray_code_prefix() {
        let codes: Vec<u64> = (0..8).map(gray_code).collect();
        assert_eq!(codes, vec![0, 1, 3, 2, 6, 7, 5, 4]);
    }

    #[test]
    fn consecutive_codes_differ_by_one_bit() {
        for i in 0..10_000u64 {
            let a = gray_code(i);
            let b = gray_code(i + 1);
            assert_eq!((a ^ b).count_ones(), 1, "at rank {i}");
        }
    }

    #[test]
    fn rank_inverts_code() {
        for i in 0..10_000u64 {
            assert_eq!(gray_rank(gray_code(i)), i);
        }
        assert_eq!(gray_rank(gray_code(u64::MAX)), u64::MAX);
    }

    #[test]
    fn walk_visits_every_subcube_vertex_once() {
        let sub = v(6, 0b010010).subcube();
        let visited: Vec<u64> = walk(sub).map(|w| w.bits()).collect();
        assert_eq!(visited.len() as u64, sub.len());
        let mut sorted = visited.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len() as u64, sub.len(), "no repeats");
        for bits in sorted {
            assert!(sub.contains(v(6, bits)));
        }
    }

    #[test]
    fn walk_steps_are_single_edges() {
        let sub = v(5, 0b00100).subcube();
        let visited: Vec<Vertex> = walk(sub).collect();
        for pair in visited.windows(2) {
            assert_eq!(pair[0].hamming(pair[1]), 1);
        }
    }

    #[test]
    fn walk_starts_at_root() {
        let sub = v(4, 0b1010).subcube();
        assert_eq!(walk(sub).next(), Some(sub.root()));
    }

    #[test]
    fn unit_subcube_walk() {
        let sub = v(3, 0b111).subcube();
        assert_eq!(walk(sub).count(), 1);
    }
}
