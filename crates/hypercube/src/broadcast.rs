//! Optimal hypercube broadcast via spanning binomial trees.
//!
//! Johnsson & Ho's classic result (the paper's reference \[3\]): a message
//! can reach all `2^k` nodes of a (sub)hypercube in `k` rounds by sending
//! across one dimension per round. §3.5 uses the same idea to cut
//! superset-search latency from `2^k` sequential messages to `k` parallel
//! rounds. This module computes those schedules explicitly so simulated
//! searches (and tests) can replay them.

use crate::sbt::Sbt;
use crate::vertex::Vertex;

/// One message transmission within a broadcast round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// Sender (already informed).
    pub from: Vertex,
    /// Receiver (newly informed).
    pub to: Vertex,
    /// The dimension the message crosses.
    pub dim: u8,
}

/// Computes the round-by-round broadcast schedule for a spanning binomial
/// tree.
///
/// Round `k` sends across the `k`-th *highest* free dimension from every
/// already-informed vertex; after `height()` rounds every tree node is
/// informed. Every transmission is a parent→child tree edge.
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::{broadcast::schedule, Sbt, Shape, Vertex};
///
/// let shape = Shape::new(3)?;
/// let sbt = Sbt::spanning(Vertex::zero(shape));
/// let rounds = schedule(&sbt);
/// assert_eq!(rounds.len(), 3);
/// assert_eq!(rounds[0].len(), 1); // 1 sender in round 0
/// assert_eq!(rounds[1].len(), 2);
/// assert_eq!(rounds[2].len(), 4);
/// # Ok::<(), hyperdex_hypercube::DimensionError>(())
/// ```
pub fn schedule(sbt: &Sbt) -> Vec<Vec<Transmission>> {
    let mut informed = vec![sbt.root()];
    let mut rounds = Vec::with_capacity(sbt.height() as usize);
    // Descending dimension order matches Sbt::children: a child reached
    // by flipping dimension j may itself only forward across dims < j.
    for dim in sbt.free_dims().rev() {
        let round: Vec<Transmission> = informed
            .iter()
            .map(|&from| Transmission {
                from,
                to: from.flip(dim),
                dim,
            })
            .collect();
        informed.extend(round.iter().map(|t| t.to));
        rounds.push(round);
    }
    rounds
}

/// The minimum number of rounds needed to broadcast over the tree —
/// `r - |One(F_h(K))|` in the paper's superset-search analysis (§3.5).
pub fn round_count(sbt: &Sbt) -> u32 {
    sbt.height()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn v(r: u8, bits: u64) -> Vertex {
        Vertex::from_bits(Shape::new(r).unwrap(), bits).unwrap()
    }

    #[test]
    fn doubles_informed_each_round() {
        let sbt = Sbt::spanning(v(4, 0b0110));
        let rounds = schedule(&sbt);
        assert_eq!(rounds.len(), 4);
        for (k, round) in rounds.iter().enumerate() {
            assert_eq!(round.len(), 1 << k, "round {k} has 2^{k} transmissions");
        }
    }

    #[test]
    fn informs_every_node_exactly_once() {
        let sbt = Sbt::induced(v(5, 0b00100));
        let rounds = schedule(&sbt);
        let mut informed = vec![sbt.root()];
        for round in &rounds {
            for t in round {
                assert!(informed.contains(&t.from), "sender must be informed");
                assert!(!informed.contains(&t.to), "receiver informed once");
                informed.push(t.to);
            }
        }
        assert_eq!(informed.len() as u64, sbt.node_count());
    }

    #[test]
    fn transmissions_are_tree_edges() {
        let sbt = Sbt::induced(v(4, 0b0100));
        for round in schedule(&sbt) {
            for t in round {
                assert_eq!(
                    sbt.parent(t.to),
                    Some(t.from),
                    "edge {} -> {}",
                    t.from,
                    t.to
                );
                assert_eq!(sbt.branch_dim(t.to), Some(t.dim));
            }
        }
    }

    #[test]
    fn round_count_matches_paper_bound() {
        // §3.5: parallel search takes r - |One(F_h(K))| rounds.
        let root = v(10, 0b0000011011);
        let sbt = Sbt::induced(root);
        assert_eq!(round_count(&sbt), 10 - root.one_count());
    }

    #[test]
    fn unit_tree_needs_no_rounds() {
        let sbt = Sbt::induced(v(3, 0b111));
        assert!(schedule(&sbt).is_empty());
        assert_eq!(round_count(&sbt), 0);
    }
}
