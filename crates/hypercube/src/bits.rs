//! Bit-manipulation helpers shared by subcube and tree iteration.
//!
//! Enumerating the vertices of a subhypercube `H_r(u)` means enumerating
//! all assignments of the *free* bit positions `Zero(u)` while holding
//! `One(u)` fixed. [`deposit`] maps a dense index onto scattered mask
//! positions, which turns that enumeration into a simple counter loop.

/// Scatters the low bits of `index` onto the set bit positions of `mask`
/// (software PDEP).
///
/// Bit `k` of `index` lands on the `k`-th lowest set bit of `mask`. Bits
/// of `index` beyond `mask.count_ones()` are ignored.
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::bits::deposit;
///
/// // mask 0b1010 has free positions 1 and 3.
/// assert_eq!(deposit(0b00, 0b1010), 0b0000);
/// assert_eq!(deposit(0b01, 0b1010), 0b0010);
/// assert_eq!(deposit(0b10, 0b1010), 0b1000);
/// assert_eq!(deposit(0b11, 0b1010), 0b1010);
/// ```
pub fn deposit(index: u64, mask: u64) -> u64 {
    let mut result = 0u64;
    let mut remaining = mask;
    let mut idx = index;
    while remaining != 0 {
        let lowest = remaining & remaining.wrapping_neg();
        if idx & 1 != 0 {
            result |= lowest;
        }
        idx >>= 1;
        remaining ^= lowest;
    }
    result
}

/// Gathers the bits of `value` at the set positions of `mask` into a dense
/// low-bit index (software PEXT; the inverse of [`deposit`]).
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::bits::{deposit, extract};
///
/// let mask = 0b1010;
/// for i in 0..4 {
///     assert_eq!(extract(deposit(i, mask), mask), i);
/// }
/// ```
pub fn extract(value: u64, mask: u64) -> u64 {
    let mut result = 0u64;
    let mut remaining = mask;
    let mut out_bit = 0u32;
    while remaining != 0 {
        let lowest = remaining & remaining.wrapping_neg();
        if value & lowest != 0 {
            result |= 1u64 << out_bit;
        }
        out_bit += 1;
        remaining ^= lowest;
    }
    result
}

/// Iterates over the set bit positions of `mask`, lowest first.
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::bits::ones;
///
/// assert_eq!(ones(0b10110).collect::<Vec<_>>(), vec![1, 2, 4]);
/// ```
pub fn ones(mask: u64) -> impl DoubleEndedIterator<Item = u8> + Clone {
    (0u8..64).filter(move |&i| mask & (1u64 << i) != 0)
}

/// Advances `subset` to the next subset of `mask` in counting order,
/// returning `None` after the full mask.
///
/// Classic "iterate all submasks" trick: `(subset - mask) & mask` walks
/// every subset of `mask` exactly once starting from 0.
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::bits::next_subset;
///
/// let mask = 0b101;
/// let mut s = Some(0);
/// let mut all = vec![];
/// while let Some(v) = s {
///     all.push(v);
///     s = next_subset(v, mask);
/// }
/// assert_eq!(all, vec![0b000, 0b001, 0b100, 0b101]);
/// ```
pub fn next_subset(subset: u64, mask: u64) -> Option<u64> {
    debug_assert_eq!(subset & !mask, 0, "subset must lie within mask");
    if subset == mask {
        None
    } else {
        Some(subset.wrapping_sub(mask) & mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_identity_on_full_mask() {
        for v in [0u64, 1, 0b1011, 0xFFFF] {
            assert_eq!(deposit(v, 0xFFFF), v & 0xFFFF);
        }
    }

    #[test]
    fn deposit_extract_roundtrip() {
        let mask = 0b1011_0100_1010u64;
        let k = mask.count_ones();
        for i in 0..(1u64 << k) {
            let scattered = deposit(i, mask);
            assert_eq!(scattered & !mask, 0, "stays within mask");
            assert_eq!(extract(scattered, mask), i);
        }
    }

    #[test]
    fn deposit_ignores_high_index_bits() {
        assert_eq!(deposit(0b111, 0b1), 0b1);
    }

    #[test]
    fn deposit_empty_mask() {
        assert_eq!(deposit(u64::MAX, 0), 0);
        assert_eq!(extract(u64::MAX, 0), 0);
    }

    #[test]
    fn ones_positions() {
        assert_eq!(ones(0).count(), 0);
        assert_eq!(ones(1 << 63).collect::<Vec<_>>(), vec![63]);
        assert_eq!(ones(0b1101).collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn next_subset_enumerates_all() {
        let mask = 0b11010u64;
        let mut seen = vec![];
        let mut s = Some(0u64);
        while let Some(v) = s {
            seen.push(v);
            s = next_subset(v, mask);
        }
        assert_eq!(seen.len(), 1 << mask.count_ones());
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "no duplicates");
        assert!(seen.iter().all(|v| v & !mask == 0));
    }

    #[test]
    fn next_subset_singleton_mask() {
        assert_eq!(next_subset(0, 0b100), Some(0b100));
        assert_eq!(next_subset(0b100, 0b100), None);
    }

    #[test]
    fn next_subset_empty_mask() {
        assert_eq!(next_subset(0, 0), None);
    }
}
