//! # hyperdex-hypercube
//!
//! The *r*-dimensional hypercube vector space of §3.1 of *Keyword Search
//! in DHT-based Peer-to-Peer Networks* (Joung, Fang & Yang, ICDCS 2005).
//!
//! The paper indexes each object at the hypercube vertex whose `1`-bits
//! are the hashed positions of the object's keywords. Superset search
//! then explores the *subhypercube induced by* the query vertex along a
//! *spanning binomial tree*. This crate provides those structures as pure,
//! allocation-light data types:
//!
//! * [`Shape`] — the hypercube dimensionality `r` (1..=63).
//! * [`Vertex`] — an `r`-bit vertex with the paper's `One`/`Zero`/
//!   containment/Hamming operations.
//! * [`Subcube`] — the induced subhypercube `H_r(u)` (Definition 3.1).
//! * [`Sbt`] — spanning binomial trees `SBT(u)` and `SBT_{H_r}(u)`
//!   (Definition 3.2), with parent/children, levels, and BFS traversal.
//! * [`broadcast`] — optimal SBT-based broadcast schedules.
//!
//! # Example
//!
//! ```
//! use hyperdex_hypercube::{Shape, Vertex};
//!
//! let shape = Shape::new(4)?;
//! let u = Vertex::from_bits(shape, 0b0100)?;
//! let v = Vertex::from_bits(shape, 0b0110)?;
//! assert!(v.contains(u));              // One(u) ⊆ One(v)
//! assert_eq!(u.hamming(v), 1);
//! assert_eq!(u.subcube().len(), 8);    // H_4(0100) ≅ H_3
//! # Ok::<(), hyperdex_hypercube::DimensionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod broadcast;
pub mod gray;
pub mod route;
pub mod sbt;
pub mod shape;
pub mod subcube;
pub mod vertex;

pub use sbt::Sbt;
pub use shape::{DimensionError, Shape};
pub use subcube::Subcube;
pub use vertex::Vertex;
