//! Hypercube dimensionality.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum supported dimensionality.
///
/// Vertices are stored as `u64` bitmasks, and subcube sizes (`2^r`) must
/// fit in a `u64`, so `r ≤ 63`. The paper's experiments use `r ≤ 16`.
pub const MAX_DIMENSION: u8 = 63;

/// The dimensionality `r` of a hypercube `H_r` (1 ..= [`MAX_DIMENSION`]).
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::Shape;
///
/// let shape = Shape::new(10)?;
/// assert_eq!(shape.r(), 10);
/// assert_eq!(shape.vertex_count(), 1024);
/// # Ok::<(), hyperdex_hypercube::DimensionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Shape {
    r: u8,
}

/// Error returned for a dimensionality outside `1..=63` or a bit pattern
/// that does not fit the shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimensionError {
    /// The requested dimensionality is zero or exceeds [`MAX_DIMENSION`].
    InvalidDimension {
        /// The rejected dimensionality.
        r: u8,
    },
    /// A vertex bit pattern has bits set at or above position `r`.
    BitsOutOfRange {
        /// The rejected bit pattern.
        bits: u64,
        /// The shape's dimensionality.
        r: u8,
    },
    /// A dimension index was at or above `r`.
    AxisOutOfRange {
        /// The rejected dimension index.
        axis: u8,
        /// The shape's dimensionality.
        r: u8,
    },
}

impl fmt::Display for DimensionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimensionError::InvalidDimension { r } => {
                write!(f, "hypercube dimension {r} outside 1..={MAX_DIMENSION}")
            }
            DimensionError::BitsOutOfRange { bits, r } => {
                write!(f, "bit pattern {bits:#b} does not fit in {r} dimensions")
            }
            DimensionError::AxisOutOfRange { axis, r } => {
                write!(f, "dimension index {axis} out of range for H_{r}")
            }
        }
    }
}

impl std::error::Error for DimensionError {}

impl Shape {
    /// Creates a shape of dimensionality `r`.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError::InvalidDimension`] unless `1 ≤ r ≤ 63`.
    pub fn new(r: u8) -> Result<Self, DimensionError> {
        if r == 0 || r > MAX_DIMENSION {
            Err(DimensionError::InvalidDimension { r })
        } else {
            Ok(Shape { r })
        }
    }

    /// The dimensionality `r`.
    pub const fn r(self) -> u8 {
        self.r
    }

    /// The number of vertices, `2^r`.
    pub const fn vertex_count(self) -> u64 {
        1u64 << self.r
    }

    /// A mask with the low `r` bits set — the valid bit positions.
    pub const fn full_mask(self) -> u64 {
        if self.r == 64 {
            u64::MAX
        } else {
            (1u64 << self.r) - 1
        }
    }

    /// Checks that `bits` fits within this shape.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError::BitsOutOfRange`] if any bit at position
    /// `≥ r` is set.
    pub fn check_bits(self, bits: u64) -> Result<(), DimensionError> {
        if bits & !self.full_mask() != 0 {
            Err(DimensionError::BitsOutOfRange { bits, r: self.r })
        } else {
            Ok(())
        }
    }

    /// Checks that `axis` is a valid dimension index (`< r`).
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError::AxisOutOfRange`] otherwise.
    pub fn check_axis(self, axis: u8) -> Result<(), DimensionError> {
        if axis >= self.r {
            Err(DimensionError::AxisOutOfRange { axis, r: self.r })
        } else {
            Ok(())
        }
    }

    /// Iterates over all dimension indices `0..r`.
    pub fn axes(self) -> impl DoubleEndedIterator<Item = u8> + Clone {
        0..self.r
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H_{}", self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range() {
        assert!(Shape::new(1).is_ok());
        assert!(Shape::new(63).is_ok());
        assert_eq!(
            Shape::new(0),
            Err(DimensionError::InvalidDimension { r: 0 })
        );
        assert_eq!(
            Shape::new(64),
            Err(DimensionError::InvalidDimension { r: 64 })
        );
    }

    #[test]
    fn vertex_count_and_mask() {
        let s = Shape::new(4).unwrap();
        assert_eq!(s.vertex_count(), 16);
        assert_eq!(s.full_mask(), 0b1111);
        let s63 = Shape::new(63).unwrap();
        assert_eq!(s63.full_mask(), u64::MAX >> 1);
    }

    #[test]
    fn check_bits_boundary() {
        let s = Shape::new(3).unwrap();
        assert!(s.check_bits(0b111).is_ok());
        assert!(s.check_bits(0b1000).is_err());
    }

    #[test]
    fn check_axis_boundary() {
        let s = Shape::new(3).unwrap();
        assert!(s.check_axis(2).is_ok());
        assert!(s.check_axis(3).is_err());
    }

    #[test]
    fn axes_iterates_all_dims() {
        let s = Shape::new(5).unwrap();
        assert_eq!(s.axes().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(s.axes().next_back(), Some(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::new(7).unwrap().to_string(), "H_7");
        let err = Shape::new(0).unwrap_err();
        assert!(err.to_string().contains("dimension 0"));
    }
}
