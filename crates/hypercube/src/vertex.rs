//! Hypercube vertices and the paper's bit-vector operations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bits;
use crate::shape::{DimensionError, Shape};
use crate::subcube::Subcube;

/// A vertex of an `r`-dimensional hypercube: an `r`-bit binary string.
///
/// Bit `i` (counting from the right, as in the paper's `u[i]`) is read
/// with [`Vertex::bit`]. The vertex remembers its [`Shape`], so mixing
/// vertices from different hypercubes is caught by assertions.
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::{Shape, Vertex};
///
/// let shape = Shape::new(6)?;
/// let v = Vertex::from_bits(shape, 0b010100)?;
/// assert_eq!(v.one_positions().collect::<Vec<_>>(), vec![2, 4]);
/// assert_eq!(v.zero_positions().collect::<Vec<_>>(), vec![0, 1, 3, 5]);
/// # Ok::<(), hyperdex_hypercube::DimensionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Vertex {
    shape: Shape,
    bits: u64,
}

impl Vertex {
    /// Creates a vertex from a bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError::BitsOutOfRange`] if `bits` has a set bit
    /// at or above position `r`.
    pub fn from_bits(shape: Shape, bits: u64) -> Result<Self, DimensionError> {
        shape.check_bits(bits)?;
        Ok(Vertex { shape, bits })
    }

    /// The all-zero vertex (the root of the full hypercube).
    pub fn zero(shape: Shape) -> Self {
        Vertex { shape, bits: 0 }
    }

    /// The all-one vertex.
    pub fn all_ones(shape: Shape) -> Self {
        Vertex {
            shape,
            bits: shape.full_mask(),
        }
    }

    /// The raw bit pattern.
    pub const fn bits(self) -> u64 {
        self.bits
    }

    /// The hypercube shape this vertex belongs to.
    pub const fn shape(self) -> Shape {
        self.shape
    }

    /// The `i`-th bit, `u[i]` in the paper's notation.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ r`.
    pub fn bit(self, i: u8) -> bool {
        assert!(i < self.shape.r(), "bit index {i} out of range");
        self.bits & (1u64 << i) != 0
    }

    /// `One(u)`: the positions at which this vertex has bit one,
    /// ascending.
    pub fn one_positions(self) -> impl DoubleEndedIterator<Item = u8> + Clone {
        bits::ones(self.bits)
    }

    /// `Zero(u)`: the positions at which this vertex has bit zero,
    /// ascending.
    pub fn zero_positions(self) -> impl DoubleEndedIterator<Item = u8> + Clone {
        bits::ones(self.zero_mask())
    }

    /// `|One(u)|`: the number of one bits.
    pub const fn one_count(self) -> u32 {
        self.bits.count_ones()
    }

    /// `|Zero(u)|`: the number of zero bits.
    pub const fn zero_count(self) -> u32 {
        self.shape.r() as u32 - self.bits.count_ones()
    }

    /// Mask of the one positions (equal to [`Vertex::bits`]).
    pub const fn one_mask(self) -> u64 {
        self.bits
    }

    /// Mask of the zero positions.
    pub const fn zero_mask(self) -> u64 {
        !self.bits & self.shape.full_mask()
    }

    /// Whether `self` *contains* `other`: `other[i] ⇒ self[i]` for all
    /// `i`, i.e. `One(other) ⊆ One(self)`.
    ///
    /// # Panics
    ///
    /// Panics if the vertices come from different shapes.
    pub fn contains(self, other: Vertex) -> bool {
        self.assert_same_shape(other);
        other.bits & !self.bits == 0
    }

    /// The Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the vertices come from different shapes.
    pub fn hamming(self, other: Vertex) -> u32 {
        self.assert_same_shape(other);
        (self.bits ^ other.bits).count_ones()
    }

    /// The neighbor across dimension `i` (bit `i` flipped).
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ r`.
    pub fn flip(self, i: u8) -> Vertex {
        assert!(i < self.shape.r(), "dimension {i} out of range");
        Vertex {
            shape: self.shape,
            bits: self.bits ^ (1u64 << i),
        }
    }

    /// This vertex with bit `i` set.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ r`.
    pub fn with_bit(self, i: u8) -> Vertex {
        assert!(i < self.shape.r(), "dimension {i} out of range");
        Vertex {
            shape: self.shape,
            bits: self.bits | (1u64 << i),
        }
    }

    /// This vertex with bit `i` cleared.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ r`.
    pub fn without_bit(self, i: u8) -> Vertex {
        assert!(i < self.shape.r(), "dimension {i} out of range");
        Vertex {
            shape: self.shape,
            bits: self.bits & !(1u64 << i),
        }
    }

    /// All `r` neighbors of this vertex, in ascending dimension order.
    pub fn neighbors(self) -> impl Iterator<Item = Vertex> + Clone {
        self.shape.axes().map(move |i| self.flip(i))
    }

    /// The subhypercube `H_r(u)` induced by this vertex
    /// (Definition 3.1): all vertices that contain `u`.
    pub fn subcube(self) -> Subcube {
        Subcube::induced_by(self)
    }

    /// Asserts that two vertices share a shape.
    fn assert_same_shape(self, other: Vertex) {
        assert_eq!(
            self.shape, other.shape,
            "vertices from different hypercubes: {} vs {}",
            self.shape, other.shape
        );
    }
}

impl fmt::Display for Vertex {
    /// Formats as an `r`-character binary string, most significant bit
    /// first, matching the paper's figures (e.g. `0100` in `H_4`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.shape.r()).rev() {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

impl fmt::Binary for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(r: u8) -> Shape {
        Shape::new(r).unwrap()
    }

    fn v(r: u8, bits: u64) -> Vertex {
        Vertex::from_bits(shape(r), bits).unwrap()
    }

    #[test]
    fn paper_example_one_zero_sets() {
        // §3.1: v = 010100 → One(v) = {2,4}, Zero(v) = {0,1,3,5}.
        let vx = v(6, 0b010100);
        assert_eq!(vx.one_positions().collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(vx.zero_positions().collect::<Vec<_>>(), vec![0, 1, 3, 5]);
        assert_eq!(vx.one_count(), 2);
        assert_eq!(vx.zero_count(), 4);
    }

    #[test]
    fn from_bits_validates() {
        assert!(Vertex::from_bits(shape(3), 0b111).is_ok());
        assert!(Vertex::from_bits(shape(3), 0b1000).is_err());
    }

    #[test]
    fn zero_and_all_ones() {
        let s = shape(5);
        assert_eq!(Vertex::zero(s).one_count(), 0);
        assert_eq!(Vertex::all_ones(s).one_count(), 5);
        assert!(Vertex::all_ones(s).contains(Vertex::zero(s)));
    }

    #[test]
    fn bit_indexing_counts_from_right() {
        let vx = v(4, 0b0100);
        assert!(!vx.bit(0));
        assert!(!vx.bit(1));
        assert!(vx.bit(2));
        assert!(!vx.bit(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        v(4, 0).bit(4);
    }

    #[test]
    fn containment_is_subset_of_ones() {
        let u = v(4, 0b0100);
        assert!(v(4, 0b0100).contains(u));
        assert!(v(4, 0b0110).contains(u));
        assert!(v(4, 0b1111).contains(u));
        assert!(!v(4, 0b0011).contains(u));
        assert!(!v(4, 0b0000).contains(u));
    }

    #[test]
    fn containment_reflexive_and_antisymmetric() {
        for bits in 0..16u64 {
            let a = v(4, bits);
            assert!(a.contains(a));
            for other in 0..16u64 {
                let b = v(4, other);
                if a.contains(b) && b.contains(a) {
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn hamming_distance() {
        assert_eq!(v(4, 0b0000).hamming(v(4, 0b1111)), 4);
        assert_eq!(v(4, 0b1010).hamming(v(4, 0b1010)), 0);
        assert_eq!(v(4, 0b1010).hamming(v(4, 0b1000)), 1);
    }

    #[test]
    #[should_panic(expected = "different hypercubes")]
    fn mixed_shapes_panic() {
        let _ = v(4, 1).hamming(v(5, 1));
    }

    #[test]
    fn flip_is_involution_and_neighbor() {
        let vx = v(6, 0b010100);
        for i in 0..6 {
            let n = vx.flip(i);
            assert_eq!(vx.hamming(n), 1);
            assert_eq!(n.flip(i), vx);
        }
    }

    #[test]
    fn with_without_bit() {
        let vx = v(4, 0b0100);
        assert_eq!(vx.with_bit(0).bits(), 0b0101);
        assert_eq!(
            vx.with_bit(2).bits(),
            0b0100,
            "setting a set bit is a no-op"
        );
        assert_eq!(vx.without_bit(2).bits(), 0b0000);
        assert_eq!(vx.without_bit(0).bits(), 0b0100);
    }

    #[test]
    fn neighbors_are_all_distinct_at_distance_one() {
        let vx = v(5, 0b10101);
        let ns: Vec<Vertex> = vx.neighbors().collect();
        assert_eq!(ns.len(), 5);
        for n in &ns {
            assert_eq!(vx.hamming(*n), 1);
        }
        let mut bits: Vec<u64> = ns.iter().map(|n| n.bits()).collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), 5);
    }

    #[test]
    fn display_msb_first() {
        assert_eq!(v(4, 0b0100).to_string(), "0100");
        assert_eq!(v(6, 0b010100).to_string(), "010100");
        assert_eq!(format!("{:b}", v(4, 0b0100)), "100");
    }

    #[test]
    fn masks_partition_the_shape() {
        let vx = v(7, 0b1010011);
        assert_eq!(vx.one_mask() | vx.zero_mask(), shape(7).full_mask());
        assert_eq!(vx.one_mask() & vx.zero_mask(), 0);
    }
}
