//! Induced subhypercubes (Definition 3.1).
//!
//! The subhypercube `H_r(u)` induced by a vertex `u` consists of every
//! vertex `w` that *contains* `u` (`One(u) ⊆ One(w)`). It is isomorphic
//! to a `|Zero(u)|`-dimensional hypercube: the free coordinates are
//! exactly the zero positions of `u`. Lemma 3.1 is the reason the search
//! scheme cares: every object describable by a keyword set `K` is indexed
//! somewhere inside `H_r(F_h(K))`.

use std::fmt;

use crate::bits;
use crate::vertex::Vertex;

/// The subhypercube `H_r(u)` induced by a root vertex `u`.
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::{Shape, Subcube, Vertex};
///
/// let shape = Shape::new(4)?;
/// let u = Vertex::from_bits(shape, 0b0100)?;
/// let sub = Subcube::induced_by(u);
/// assert_eq!(sub.dim(), 3);          // isomorphic to H_3 (Fig. 3)
/// assert_eq!(sub.len(), 8);
/// assert!(sub.iter().all(|w| w.contains(u)));
/// # Ok::<(), hyperdex_hypercube::DimensionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Subcube {
    root: Vertex,
}

impl Subcube {
    /// Creates the subhypercube induced by `root`.
    pub fn induced_by(root: Vertex) -> Self {
        Subcube { root }
    }

    /// The inducing vertex `u`.
    pub const fn root(self) -> Vertex {
        self.root
    }

    /// The free dimensions, `Zero(u)`, as a bitmask.
    pub fn free_mask(self) -> u64 {
        self.root.zero_mask()
    }

    /// The free dimensions, ascending.
    pub fn free_dims(self) -> impl DoubleEndedIterator<Item = u8> + Clone {
        self.root.zero_positions()
    }

    /// The dimensionality of the isomorphic hypercube, `|Zero(u)|`.
    pub fn dim(self) -> u32 {
        self.root.zero_count()
    }

    /// The number of vertices, `2^|Zero(u)|`.
    // A subcube always contains at least its root, so there is no
    // meaningful `is_empty`; `is_unit` covers the degenerate case.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u64 {
        1u64 << self.dim()
    }

    /// Whether the subcube consists only of its root (`u` all ones).
    pub fn is_unit(self) -> bool {
        self.dim() == 0
    }

    /// Whether `w` belongs to this subcube (`w` contains the root).
    pub fn contains(self, w: Vertex) -> bool {
        w.contains(self.root)
    }

    /// Whether `other` is a (not necessarily proper) subcube of `self`.
    ///
    /// This is Lemma 3.3's geometry: if `u ⊆ w` (as one-sets) then
    /// `H_r(w) ⊆ H_r(u)`.
    pub fn contains_subcube(self, other: Subcube) -> bool {
        other.root.contains(self.root)
    }

    /// Iterates over every vertex of the subcube.
    ///
    /// Vertices are produced in increasing order of the dense index over
    /// the free bits (the root first, the all-free-bits-set vertex last).
    pub fn iter(self) -> Iter {
        Iter {
            subcube: self,
            next_index: 0,
        }
    }

    /// Iterates over the vertices at Hamming distance exactly `d` from
    /// the root, i.e. the vertices whose keyword sets have `d` extra
    /// hashed positions (Lemma 3.2's levels).
    ///
    /// Vertices are produced in subset-counting order.
    pub fn level(self, d: u32) -> impl Iterator<Item = Vertex> {
        self.iter().filter(move |w| w.hamming(self.root) == d)
    }

    /// The vertex of this subcube with the given dense index over free
    /// bits (inverse of enumeration order).
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ len()`.
    pub fn vertex_at(self, index: u64) -> Vertex {
        assert!(index < self.len(), "subcube index {index} out of range");
        let bits = self.root.bits() | bits::deposit(index, self.free_mask());
        Vertex::from_bits(self.root.shape(), bits).expect("deposit stays within shape")
    }

    /// The dense index of `w` within this subcube.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a member of the subcube.
    pub fn index_of(self, w: Vertex) -> u64 {
        assert!(
            self.contains(w),
            "vertex {w} not in subcube of {}",
            self.root
        );
        bits::extract(w.bits(), self.free_mask())
    }
}

impl fmt::Display for Subcube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H_{}({})", self.root.shape().r(), self.root)
    }
}

/// Iterator over all vertices of a [`Subcube`].
#[derive(Debug, Clone)]
pub struct Iter {
    subcube: Subcube,
    next_index: u64,
}

impl Iterator for Iter {
    type Item = Vertex;

    fn next(&mut self) -> Option<Vertex> {
        if self.next_index >= self.subcube.len() {
            None
        } else {
            let v = self.subcube.vertex_at(self.next_index);
            self.next_index += 1;
            Some(v)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.subcube.len() - self.next_index) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for Subcube {
    type Item = Vertex;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn v(r: u8, bits: u64) -> Vertex {
        Vertex::from_bits(Shape::new(r).unwrap(), bits).unwrap()
    }

    #[test]
    fn paper_figure3_h4_0100() {
        // Figure 3(b): H_4(0100) has 8 nodes, all containing 0100.
        let sub = v(4, 0b0100).subcube();
        assert_eq!(sub.dim(), 3);
        assert_eq!(sub.len(), 8);
        let members: Vec<u64> = sub.iter().map(|w| w.bits()).collect();
        let mut expected = vec![
            0b0100, 0b0101, 0b0110, 0b0111, 0b1100, 0b1101, 0b1110, 0b1111,
        ];
        let mut got = members.clone();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn root_is_first_vertex() {
        let sub = v(5, 0b00101).subcube();
        assert_eq!(sub.iter().next(), Some(sub.root()));
    }

    #[test]
    fn membership_matches_containment() {
        let u = v(4, 0b0101);
        let sub = u.subcube();
        for bits in 0..16u64 {
            let w = v(4, bits);
            assert_eq!(sub.contains(w), w.contains(u));
        }
    }

    #[test]
    fn unit_subcube() {
        let sub = v(3, 0b111).subcube();
        assert!(sub.is_unit());
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.iter().collect::<Vec<_>>(), vec![sub.root()]);
    }

    #[test]
    fn full_cube_from_zero_root() {
        let shape = Shape::new(4).unwrap();
        let sub = Vertex::zero(shape).subcube();
        assert_eq!(sub.len(), 16);
        assert_eq!(sub.iter().count(), 16);
    }

    #[test]
    fn levels_partition_by_hamming_distance() {
        let sub = v(5, 0b00001).subcube();
        let mut total = 0u64;
        for d in 0..=sub.dim() {
            let level: Vec<Vertex> = sub.level(d).collect();
            // Level sizes are binomial coefficients C(dim, d).
            let expected = binomial(sub.dim() as u64, d as u64);
            assert_eq!(level.len() as u64, expected, "level {d}");
            for w in &level {
                assert_eq!(w.hamming(sub.root()), d);
            }
            total += level.len() as u64;
        }
        assert_eq!(total, sub.len());
    }

    #[test]
    fn vertex_at_and_index_roundtrip() {
        let sub = v(6, 0b010010).subcube();
        for i in 0..sub.len() {
            let w = sub.vertex_at(i);
            assert!(sub.contains(w));
            assert_eq!(sub.index_of(w), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vertex_at_out_of_range_panics() {
        v(4, 0b1111).subcube().vertex_at(1);
    }

    #[test]
    #[should_panic(expected = "not in subcube")]
    fn index_of_non_member_panics() {
        let sub = v(4, 0b0100).subcube();
        sub.index_of(v(4, 0b0011));
    }

    #[test]
    fn lemma_3_3_nesting() {
        // If u ⊆ w (one-sets), H(w) ⊆ H(u).
        let u = v(6, 0b000100);
        let w = v(6, 0b010100);
        assert!(w.contains(u));
        assert!(u.subcube().contains_subcube(w.subcube()));
        assert!(!w.subcube().contains_subcube(u.subcube()));
        // Every member of H(w) is a member of H(u).
        for m in w.subcube().iter() {
            assert!(u.subcube().contains(m));
        }
    }

    #[test]
    fn exact_size_iterator() {
        let sub = v(5, 0b00011).subcube();
        let mut it = sub.iter();
        assert_eq!(it.len(), 8);
        it.next();
        assert_eq!(it.len(), 7);
    }

    #[test]
    fn display_format() {
        assert_eq!(v(4, 0b0100).subcube().to_string(), "H_4(0100)");
    }

    fn binomial(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let k = k.min(n - k);
        let mut result = 1u64;
        for i in 0..k {
            result = result * (n - i) / (i + 1);
        }
        result
    }
}
