//! Spanning binomial trees (Definition 3.2).
//!
//! `SBT(u)` spans the whole hypercube; `SBT_{H_r}(u)` spans only the
//! subhypercube induced by `u` (the bit positions in `One(u)` are
//! masked). Both are instances of one structure: a binomial tree over a
//! set of *free* dimensions. A node `v` at depth `d` has Hamming distance
//! `d` from the root — the property behind Lemma 3.2 that lets superset
//! search return objects ordered by how many *extra* keywords they carry.
//!
//! Tree wiring, following the paper: let `p` be the lowest dimension at
//! which `v` differs from the root (`p = -1` for the root itself). Then
//! the parent of `v` flips bit `p` back, and the children of `v` flip
//! each free bit `j < p` (every free bit for the root).

use std::collections::VecDeque;
use std::fmt;

use crate::bits;
use crate::vertex::Vertex;

/// A spanning binomial tree rooted at a vertex, over a set of free
/// dimensions.
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::{Sbt, Shape, Vertex};
///
/// // Figure 4(b): SBT_{H_4}(0100).
/// let shape = Shape::new(4)?;
/// let root = Vertex::from_bits(shape, 0b0100)?;
/// let sbt = Sbt::induced(root);
/// assert_eq!(sbt.node_count(), 8);
/// assert_eq!(sbt.height(), 3);
/// // The node 1110 differs from the root at dims 1 and 3; its parent
/// // flips the lowest differing bit (1).
/// let v = Vertex::from_bits(shape, 0b1110)?;
/// assert_eq!(sbt.parent(v), Some(Vertex::from_bits(shape, 0b1100)?));
/// # Ok::<(), hyperdex_hypercube::DimensionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sbt {
    root: Vertex,
    free_mask: u64,
}

impl Sbt {
    /// The tree `SBT(u)` spanning the full hypercube.
    pub fn spanning(root: Vertex) -> Self {
        Sbt {
            root,
            free_mask: root.shape().full_mask(),
        }
    }

    /// The tree `SBT_{H_r}(u)` spanning the subhypercube induced by
    /// `root` (free dimensions are `Zero(root)`).
    pub fn induced(root: Vertex) -> Self {
        Sbt {
            root,
            free_mask: root.zero_mask(),
        }
    }

    /// The root vertex.
    pub const fn root(self) -> Vertex {
        self.root
    }

    /// The bitmask of free dimensions the tree spans.
    pub const fn free_mask(self) -> u64 {
        self.free_mask
    }

    /// The free dimensions, ascending.
    pub fn free_dims(self) -> impl DoubleEndedIterator<Item = u8> + Clone {
        bits::ones(self.free_mask)
    }

    /// Number of nodes, `2^(free dimensions)`.
    pub fn node_count(self) -> u64 {
        1u64 << self.free_mask.count_ones()
    }

    /// Tree height (equals the number of free dimensions).
    pub fn height(self) -> u32 {
        self.free_mask.count_ones()
    }

    /// Whether `v` is a node of this tree.
    pub fn contains(self, v: Vertex) -> bool {
        v.shape() == self.root.shape() && (v.bits() ^ self.root.bits()) & !self.free_mask == 0
    }

    /// The depth of `v` (Hamming distance from the root).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a tree node.
    pub fn depth(self, v: Vertex) -> u32 {
        self.assert_member(v);
        v.hamming(self.root)
    }

    /// The dimension across which `v` connects to its parent — the
    /// paper's `p`, the lowest dimension where `v` differs from the root.
    /// `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a tree node.
    pub fn branch_dim(self, v: Vertex) -> Option<u8> {
        self.assert_member(v);
        let diff = v.bits() ^ self.root.bits();
        if diff == 0 {
            None
        } else {
            Some(diff.trailing_zeros() as u8)
        }
    }

    /// The parent of `v`, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a tree node.
    pub fn parent(self, v: Vertex) -> Option<Vertex> {
        self.branch_dim(v).map(|p| v.flip(p))
    }

    /// The children of `v`, produced in **descending** dimension order
    /// (largest subtree first).
    ///
    /// Children flip each free dimension strictly below `v`'s branch
    /// dimension (all free dimensions for the root).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a tree node.
    pub fn children(self, v: Vertex) -> impl Iterator<Item = Vertex> + Clone {
        let mask = self.child_dims_mask(v);
        bits::ones(mask).rev().map(move |j| v.flip(j))
    }

    /// The dimensions across which `v` has children, as a bitmask.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a tree node.
    pub fn child_dims_mask(self, v: Vertex) -> u64 {
        self.assert_member(v);
        match self.branch_dim(v) {
            None => self.free_mask,
            Some(p) => self.free_mask & ((1u64 << p) - 1),
        }
    }

    /// The size of the subtree rooted at `v`:
    /// `2^(free dimensions below the branch dimension)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a tree node.
    pub fn subtree_size(self, v: Vertex) -> u64 {
        1u64 << self.child_dims_mask(v).count_ones()
    }

    /// Iterates over the nodes at depth exactly `d`.
    pub fn level(self, d: u32) -> impl Iterator<Item = Vertex> {
        let root = self.root;
        let mask = self.free_mask;
        // Enumerate subsets of the free mask; a subset with popcount d
        // XOR'd onto the root yields exactly the depth-d nodes.
        std::iter::successors(Some(0u64), move |&s| bits::next_subset(s, mask))
            .filter(move |s| s.count_ones() == d)
            .map(move |s| {
                Vertex::from_bits(root.shape(), root.bits() ^ s)
                    .expect("subset of free mask stays within shape")
            })
    }

    /// Breadth-first traversal yielding `(vertex, depth)` starting at the
    /// root — exactly the visit order of the paper's sequential
    /// top-down superset search when each node's children are enqueued in
    /// descending dimension order.
    pub fn bfs(self) -> Bfs {
        let mut queue = VecDeque::new();
        queue.push_back((self.root, 0));
        Bfs { sbt: self, queue }
    }

    fn assert_member(self, v: Vertex) {
        assert!(self.contains(v), "vertex {v} is not a node of {self}");
    }
}

impl fmt::Display for Sbt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SBT({}; free={:#b})", self.root, self.free_mask)
    }
}

/// The prefix region `(level, prefix)` that contains the whole SBT
/// subtree of a node reached across dimension `via_dim` — for **any**
/// root.
///
/// A subtree member differs from the subtree's root only in free
/// dimensions strictly below `via_dim` (the tree wiring above), so every
/// member shares the subtree root's bits from `via_dim` upward. The
/// region `{x : x >> via_dim == prefix}` therefore covers the subtree;
/// it may also contain vertices outside the subtree, which makes
/// region-keyed occupancy digests a *recall-safe over-approximation*
/// for pruning: an empty region implies an empty subtree.
pub fn subtree_region(child_bits: u64, via_dim: u8) -> (u8, u64) {
    (via_dim, child_bits >> via_dim)
}

/// The ancestor chain of prefix regions containing vertex `bits`, from
/// the leaf region `(0, bits)` up to the whole cube `(r, 0)`.
///
/// These are the `r + 1` region digests an insert or delete at `bits`
/// must touch — the O(r) "bubble up" path of an occupancy-summary
/// update.
pub fn summary_path(bits: u64, r: u8) -> impl DoubleEndedIterator<Item = (u8, u64)> + Clone {
    (0..=r).map(move |j| (j, bits >> j))
}

/// Breadth-first iterator over an [`Sbt`].
#[derive(Debug, Clone)]
pub struct Bfs {
    sbt: Sbt,
    queue: VecDeque<(Vertex, u32)>,
}

impl Iterator for Bfs {
    type Item = (Vertex, u32);

    fn next(&mut self) -> Option<(Vertex, u32)> {
        let (v, d) = self.queue.pop_front()?;
        for child in self.sbt.children(v) {
            self.queue.push_back((child, d + 1));
        }
        Some((v, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn v(r: u8, bits: u64) -> Vertex {
        Vertex::from_bits(Shape::new(r).unwrap(), bits).unwrap()
    }

    #[test]
    fn figure4_induced_tree_shape() {
        // SBT_{H_4}(0100): root 0100; its children flip dims 3, 1, 0.
        let sbt = Sbt::induced(v(4, 0b0100));
        let children: Vec<u64> = sbt.children(sbt.root()).map(|c| c.bits()).collect();
        assert_eq!(children, vec![0b1100, 0b0110, 0b0101]);
        assert_eq!(sbt.node_count(), 8);
        assert_eq!(sbt.height(), 3);
    }

    #[test]
    fn parent_flips_lowest_differing_bit() {
        let sbt = Sbt::induced(v(4, 0b0100));
        // 1110 differs from 0100 at dims {1, 3}; lowest is 1.
        assert_eq!(sbt.parent(v(4, 0b1110)), Some(v(4, 0b1100)));
        // 0101 differs only at dim 0.
        assert_eq!(sbt.parent(v(4, 0b0101)), Some(v(4, 0b0100)));
        assert_eq!(sbt.parent(sbt.root()), None);
    }

    #[test]
    fn parent_child_inverse() {
        let sbt = Sbt::spanning(v(5, 0b10110));
        for (node, _) in sbt.bfs() {
            for child in sbt.children(node) {
                assert_eq!(sbt.parent(child), Some(node));
            }
        }
    }

    #[test]
    fn bfs_visits_every_subcube_node_once() {
        let root = v(6, 0b010010);
        let sbt = Sbt::induced(root);
        let visited: Vec<Vertex> = sbt.bfs().map(|(n, _)| n).collect();
        assert_eq!(visited.len() as u64, sbt.node_count());
        let mut bits: Vec<u64> = visited.iter().map(|n| n.bits()).collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len() as u64, sbt.node_count(), "no duplicates");
        for n in &visited {
            assert!(n.contains(root), "every node contains the root");
        }
    }

    #[test]
    fn bfs_depths_non_decreasing_and_match_hamming() {
        let sbt = Sbt::induced(v(5, 0b00100));
        let mut last = 0;
        for (node, depth) in sbt.bfs() {
            assert!(depth >= last, "BFS order");
            assert_eq!(depth, node.hamming(sbt.root()), "depth = Hamming distance");
            last = depth;
        }
    }

    #[test]
    fn depth_property_lemma_3_2() {
        // Nodes at depth d have exactly d more one-bits than the root
        // (in an induced tree, where all free bits start at zero).
        let root = v(6, 0b001001);
        let sbt = Sbt::induced(root);
        for (node, depth) in sbt.bfs() {
            assert_eq!(node.one_count(), root.one_count() + depth);
        }
    }

    #[test]
    fn spanning_tree_covers_full_cube() {
        let sbt = Sbt::spanning(v(4, 0b1010));
        let visited: Vec<u64> = sbt.bfs().map(|(n, _)| n.bits()).collect();
        assert_eq!(visited.len(), 16);
        let mut sorted = visited.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn level_sizes_are_binomial() {
        let sbt = Sbt::induced(v(6, 0b000011));
        // 4 free dims: levels 1,4,6,4,1.
        let sizes: Vec<usize> = (0..=4).map(|d| sbt.level(d).count()).collect();
        assert_eq!(sizes, vec![1, 4, 6, 4, 1]);
    }

    #[test]
    fn subtree_sizes_sum_to_node_count() {
        let sbt = Sbt::induced(v(5, 0b01000));
        let root_children_total: u64 = sbt.children(sbt.root()).map(|c| sbt.subtree_size(c)).sum();
        assert_eq!(root_children_total + 1, sbt.node_count());
    }

    #[test]
    fn subtree_size_leaf_is_one() {
        let sbt = Sbt::induced(v(4, 0b0100));
        // 0101 branches at dim 0; no free dims below 0 → leaf.
        assert_eq!(sbt.subtree_size(v(4, 0b0101)), 1);
    }

    #[test]
    fn contains_rejects_outsiders() {
        let sbt = Sbt::induced(v(4, 0b0100));
        assert!(sbt.contains(v(4, 0b1110)));
        assert!(
            !sbt.contains(v(4, 0b0010)),
            "does not contain the root's ones"
        );
    }

    #[test]
    #[should_panic(expected = "not a node")]
    fn depth_of_outsider_panics() {
        Sbt::induced(v(4, 0b0100)).depth(v(4, 0b0000));
    }

    #[test]
    fn unit_tree() {
        let sbt = Sbt::induced(v(3, 0b111));
        assert_eq!(sbt.node_count(), 1);
        assert_eq!(sbt.bfs().count(), 1);
        assert_eq!(sbt.children(sbt.root()).count(), 0);
    }

    #[test]
    fn children_descending_dimension_order() {
        let sbt = Sbt::spanning(v(4, 0b0000));
        let dims: Vec<u64> = sbt.children(sbt.root()).map(|c| c.bits()).collect();
        assert_eq!(dims, vec![0b1000, 0b0100, 0b0010, 0b0001]);
    }

    /// Every descendant of a child reached via dimension `j` stays inside
    /// the prefix region `(j, child >> j)`, for spanning and induced
    /// trees alike.
    #[test]
    fn subtree_region_contains_whole_subtree() {
        for root_bits in [0b000000u64, 0b010010, 0b001001, 0b111000] {
            let root = v(6, root_bits);
            for sbt in [Sbt::induced(root), Sbt::spanning(root)] {
                for (node, _) in sbt.bfs() {
                    let Some(via) = sbt.branch_dim(node) else {
                        continue;
                    };
                    let (level, prefix) = subtree_region(node.bits(), via);
                    // Collect the actual subtree below `node` by walking
                    // children recursively via BFS from `node`.
                    let mut queue = vec![node];
                    while let Some(w) = queue.pop() {
                        assert_eq!(
                            w.bits() >> level,
                            prefix,
                            "descendant {w} of {node} (via {via}) left its region"
                        );
                        queue.extend(sbt.children(w));
                    }
                }
            }
        }
    }

    #[test]
    fn summary_path_walks_leaf_to_cube() {
        let path: Vec<(u8, u64)> = summary_path(0b1011, 4).collect();
        assert_eq!(
            path,
            vec![(0, 0b1011), (1, 0b101), (2, 0b10), (3, 0b1), (4, 0)]
        );
        // Region at each level halves in specificity; last covers all.
        assert_eq!(summary_path(0, 63).count(), 64);
    }
}
