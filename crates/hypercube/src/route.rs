//! Dimension-ordered (e-cube) routing between hypercube vertices.
//!
//! When the hypercube is a physical overlay (e.g. HyperCuP, which the
//! paper cites as one deployment option), a message between two logical
//! nodes travels edge-by-edge. E-cube routing fixes the classic
//! deadlock-free path: correct differing bits in a fixed dimension
//! order. Path length equals the Hamming distance — the overlay
//! diameter is `r`.

use crate::vertex::Vertex;

/// The e-cube path from `from` to `to`, inclusive of both endpoints.
///
/// Differing dimensions are corrected from the highest to the lowest,
/// so every step crosses exactly one edge and the path has
/// `Hamming(from, to) + 1` vertices.
///
/// # Panics
///
/// Panics if the vertices come from different shapes.
///
/// # Example
///
/// ```
/// use hyperdex_hypercube::{route, Shape, Vertex};
///
/// let shape = Shape::new(4)?;
/// let a = Vertex::from_bits(shape, 0b0000)?;
/// let b = Vertex::from_bits(shape, 0b1010)?;
/// let path = route::ecube_path(a, b);
/// assert_eq!(path.len(), 3); // Hamming distance 2, plus the start
/// assert_eq!(path[0], a);
/// assert_eq!(path[2], b);
/// # Ok::<(), hyperdex_hypercube::DimensionError>(())
/// ```
pub fn ecube_path(from: Vertex, to: Vertex) -> Vec<Vertex> {
    assert_eq!(
        from.shape(),
        to.shape(),
        "cannot route between different hypercubes"
    );
    let mut path = Vec::with_capacity(from.hamming(to) as usize + 1);
    let mut current = from;
    path.push(current);
    let diff = from.bits() ^ to.bits();
    for dim in (0..from.shape().r()).rev() {
        if diff & (1u64 << dim) != 0 {
            current = current.flip(dim);
            path.push(current);
        }
    }
    debug_assert_eq!(*path.last().expect("non-empty"), to);
    path
}

/// The number of overlay hops between two vertices (the Hamming
/// distance — provided for symmetry with [`ecube_path`]).
pub fn hop_count(from: Vertex, to: Vertex) -> u32 {
    from.hamming(to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn v(r: u8, bits: u64) -> Vertex {
        Vertex::from_bits(Shape::new(r).unwrap(), bits).unwrap()
    }

    #[test]
    fn path_endpoints_and_length() {
        let a = v(6, 0b010101);
        let b = v(6, 0b101010);
        let path = ecube_path(a, b);
        assert_eq!(path.len() as u32, a.hamming(b) + 1);
        assert_eq!(path[0], a);
        assert_eq!(*path.last().unwrap(), b);
    }

    #[test]
    fn every_step_is_one_edge() {
        let a = v(8, 0b0011_0101);
        let b = v(8, 0b1100_1010);
        for pair in ecube_path(a, b).windows(2) {
            assert_eq!(pair[0].hamming(pair[1]), 1);
        }
    }

    #[test]
    fn self_route_is_trivial() {
        let a = v(4, 0b1001);
        assert_eq!(ecube_path(a, a), vec![a]);
        assert_eq!(hop_count(a, a), 0);
    }

    #[test]
    fn corrects_high_dimensions_first() {
        let a = v(4, 0b0000);
        let b = v(4, 0b1001);
        let path = ecube_path(a, b);
        assert_eq!(path[1], v(4, 0b1000), "dimension 3 first");
        assert_eq!(path[2], v(4, 0b1001));
    }

    #[test]
    fn no_vertex_repeats() {
        let a = v(10, 0);
        let b = v(10, 0b11_1111_1111);
        let path = ecube_path(a, b);
        let mut seen: Vec<u64> = path.iter().map(|p| p.bits()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), path.len());
    }

    #[test]
    #[should_panic(expected = "different hypercubes")]
    fn cross_shape_routing_panics() {
        ecube_path(v(4, 0), v(5, 0));
    }
}
