//! Property-based tests for the simulation substrate.

use hyperdex_simnet::latency::LatencyModel;
use hyperdex_simnet::net::Network;
use hyperdex_simnet::rng::SimRng;
use hyperdex_simnet::time::{SimDuration, SimTime};
use hyperdex_simnet::EventQueue;
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// scheduling order.
    #[test]
    fn event_queue_monotone(delays in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, d) in delays.iter().enumerate() {
            q.schedule_at(SimTime::from_ticks(*d), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }

    /// Same-instant events preserve scheduling order (stable FIFO).
    #[test]
    fn event_queue_fifo_within_tick(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_ticks(7), i);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }

    /// gen_range never exceeds its bound and hits both halves of the
    /// domain over enough draws.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }

    /// Identical seeds give identical streams; shuffles are permutations.
    #[test]
    fn rng_shuffle_permutes(seed in any::<u64>(), len in 0usize..64) {
        let mut rng = SimRng::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// Every sent message is exactly once delivered or dropped, and the
    /// simulation reaches quiescence.
    #[test]
    fn network_conservation(
        seed in any::<u64>(),
        sends in prop::collection::vec((0u64..8, 0u64..8), 0..200),
        drop_p in 0.0f64..1.0,
    ) {
        let mut net: Network<usize> = Network::new(LatencyModel::uniform(1, 5), seed);
        let eps = net.add_endpoints(8);
        net.faults_mut().set_drop_probability(drop_p);
        for (i, (from, to)) in sends.iter().enumerate() {
            net.send(eps[*from as usize], eps[*to as usize], i);
        }
        let delivered = net.run_to_quiescence(|_, _, _| {});
        let m = net.metrics();
        prop_assert_eq!(m.messages_sent.get(), sends.len() as u64);
        prop_assert_eq!(delivered + m.messages_dropped.get(), sends.len() as u64);
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// Under *any* seed, fault plan (link loss, outage windows, and
    /// permanent kills), and latency model, every sent message is
    /// exactly once delivered or dropped — and the trace agrees with
    /// the counters event for event.
    #[test]
    fn conservation_with_trace_agreement(
        seed in any::<u64>(),
        sends in prop::collection::vec((0u64..8, 0u64..8), 0..150),
        drop_p in 0.0f64..1.0,
        latency_kind in 0u8..3,
        outages in prop::collection::vec((0u64..8, 0u64..40, 1u64..40), 0..10),
        kills in prop::collection::vec(0u64..8, 0..3),
    ) {
        let latency = match latency_kind {
            0 => LatencyModel::constant(2),
            1 => LatencyModel::uniform(1, 9),
            _ => LatencyModel::pareto(1, 1.5, 50),
        };
        let mut net: Network<usize> = Network::new(latency, seed);
        let eps = net.add_endpoints(8);
        net.enable_tracing(4096);
        net.faults_mut().set_drop_probability(drop_p);
        for (ep, from, len) in &outages {
            net.faults_mut().outage(
                eps[*ep as usize],
                SimTime::from_ticks(*from),
                SimTime::from_ticks(from + len),
            );
        }
        for ep in &kills {
            net.faults_mut().kill(eps[*ep as usize]);
        }
        for (i, (from, to)) in sends.iter().enumerate() {
            net.send(eps[*from as usize], eps[*to as usize], i);
        }
        let delivered = net.run_to_quiescence(|_, _, _| {});
        let m = *net.metrics();
        prop_assert_eq!(m.messages_sent.get(), sends.len() as u64);
        prop_assert_eq!(m.messages_delivered.get(), delivered);
        prop_assert_eq!(
            m.messages_delivered.get() + m.messages_dropped.get(),
            m.messages_sent.get()
        );
        prop_assert_eq!(net.in_flight(), 0);
        // Trace agreement: the buffer is large enough to hold every
        // event (≤ 3 per send), so per-kind counts must equal counters.
        let trace = net.trace();
        prop_assert_eq!(
            trace.of_kind(hyperdex_simnet::trace::TraceKind::Sent).count() as u64,
            m.messages_sent.get()
        );
        prop_assert_eq!(
            trace.of_kind(hyperdex_simnet::trace::TraceKind::Delivered).count() as u64,
            m.messages_delivered.get()
        );
        prop_assert_eq!(
            trace.of_kind(hyperdex_simnet::trace::TraceKind::Dropped).count() as u64,
            m.messages_dropped.get()
        );
    }

    /// Timers never leak: at quiescence every timer set was fired,
    /// cancelled, or suppressed by a dead owner, and none remain
    /// pending. Timer activity must not perturb message conservation.
    #[test]
    fn timer_accounting(
        seed in any::<u64>(),
        timers in prop::collection::vec((0u64..4, 1u64..30), 0..40),
        cancel_every in 1usize..5,
        kills in prop::collection::vec(0u64..4, 0..2),
        sends in prop::collection::vec((0u64..4, 0u64..4), 0..30),
    ) {
        let mut net: Network<usize> = Network::new(LatencyModel::uniform(1, 5), seed);
        let eps = net.add_endpoints(4);
        for ep in &kills {
            net.faults_mut().kill(eps[*ep as usize]);
        }
        let mut set = 0u64;
        let mut cancelled = 0u64;
        for (i, (owner, after)) in timers.iter().enumerate() {
            let id = net.set_timer(
                eps[*owner as usize],
                SimDuration::from_ticks(*after),
                i as u64,
            );
            set += 1;
            if i % cancel_every == 0 {
                net.cancel_timer(id);
                cancelled += 1;
            }
        }
        for (i, (from, to)) in sends.iter().enumerate() {
            net.send(eps[*from as usize], eps[*to as usize], i);
        }
        let mut fired = 0u64;
        let mut delivered = 0u64;
        while let Some(ev) = net.step_event() {
            match ev {
                hyperdex_simnet::net::NetEvent::Timer(_) => fired += 1,
                hyperdex_simnet::net::NetEvent::Delivery(_) => delivered += 1,
            }
        }
        let m = net.metrics();
        prop_assert_eq!(m.timers_set.get(), set);
        prop_assert_eq!(m.timers_cancelled.get(), cancelled);
        prop_assert_eq!(m.timers_fired.get(), fired);
        prop_assert!(fired + cancelled <= set, "rest suppressed by dead owners");
        prop_assert_eq!(net.pending_timers(), 0);
        prop_assert_eq!(net.in_flight(), 0);
        prop_assert_eq!(
            m.messages_delivered.get() + m.messages_dropped.get(),
            m.messages_sent.get()
        );
        prop_assert_eq!(m.messages_delivered.get(), delivered);
    }

    /// Latency samples respect each model's support.
    #[test]
    fn latency_support(seed in any::<u64>(), lo in 0u64..50, span in 0u64..50) {
        let mut rng = SimRng::new(seed);
        let hi = lo + span;
        let m = LatencyModel::uniform(lo, hi);
        for _ in 0..32 {
            let t = m.sample(&mut rng).ticks();
            prop_assert!(t >= lo && t <= hi);
        }
    }

    /// SimTime arithmetic: (t + d) - t == d.
    #[test]
    fn time_roundtrip(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 2) {
        let t0 = SimTime::from_ticks(t);
        let dur = SimDuration::from_ticks(d);
        prop_assert_eq!((t0 + dur) - t0, dur);
    }
}
