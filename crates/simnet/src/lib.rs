//! # hyperdex-simnet
//!
//! A deterministic discrete-event network simulation substrate.
//!
//! The evaluation in *Keyword Search in DHT-based Peer-to-Peer Networks*
//! (Joung, Fang & Yang, ICDCS 2005) is simulation-based: it counts the
//! number of nodes contacted and messages exchanged by the index scheme.
//! This crate provides the machinery those measurements rest on:
//!
//! * [`rng`] — a seeded, dependency-free PRNG (xoshiro256++) so every
//!   experiment is bit-reproducible from a `u64` seed.
//! * [`time`] — virtual simulation time ([`SimTime`], [`SimDuration`]).
//! * [`event`] — a deterministic event queue with stable FIFO tie-breaking.
//! * [`latency`] — pluggable link-latency models.
//! * [`net`] — an in-memory message-passing network between endpoints with
//!   per-message accounting.
//! * [`fault`] — crash/recovery schedules and probabilistic message loss.
//! * [`churn`] — seeded membership-change schedules (joins, graceful
//!   leaves, crashes) for the index handoff and repair experiments.
//! * [`metrics`] — counters and histograms used by the experiment harness.
//!
//! # Example
//!
//! ```
//! use hyperdex_simnet::{net::Network, latency::LatencyModel};
//!
//! let mut net: Network<&'static str> = Network::new(LatencyModel::constant(1), 42);
//! let a = net.add_endpoint();
//! let b = net.add_endpoint();
//! net.send(a, b, "hello");
//! let delivered = net.run_to_quiescence(|_now, _ep, msg| assert_eq!(msg, "hello"));
//! assert_eq!(delivered, 1);
//! assert_eq!(net.metrics().messages_sent.get(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod event;
pub mod fault;
pub mod latency;
pub mod metrics;
pub mod net;
pub mod rng;
pub mod time;
pub mod trace;

pub use churn::{ChurnConfig, ChurnEvent, ChurnKind, ChurnPlan};
pub use event::EventQueue;
pub use fault::FaultPlan;
pub use latency::LatencyModel;
pub use metrics::{Counter, Histogram, NetMetrics};
pub use net::{EndpointId, Network};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
