//! An in-memory message-passing network between simulated endpoints.
//!
//! [`Network`] owns the event queue, the latency model, fault injection,
//! and message accounting. Higher layers (the DHT, the keyword index)
//! register endpoints, send typed messages, and drain deliveries either
//! one at a time ([`Network::step`]) or until quiescence.
//!
//! Endpoints may also schedule **timers** ([`Network::set_timer`]): a
//! local event delivered back to the owning endpoint at a virtual
//! deadline, the primitive that lets protocols detect lost messages and
//! crashed peers. Timer-aware protocols drive the network with
//! [`Network::step_event`], which interleaves deliveries and timer
//! firings in global time order.

use std::collections::HashSet;

use crate::event::EventQueue;
use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use crate::metrics::NetMetrics;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent, TraceKind};

/// Identifies an endpoint (a simulated process) within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(u64);

impl EndpointId {
    /// Creates an endpoint id from its raw index.
    ///
    /// Normally ids come from [`Network::add_endpoint`]; this constructor
    /// exists for fault plans and tests that name endpoints directly.
    pub const fn from_raw(raw: u64) -> Self {
        EndpointId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for EndpointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight<M> {
    from: EndpointId,
    to: EndpointId,
    payload: M,
}

/// Anything the event queue can hold: a message or a pending timer.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Queued<M> {
    Message(InFlight<M>),
    Timer {
        owner: EndpointId,
        token: u64,
        id: u64,
    },
}

/// Handle to a pending timer, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

impl TimerId {
    /// The raw timer sequence number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// A timer that fired at its owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerFired {
    /// Firing instant.
    pub at: SimTime,
    /// The endpoint that set the timer.
    pub owner: EndpointId,
    /// The caller-chosen token passed to [`Network::set_timer`].
    pub token: u64,
    /// The timer's handle.
    pub id: TimerId,
}

/// One event as seen by [`Network::step_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent<M> {
    /// A message arrived at a live endpoint.
    Delivery(Delivery<M>),
    /// A timer fired at its live owner.
    Timer(TimerFired),
}

/// A delivered message, as returned by [`Network::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Delivery instant.
    pub at: SimTime,
    /// Sender endpoint.
    pub from: EndpointId,
    /// Receiving endpoint.
    pub to: EndpointId,
    /// The message payload.
    pub payload: M,
}

/// A deterministic simulated network carrying messages of type `M`.
///
/// # Example
///
/// ```
/// use hyperdex_simnet::{net::Network, latency::LatencyModel};
///
/// let mut net: Network<u32> = Network::new(LatencyModel::constant(2), 1);
/// let a = net.add_endpoint();
/// let b = net.add_endpoint();
/// net.send(a, b, 7);
/// let d = net.step().expect("one message in flight");
/// assert_eq!((d.from, d.to, d.payload), (a, b, 7));
/// assert_eq!(d.at.ticks(), 2);
/// ```
#[derive(Debug)]
pub struct Network<M> {
    queue: EventQueue<Queued<M>>,
    latency: LatencyModel,
    faults: FaultPlan,
    rng: SimRng,
    metrics: NetMetrics,
    endpoints: u64,
    trace: Trace,
    next_timer: u64,
    /// Timers scheduled but not yet fired or cancelled.
    live_timers: HashSet<u64>,
    /// Timers cancelled while still in the queue.
    cancelled_timers: HashSet<u64>,
}

impl<M> Network<M> {
    /// Creates a network with the given latency model and RNG seed.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        Network {
            queue: EventQueue::new(),
            latency,
            faults: FaultPlan::new(),
            rng: SimRng::new(seed),
            metrics: NetMetrics::new(),
            endpoints: 0,
            trace: Trace::new(0),
            next_timer: 0,
            live_timers: HashSet::new(),
            cancelled_timers: HashSet::new(),
        }
    }

    /// Enables event tracing, keeping the `capacity` most recent
    /// events (0 disables). See [`crate::trace`].
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Trace::new(capacity);
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Registers a new endpoint and returns its id.
    pub fn add_endpoint(&mut self) -> EndpointId {
        let id = EndpointId(self.endpoints);
        self.endpoints += 1;
        id
    }

    /// Registers `n` endpoints at once, returning their ids.
    pub fn add_endpoints(&mut self, n: usize) -> Vec<EndpointId> {
        (0..n).map(|_| self.add_endpoint()).collect()
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> u64 {
        self.endpoints
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Due time of the next queued event (message or timer), if any.
    ///
    /// Lets drivers advance the network only up to a wall-clock
    /// boundary: process events while `next_due() <= until`, then stop
    /// with later events still queued.
    pub fn next_due(&self) -> Option<SimTime> {
        self.queue.peek_due()
    }

    /// Message accounting so far.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Mutable metrics access, for protocol layers that account their
    /// recovery actions (retries, timeouts, re-delegations) alongside
    /// the network's own counters.
    pub fn metrics_mut(&mut self) -> &mut NetMetrics {
        &mut self.metrics
    }

    /// Resets message accounting (virtual time is unaffected).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Mutable access to the fault plan.
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Read access to the fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Whether `ep` is currently alive under the fault plan.
    pub fn is_up(&self, ep: EndpointId) -> bool {
        self.faults.is_up(ep, self.now())
    }

    /// Sends `payload` from `from` to `to`.
    ///
    /// The message is queued with a latency drawn from the model. It may
    /// later be dropped by fault injection or a dead destination; the send
    /// itself always succeeds (fire-and-forget, like UDP).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint id was never registered.
    pub fn send(&mut self, from: EndpointId, to: EndpointId, payload: M) {
        self.send_sized(from, to, payload, 0);
    }

    /// Like [`Network::send`] but also accounts `bytes` of payload size.
    pub fn send_sized(&mut self, from: EndpointId, to: EndpointId, payload: M, bytes: u64) {
        assert!(from.0 < self.endpoints, "unknown sender {from}");
        assert!(to.0 < self.endpoints, "unknown destination {to}");
        self.metrics.messages_sent.incr();
        self.metrics.bytes_sent.add(bytes);
        self.trace.record(TraceEvent {
            at: self.now(),
            kind: TraceKind::Sent,
            from,
            to,
        });
        // A dead sender cannot emit; the message silently vanishes.
        if !self.faults.is_up(from, self.now()) || self.faults.should_drop(&mut self.rng) {
            self.metrics.messages_dropped.incr();
            self.trace.record(TraceEvent {
                at: self.now(),
                kind: TraceKind::Dropped,
                from,
                to,
            });
            return;
        }
        let delay = self.latency.sample(&mut self.rng);
        self.queue
            .schedule_after(delay, Queued::Message(InFlight { from, to, payload }));
    }

    /// Schedules a timer that fires at `owner` after `after`, returning
    /// a handle for [`Network::cancel_timer`].
    ///
    /// The `token` is an opaque caller-chosen value handed back in the
    /// [`TimerFired`] event, typically identifying the request being
    /// timed. A timer whose owner is down at the deadline is silently
    /// discarded (a crashed process observes nothing).
    ///
    /// # Panics
    ///
    /// Panics if `owner` was never registered.
    pub fn set_timer(&mut self, owner: EndpointId, after: SimDuration, token: u64) -> TimerId {
        assert!(owner.0 < self.endpoints, "unknown timer owner {owner}");
        let id = self.next_timer;
        self.next_timer += 1;
        self.live_timers.insert(id);
        self.metrics.timers_set.incr();
        self.trace.record(TraceEvent {
            at: self.now(),
            kind: TraceKind::TimerSet,
            from: owner,
            to: owner,
        });
        self.queue
            .schedule_after(after, Queued::Timer { owner, token, id });
        TimerId(id)
    }

    /// Cancels a pending timer. Cancelling a timer that already fired
    /// (or was already cancelled) is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        if self.live_timers.remove(&id.0) {
            self.cancelled_timers.insert(id.0);
            self.metrics.timers_cancelled.incr();
        }
    }

    /// Delivers the next event — a message delivery or a timer firing —
    /// in global virtual-time order, advancing the clock.
    ///
    /// Returns `None` when the network is quiescent (no messages in
    /// flight and no live timers pending). Messages whose destination
    /// is down at delivery time are counted as dropped and skipped;
    /// cancelled timers and timers of dead owners are skipped silently.
    pub fn step_event(&mut self) -> Option<NetEvent<M>> {
        while let Some((at, queued)) = self.queue.pop() {
            match queued {
                Queued::Timer { owner, token, id } => {
                    if self.cancelled_timers.remove(&id) {
                        continue;
                    }
                    self.live_timers.remove(&id);
                    if !self.faults.is_up(owner, at) {
                        continue;
                    }
                    self.metrics.timers_fired.incr();
                    self.trace.record(TraceEvent {
                        at,
                        kind: TraceKind::TimerFired,
                        from: owner,
                        to: owner,
                    });
                    return Some(NetEvent::Timer(TimerFired {
                        at,
                        owner,
                        token,
                        id: TimerId(id),
                    }));
                }
                Queued::Message(msg) => {
                    if !self.faults.is_up(msg.to, at) {
                        self.metrics.messages_dropped.incr();
                        self.trace.record(TraceEvent {
                            at,
                            kind: TraceKind::Dropped,
                            from: msg.from,
                            to: msg.to,
                        });
                        continue;
                    }
                    self.metrics.messages_delivered.incr();
                    self.trace.record(TraceEvent {
                        at,
                        kind: TraceKind::Delivered,
                        from: msg.from,
                        to: msg.to,
                    });
                    return Some(NetEvent::Delivery(Delivery {
                        at,
                        from: msg.from,
                        to: msg.to,
                        payload: msg.payload,
                    }));
                }
            }
        }
        None
    }

    /// Delivers the next in-flight message, advancing virtual time.
    ///
    /// Returns `None` when the network is quiescent. Messages whose
    /// destination is down at delivery time are counted as dropped and
    /// skipped, and timer firings are discarded — timer-aware protocols
    /// should drive the network with [`Network::step_event`] instead.
    pub fn step(&mut self) -> Option<Delivery<M>> {
        while let Some(event) = self.step_event() {
            if let NetEvent::Delivery(d) = event {
                return Some(d);
            }
        }
        None
    }

    /// Runs the network until no messages remain, handing each delivery to
    /// `handler`. Returns the number of deliveries.
    ///
    /// The handler may not send further messages (it has no access to the
    /// network); for request/response protocols drive the network manually
    /// with [`Network::step`] in a loop.
    pub fn run_to_quiescence<F>(&mut self, mut handler: F) -> u64
    where
        F: FnMut(SimTime, EndpointId, M),
    {
        let mut delivered = 0;
        while let Some(d) = self.step() {
            handler(d.at, d.to, d.payload);
            delivered += 1;
        }
        delivered
    }

    /// Number of messages currently in flight (excludes pending timers).
    pub fn in_flight(&self) -> usize {
        self.queue.len() - self.live_timers.len() - self.cancelled_timers.len()
    }

    /// Number of timers scheduled but not yet fired or cancelled.
    pub fn pending_timers(&self) -> usize {
        self.live_timers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn net(latency: LatencyModel) -> (Network<u32>, EndpointId, EndpointId) {
        let mut n = Network::new(latency, 42);
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        (n, a, b)
    }

    #[test]
    fn delivers_with_latency() {
        let (mut n, a, b) = net(LatencyModel::constant(3));
        n.send(a, b, 1);
        let d = n.step().unwrap();
        assert_eq!(d.at, SimTime::from_ticks(3));
        assert_eq!(d.payload, 1);
        assert!(n.step().is_none());
    }

    #[test]
    fn fifo_between_same_instant_messages() {
        let (mut n, a, b) = net(LatencyModel::constant(1));
        for i in 0..10 {
            n.send(a, b, i);
        }
        let got: Vec<u32> = std::iter::from_fn(|| n.step()).map(|d| d.payload).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn metrics_account_sends_and_deliveries() {
        let (mut n, a, b) = net(LatencyModel::constant(1));
        n.send_sized(a, b, 1, 100);
        n.send_sized(b, a, 2, 50);
        n.run_to_quiescence(|_, _, _| {});
        let m = n.metrics();
        assert_eq!(m.messages_sent.get(), 2);
        assert_eq!(m.messages_delivered.get(), 2);
        assert_eq!(m.messages_dropped.get(), 0);
        assert_eq!(m.bytes_sent.get(), 150);
    }

    #[test]
    fn dead_destination_drops() {
        let (mut n, a, b) = net(LatencyModel::constant(1));
        n.faults_mut().kill(b);
        n.send(a, b, 1);
        assert!(n.step().is_none());
        assert_eq!(n.metrics().messages_dropped.get(), 1);
    }

    #[test]
    fn dead_sender_drops() {
        let (mut n, a, b) = net(LatencyModel::constant(1));
        n.faults_mut().kill(a);
        n.send(a, b, 1);
        assert!(n.step().is_none());
        assert_eq!(n.metrics().messages_dropped.get(), 1);
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn outage_expires() {
        let (mut n, a, b) = net(LatencyModel::constant(5));
        n.faults_mut()
            .outage(b, SimTime::from_ticks(0), SimTime::from_ticks(3));
        // Delivered at t=5, after the outage ends.
        n.send(a, b, 9);
        let d = n.step().unwrap();
        assert_eq!(d.payload, 9);
    }

    #[test]
    fn recovery_exactly_at_delivery_tick() {
        // Outage is [0,5) and the message arrives at exactly t=5: the
        // half-open interval means the endpoint is back up, so the
        // message must be delivered, not dropped.
        let (mut n, a, b) = net(LatencyModel::constant(5));
        n.faults_mut()
            .outage(b, SimTime::from_ticks(0), SimTime::from_ticks(5));
        n.send(a, b, 9);
        let d = n.step().expect("delivered at the recovery instant");
        assert_eq!(d.at, SimTime::from_ticks(5));
        assert_eq!(n.metrics().messages_dropped.get(), 0);
    }

    #[test]
    fn outage_covering_delivery_tick_drops() {
        // Same shape but the outage is [0,6): at t=5 the endpoint is
        // still down, so the message is dropped.
        let (mut n, a, b) = net(LatencyModel::constant(5));
        n.faults_mut()
            .outage(b, SimTime::from_ticks(0), SimTime::from_ticks(6));
        n.send(a, b, 9);
        assert!(n.step().is_none());
        assert_eq!(n.metrics().messages_dropped.get(), 1);
    }

    #[test]
    fn lossy_link_drops_fraction() {
        let (mut n, a, b) = net(LatencyModel::constant(1));
        n.faults_mut().set_drop_probability(0.5);
        for i in 0..1000 {
            n.send(a, b, i);
        }
        let delivered = n.run_to_quiescence(|_, _, _| {});
        assert!((300..700).contains(&delivered), "delivered {delivered}");
        assert_eq!(
            n.metrics().messages_dropped.get() + delivered,
            1000,
            "every message is either dropped or delivered"
        );
    }

    #[test]
    #[should_panic(expected = "unknown destination")]
    fn unknown_endpoint_panics() {
        let mut n: Network<u32> = Network::new(LatencyModel::default(), 1);
        let a = n.add_endpoint();
        n.send(a, EndpointId::from_raw(5), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut n: Network<u64> = Network::new(LatencyModel::uniform(1, 10), 7);
            let eps = n.add_endpoints(4);
            for i in 0..100u64 {
                n.send(eps[(i % 4) as usize], eps[((i + 1) % 4) as usize], i);
            }
            let mut trace = Vec::new();
            while let Some(d) = n.step() {
                trace.push((d.at, d.from, d.to, d.payload));
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn add_endpoints_bulk() {
        let mut n: Network<()> = Network::new(LatencyModel::default(), 1);
        let eps = n.add_endpoints(5);
        assert_eq!(eps.len(), 5);
        assert_eq!(n.endpoint_count(), 5);
        assert!(eps.windows(2).all(|w| w[0] < w[1]));
    }
}

#[cfg(test)]
mod timer_tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    fn net() -> (Network<u32>, EndpointId, EndpointId) {
        let mut n = Network::new(LatencyModel::constant(2), 42);
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        (n, a, b)
    }

    #[test]
    fn timer_fires_at_deadline() {
        let (mut n, a, _) = net();
        let id = n.set_timer(a, SimDuration::from_ticks(7), 99);
        match n.step_event() {
            Some(NetEvent::Timer(t)) => {
                assert_eq!(t.at, SimTime::from_ticks(7));
                assert_eq!(t.owner, a);
                assert_eq!(t.token, 99);
                assert_eq!(t.id, id);
            }
            other => panic!("expected timer, got {other:?}"),
        }
        assert!(n.step_event().is_none());
        assert_eq!(n.metrics().timers_set.get(), 1);
        assert_eq!(n.metrics().timers_fired.get(), 1);
    }

    #[test]
    fn timers_and_messages_interleave_in_time_order() {
        let (mut n, a, b) = net();
        n.set_timer(a, SimDuration::from_ticks(1), 0); // fires t=1
        n.send(a, b, 5); // delivered t=2
        n.set_timer(a, SimDuration::from_ticks(3), 1); // fires t=3
        let mut order = Vec::new();
        while let Some(ev) = n.step_event() {
            match ev {
                NetEvent::Timer(t) => order.push(("timer", t.at.ticks())),
                NetEvent::Delivery(d) => order.push(("msg", d.at.ticks())),
            }
        }
        assert_eq!(order, vec![("timer", 1), ("msg", 2), ("timer", 3)]);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let (mut n, a, _) = net();
        let id = n.set_timer(a, SimDuration::from_ticks(5), 0);
        n.cancel_timer(id);
        n.cancel_timer(id); // double-cancel is a no-op
        assert!(n.step_event().is_none());
        assert_eq!(n.metrics().timers_cancelled.get(), 1);
        assert_eq!(n.metrics().timers_fired.get(), 0);
        assert_eq!(n.pending_timers(), 0);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let (mut n, a, _) = net();
        let id = n.set_timer(a, SimDuration::from_ticks(1), 0);
        assert!(matches!(n.step_event(), Some(NetEvent::Timer(_))));
        n.cancel_timer(id);
        assert_eq!(n.metrics().timers_cancelled.get(), 0);
    }

    #[test]
    fn dead_owner_timer_is_suppressed() {
        let (mut n, a, _) = net();
        n.set_timer(a, SimDuration::from_ticks(4), 0);
        n.faults_mut()
            .outage(a, SimTime::from_ticks(2), SimTime::from_ticks(10));
        assert!(n.step_event().is_none(), "owner down at deadline");
        assert_eq!(n.metrics().timers_fired.get(), 0);
    }

    #[test]
    fn step_discards_timers_for_legacy_callers() {
        let (mut n, a, b) = net();
        n.set_timer(a, SimDuration::from_ticks(1), 0);
        n.send(a, b, 7);
        let d = n.step().expect("message still delivered");
        assert_eq!(d.payload, 7);
        assert!(n.step().is_none());
    }

    #[test]
    fn in_flight_excludes_timers() {
        let (mut n, a, b) = net();
        let id = n.set_timer(a, SimDuration::from_ticks(5), 0);
        n.set_timer(a, SimDuration::from_ticks(6), 1);
        n.send(a, b, 1);
        assert_eq!(n.in_flight(), 1);
        assert_eq!(n.pending_timers(), 2);
        n.cancel_timer(id);
        assert_eq!(n.in_flight(), 1);
        assert_eq!(n.pending_timers(), 1);
    }

    #[test]
    fn timer_ids_are_unique_and_deterministic() {
        let run = || {
            let (mut n, a, _) = net();
            let ids: Vec<u64> = (0..5)
                .map(|i| n.set_timer(a, SimDuration::from_ticks(i + 1), i).raw())
                .collect();
            ids
        };
        let ids = run();
        assert_eq!(ids, run());
        let unique: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn timer_trace_events() {
        let (mut n, a, _) = net();
        n.enable_tracing(16);
        n.set_timer(a, SimDuration::from_ticks(1), 0);
        n.step_event();
        let kinds: Vec<TraceKind> = n.trace().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![TraceKind::TimerSet, TraceKind::TimerFired]);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::TraceKind;

    #[test]
    fn tracing_records_send_and_delivery() {
        let mut n: Network<u8> = Network::new(LatencyModel::constant(1), 1);
        n.enable_tracing(16);
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.send(a, b, 1);
        n.step();
        let kinds: Vec<TraceKind> = n.trace().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![TraceKind::Sent, TraceKind::Delivered]);
    }

    #[test]
    fn tracing_records_drops() {
        let mut n: Network<u8> = Network::new(LatencyModel::constant(1), 1);
        n.enable_tracing(16);
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.faults_mut().kill(b);
        n.send(a, b, 1);
        assert!(n.step().is_none());
        assert_eq!(n.trace().of_kind(TraceKind::Dropped).count(), 1);
    }

    #[test]
    fn tracing_disabled_by_default() {
        let mut n: Network<u8> = Network::new(LatencyModel::constant(1), 1);
        let a = n.add_endpoint();
        let b = n.add_endpoint();
        n.send(a, b, 1);
        n.step();
        assert!(n.trace().is_empty());
    }
}
