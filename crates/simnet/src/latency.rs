//! Link-latency models.
//!
//! The paper's complexity analysis (§3.5) measures cost in units of
//! message-transmission time, i.e. a constant one-tick latency. Richer
//! models (uniform jitter, long-tailed Pareto) are provided so the
//! simulated-network experiments can check that the scheme's behaviour is
//! insensitive to latency distribution.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A model producing per-message link latencies.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks.
    Constant(u64),
    /// Latency uniform in `[lo, hi]` ticks.
    Uniform {
        /// Inclusive lower bound in ticks.
        lo: u64,
        /// Inclusive upper bound in ticks.
        hi: u64,
    },
    /// Long-tailed latency: `scale / U^(1/shape)` ticks, clamped to `cap`.
    ///
    /// Models occasional slow wide-area links; `shape` around 2.0 gives a
    /// realistic heavy tail.
    Pareto {
        /// Minimum latency in ticks (the distribution's scale).
        scale: u64,
        /// Tail index; larger values make the tail lighter. Must be > 0.
        shape: f64,
        /// Hard upper bound in ticks to keep simulations finite.
        cap: u64,
    },
}

impl LatencyModel {
    /// Convenience constructor for [`LatencyModel::Constant`].
    pub fn constant(ticks: u64) -> Self {
        LatencyModel::Constant(ticks)
    }

    /// Convenience constructor for [`LatencyModel::Uniform`].
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "uniform latency requires lo <= hi");
        LatencyModel::Uniform { lo, hi }
    }

    /// Convenience constructor for [`LatencyModel::Pareto`].
    ///
    /// # Panics
    ///
    /// Panics if `shape <= 0`, `scale == 0`, or `cap < scale`.
    pub fn pareto(scale: u64, shape: f64, cap: u64) -> Self {
        assert!(shape > 0.0, "pareto shape must be positive");
        assert!(scale > 0, "pareto scale must be positive");
        assert!(cap >= scale, "pareto cap must be at least the scale");
        LatencyModel::Pareto { scale, shape, cap }
    }

    /// Samples a latency for one message.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let ticks = match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { lo, hi } => lo + rng.gen_range(hi - lo + 1),
            LatencyModel::Pareto { scale, shape, cap } => {
                let u = rng.gen_f64().max(f64::MIN_POSITIVE);
                let raw = scale as f64 / u.powf(1.0 / shape);
                (raw as u64).min(cap)
            }
        };
        SimDuration::from_ticks(ticks)
    }
}

impl Default for LatencyModel {
    /// One tick per message: the paper's unit-cost model.
    fn default() -> Self {
        LatencyModel::Constant(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::constant(3);
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng).ticks(), 3);
        }
    }

    #[test]
    fn uniform_stays_in_bounds_and_covers() {
        let m = LatencyModel::uniform(2, 5);
        let mut rng = SimRng::new(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let t = m.sample(&mut rng).ticks();
            assert!((2..=5).contains(&t));
            seen[t as usize] = true;
        }
        assert!(seen[2] && seen[3] && seen[4] && seen[5]);
    }

    #[test]
    fn uniform_degenerate_single_point() {
        let m = LatencyModel::uniform(4, 4);
        let mut rng = SimRng::new(3);
        assert_eq!(m.sample(&mut rng).ticks(), 4);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn uniform_inverted_panics() {
        LatencyModel::uniform(5, 2);
    }

    #[test]
    fn pareto_bounded_by_scale_and_cap() {
        let m = LatencyModel::pareto(10, 2.0, 500);
        let mut rng = SimRng::new(4);
        for _ in 0..2000 {
            let t = m.sample(&mut rng).ticks();
            assert!((10..=500).contains(&t), "latency {t}");
        }
    }

    #[test]
    fn pareto_has_tail() {
        let m = LatencyModel::pareto(10, 1.2, 10_000);
        let mut rng = SimRng::new(5);
        let slow = (0..5000)
            .filter(|_| m.sample(&mut rng).ticks() > 100)
            .count();
        assert!(slow > 0, "expected at least one slow sample");
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn pareto_bad_shape_panics() {
        LatencyModel::pareto(1, 0.0, 10);
    }

    #[test]
    fn default_is_unit_cost() {
        assert_eq!(LatencyModel::default(), LatencyModel::Constant(1));
    }
}
