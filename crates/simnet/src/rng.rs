//! Seeded, dependency-free pseudo-random number generation.
//!
//! Experiments must be bit-reproducible from a single `u64` seed, so the
//! simulator carries its own generator instead of depending on `rand`
//! (whose output may change across versions). The generator is
//! xoshiro256++ seeded through SplitMix64, the initialization recommended
//! by the xoshiro authors.

/// A deterministic pseudo-random number generator (xoshiro256++).
///
/// Not cryptographically secure; intended purely for reproducible
/// simulation. Two instances created with the same seed produce identical
/// streams on every platform.
///
/// # Example
///
/// ```
/// use hyperdex_simnet::rng::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// Advances a SplitMix64 state and returns the next output.
///
/// Used to expand a single `u64` seed into the four xoshiro words and to
/// derive independent child seeds in [`SimRng::fork`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // An all-zero state is the one degenerate case for xoshiro; the
        // SplitMix64 expansion cannot produce it, but guard regardless.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derives an independent child generator.
    ///
    /// Forking lets one master seed drive many components (per-node RNGs,
    /// workload generation, latency sampling) without their streams
    /// overlapping.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `[0, bound)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-and-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_index(items.len())])
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir sampling).
    ///
    /// Returns fewer than `k` indices when `n < k`. The returned order is
    /// deterministic for a given state but not sorted.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.gen_index(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }

    /// Samples from a geometric-like distribution: returns the number of
    /// consecutive successes with probability `p` each, capped at `max`.
    pub fn geometric(&mut self, p: f64, max: u32) -> u32 {
        let mut count = 0;
        while count < max && self.chance(p) {
            count += 1;
        }
        count
    }

    /// Samples a standard normal via the Box–Muller transform.
    pub fn gen_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.gen_f64().max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let a_vals: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let b_vals: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(a_vals, b_vals);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SimRng::new(5);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SimRng::new(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_zero_panics() {
        SimRng::new(0).gen_range(0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(17);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_f64_mean_near_half() {
        let mut rng = SimRng::new(23);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut rng = SimRng::new(31);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(41);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SimRng::new(1);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SimRng::new(77);
        let sample = rng.sample_indices(50, 10);
        assert_eq!(sample.len(), 10);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "indices must be distinct");
        assert!(sample.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_small_n_returns_all() {
        let mut rng = SimRng::new(7);
        let mut sample = rng.sample_indices(3, 10);
        sample.sort_unstable();
        assert_eq!(sample, vec![0, 1, 2]);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(99);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn geometric_capped() {
        let mut rng = SimRng::new(13);
        for _ in 0..100 {
            assert!(rng.geometric(0.9, 5) <= 5);
        }
        assert_eq!(rng.geometric(0.0, 5), 0);
    }
}
