//! A deterministic discrete-event queue.
//!
//! Events are delivered in non-decreasing time order; events scheduled for
//! the same instant are delivered in the order they were scheduled (stable
//! FIFO tie-breaking), which keeps whole-simulation runs reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An entry in the queue: payload plus its due time and a sequence number
/// used for stable tie-breaking.
#[derive(Debug)]
struct Scheduled<E> {
    due: SimTime,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (and, within a tick, the first-scheduled) event.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

/// A discrete-event queue advancing a virtual clock.
///
/// # Example
///
/// ```
/// use hyperdex_simnet::event::EventQueue;
/// use hyperdex_simnet::time::SimDuration;
///
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_ticks(5), "later");
/// q.schedule_after(SimDuration::from_ticks(1), "sooner");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("sooner"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("later"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// Returns the current virtual time (the due time of the most recently
    /// popped event, or zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at the absolute instant `due`.
    ///
    /// # Panics
    ///
    /// Panics if `due` is earlier than the current time: delivering into
    /// the past would violate causality.
    pub fn schedule_at(&mut self, due: SimTime, payload: E) {
        assert!(
            due >= self.now,
            "cannot schedule an event in the past ({due} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { due, seq, payload });
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pops the next event, advancing the clock to its due time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.due >= self.now);
        self.now = entry.due;
        Some((entry.due, entry.payload))
    }

    /// Peeks at the due time of the next event without popping it.
    pub fn peek_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.due)
    }

    /// Drops every pending event, leaving the clock unchanged.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(n: u64) -> SimTime {
        SimTime::from_ticks(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(tick(30), "c");
        q.schedule_at(tick(10), "a");
        q.schedule_at(tick(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(tick(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(tick(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (due, _) = q.pop().unwrap();
        assert_eq!(due, tick(42));
        assert_eq!(q.now(), tick(42));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(tick(10), "first");
        q.pop();
        q.schedule_after(SimDuration::from_ticks(5), "second");
        assert_eq!(q.peek_due(), Some(tick(15)));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(tick(10), ());
        q.pop();
        q.schedule_at(tick(5), ());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.schedule_at(tick(1), ());
        q.schedule_at(tick(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(tick(1), 1);
        q.schedule_at(tick(3), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule_at(tick(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
