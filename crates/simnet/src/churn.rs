//! Membership churn schedules: seeded join/leave/crash plans.
//!
//! Where [`crate::fault::FaultPlan`] describes *availability* (an endpoint
//! that is temporarily or permanently silent), a [`ChurnPlan`] describes
//! *membership*: nodes that arrive and depart, changing who owns which
//! slice of the key space. The paper's one-node insert/delete claim
//! (§3.2) only matters if the index survives such movement; the churn
//! experiments drive the handoff and repair protocol through this module.
//!
//! A plan is a time-ordered list of [`ChurnEvent`]s over raw node ids
//! (`u64`). The simnet layer knows nothing about rings or DHT node ids;
//! higher layers map the raw ids onto whatever identity space they use.

use crate::rng::SimRng;
use crate::time::SimTime;

/// What happens to a node at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// A new node joins the overlay and must take over its key range.
    Join,
    /// A node announces departure and hands its index entries off first.
    GracefulLeave,
    /// A node vanishes without warning; its primary postings are lost
    /// until replica repair restores them.
    Crash,
}

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the change occurs.
    pub at: SimTime,
    /// The raw node id affected.
    pub node: u64,
    /// The kind of change.
    pub kind: ChurnKind,
}

/// Parameters for [`ChurnPlan::generate`].
///
/// Rates are expressed per 1000 ticks of virtual time so that typical
/// experiment horizons (a few thousand ticks) yield single-digit to
/// double-digit event counts at rate 1–10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// End of the generation window; events land in `(0, horizon)`.
    pub horizon: SimTime,
    /// Expected membership events per 1000 ticks. `0.0` yields an empty
    /// plan (a frozen membership).
    pub events_per_kilotick: f64,
    /// Probability that an event is a join (vs. a departure).
    pub join_fraction: f64,
    /// Probability that a departure is graceful (vs. a crash).
    pub graceful_fraction: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            horizon: SimTime::from_ticks(4000),
            events_per_kilotick: 2.0,
            join_fraction: 0.5,
            graceful_fraction: 0.5,
        }
    }
}

impl ChurnConfig {
    /// Validates the configuration, returning a human-readable reason on
    /// failure.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.horizon == SimTime::ZERO {
            return Err("horizon must be positive");
        }
        if self.events_per_kilotick.is_nan()
            || self.events_per_kilotick < 0.0
            || !self.events_per_kilotick.is_finite()
        {
            return Err("events_per_kilotick must be finite and non-negative");
        }
        if !(0.0..=1.0).contains(&self.join_fraction) {
            return Err("join_fraction must be in [0,1]");
        }
        if !(0.0..=1.0).contains(&self.graceful_fraction) {
            return Err("graceful_fraction must be in [0,1]");
        }
        Ok(())
    }
}

/// A time-ordered schedule of membership changes.
///
/// Events may be added manually ([`ChurnPlan::join_at`] and friends) or
/// drawn from seeded distributions ([`ChurnPlan::generate`]). Iteration
/// order is by time, ties broken by insertion order — the same stable
/// discipline as the event queue.
///
/// # Example
///
/// ```
/// use hyperdex_simnet::churn::{ChurnKind, ChurnPlan};
/// use hyperdex_simnet::time::SimTime;
///
/// let mut plan = ChurnPlan::new();
/// plan.crash_at(SimTime::from_ticks(50), 3);
/// plan.join_at(SimTime::from_ticks(10), 7);
/// let order: Vec<u64> = plan.events().iter().map(|e| e.node).collect();
/// assert_eq!(order, vec![7, 3]);
/// assert_eq!(plan.events()[1].kind, ChurnKind::Crash);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// Creates an empty plan (frozen membership).
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, at: SimTime, node: u64, kind: ChurnKind) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, ChurnEvent { at, node, kind });
    }

    /// Schedules `node` to join at `at`.
    pub fn join_at(&mut self, at: SimTime, node: u64) {
        self.push(at, node, ChurnKind::Join);
    }

    /// Schedules `node` to leave gracefully (handing off its entries) at
    /// `at`.
    pub fn leave_at(&mut self, at: SimTime, node: u64) {
        self.push(at, node, ChurnKind::GracefulLeave);
    }

    /// Schedules `node` to crash (no handoff) at `at`.
    pub fn crash_at(&mut self, at: SimTime, node: u64) {
        self.push(at, node, ChurnKind::Crash);
    }

    /// The scheduled events in time order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing (static membership).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draws a plan from seeded distributions.
    ///
    /// Event instants are uniform over `(0, horizon)`; each event is a
    /// join with probability `join_fraction`, otherwise a departure,
    /// graceful with probability `graceful_fraction`. The generator
    /// tracks the live set so departures always target a currently live
    /// node (never the last one — an empty overlay has no owner for any
    /// key) and joins always introduce a fresh id above every initial
    /// member.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ChurnConfig::validate`] or
    /// `initial_members` is empty.
    pub fn generate(cfg: &ChurnConfig, initial_members: &[u64], seed: u64) -> Self {
        cfg.validate().expect("invalid churn config");
        assert!(
            !initial_members.is_empty(),
            "need at least one initial member"
        );
        let mut rng = SimRng::new(seed ^ 0xC0FF_EE00_C4A8_0001);
        let horizon = cfg.horizon.ticks();
        let expected = cfg.events_per_kilotick * horizon as f64 / 1000.0;
        // Deterministic count: round the expectation rather than sampling
        // a Poisson, so churn rate maps 1:1 onto event count.
        let count = expected.round() as usize;

        let mut times: Vec<u64> = (0..count)
            .map(|_| 1 + rng.gen_range(horizon.saturating_sub(1).max(1)))
            .collect();
        times.sort_unstable();

        let mut live: Vec<u64> = initial_members.to_vec();
        live.sort_unstable();
        live.dedup();
        let mut next_fresh = live.iter().copied().max().unwrap_or(0) + 1;

        let mut plan = ChurnPlan::new();
        for t in times {
            let at = SimTime::from_ticks(t);
            if rng.chance(cfg.join_fraction) || live.len() <= 1 {
                let node = next_fresh;
                next_fresh += 1;
                live.push(node);
                plan.join_at(at, node);
            } else {
                let idx = rng.gen_index(live.len());
                let node = live.swap_remove(idx);
                if rng.chance(cfg.graceful_fraction) {
                    plan.leave_at(at, node);
                } else {
                    plan.crash_at(at, node);
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_ticks(n)
    }

    #[test]
    fn manual_events_sorted_by_time() {
        let mut plan = ChurnPlan::new();
        plan.crash_at(t(30), 1);
        plan.join_at(t(10), 2);
        plan.leave_at(t(20), 3);
        let order: Vec<(u64, u64)> = plan
            .events()
            .iter()
            .map(|e| (e.at.ticks(), e.node))
            .collect();
        assert_eq!(order, vec![(10, 2), (20, 3), (30, 1)]);
    }

    #[test]
    fn same_instant_preserves_insertion_order() {
        let mut plan = ChurnPlan::new();
        plan.join_at(t(5), 1);
        plan.join_at(t(5), 2);
        plan.join_at(t(5), 3);
        let order: Vec<u64> = plan.events().iter().map(|e| e.node).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn generate_is_deterministic() {
        let cfg = ChurnConfig::default();
        let members: Vec<u64> = (0..16).collect();
        let a = ChurnPlan::generate(&cfg, &members, 42);
        let b = ChurnPlan::generate(&cfg, &members, 42);
        assert_eq!(a, b);
        let c = ChurnPlan::generate(&cfg, &members, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generate_rate_zero_is_empty() {
        let cfg = ChurnConfig {
            events_per_kilotick: 0.0,
            ..ChurnConfig::default()
        };
        let plan = ChurnPlan::generate(&cfg, &[1, 2, 3], 7);
        assert!(plan.is_empty());
    }

    #[test]
    fn generate_count_tracks_rate() {
        let cfg = ChurnConfig {
            horizon: t(4000),
            events_per_kilotick: 3.0,
            ..ChurnConfig::default()
        };
        let plan = ChurnPlan::generate(&cfg, &[1, 2, 3, 4], 5);
        assert_eq!(plan.len(), 12, "3 per kilotick over 4000 ticks");
    }

    #[test]
    fn generate_departures_target_live_nodes() {
        let cfg = ChurnConfig {
            horizon: t(10_000),
            events_per_kilotick: 5.0,
            join_fraction: 0.3,
            graceful_fraction: 0.5,
        };
        let initial: Vec<u64> = (0..8).collect();
        let plan = ChurnPlan::generate(&cfg, &initial, 99);
        let mut live: Vec<u64> = initial.clone();
        for ev in plan.events() {
            match ev.kind {
                ChurnKind::Join => {
                    assert!(!live.contains(&ev.node), "join of a live node");
                    live.push(ev.node);
                }
                ChurnKind::GracefulLeave | ChurnKind::Crash => {
                    let pos = live
                        .iter()
                        .position(|&n| n == ev.node)
                        .expect("departure of a dead node");
                    live.remove(pos);
                    assert!(!live.is_empty(), "plan emptied the overlay");
                }
            }
        }
    }

    #[test]
    fn generate_joins_use_fresh_ids() {
        let cfg = ChurnConfig {
            join_fraction: 1.0,
            ..ChurnConfig::default()
        };
        let plan = ChurnPlan::generate(&cfg, &[10, 20], 1);
        let ids: Vec<u64> = plan.events().iter().map(|e| e.node).collect();
        assert!(
            ids.iter().all(|&n| n > 20),
            "fresh ids above initial members"
        );
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "fresh ids are distinct");
    }

    #[test]
    fn generate_events_within_horizon() {
        let cfg = ChurnConfig {
            horizon: t(500),
            events_per_kilotick: 20.0,
            ..ChurnConfig::default()
        };
        let plan = ChurnPlan::generate(&cfg, &[1, 2], 3);
        assert!(plan
            .events()
            .iter()
            .all(|e| e.at > SimTime::ZERO && e.at < t(500)));
    }

    #[test]
    #[should_panic(expected = "invalid churn config")]
    fn generate_rejects_bad_config() {
        let cfg = ChurnConfig {
            join_fraction: 1.5,
            ..ChurnConfig::default()
        };
        ChurnPlan::generate(&cfg, &[1], 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn generate_rejects_empty_membership() {
        ChurnPlan::generate(&ChurnConfig::default(), &[], 0);
    }

    #[test]
    fn config_validation() {
        assert!(ChurnConfig::default().validate().is_ok());
        let bad = ChurnConfig {
            events_per_kilotick: f64::NAN,
            ..ChurnConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = ChurnConfig {
            horizon: SimTime::ZERO,
            ..ChurnConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = ChurnConfig {
            graceful_fraction: -0.1,
            ..ChurnConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
