//! Structured event tracing for simulations.
//!
//! A [`Trace`] is a bounded ring buffer of network events (sends,
//! deliveries, drops) that a [`crate::net::Network`] records when
//! tracing is enabled. Tests assert on traces instead of sprinkling
//! `println!`; experiment debugging replays them after the fact.

use std::collections::VecDeque;
use std::fmt;

use crate::net::EndpointId;
use crate::time::SimTime;

/// What happened to one message or timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The message was handed to the network.
    Sent,
    /// The message reached a live destination.
    Delivered,
    /// The message was lost (dead sender/receiver or link loss).
    Dropped,
    /// A timer was scheduled (`from == to == owner`).
    TimerSet,
    /// A timer fired at its live owner (`from == to == owner`).
    TimerFired,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Sent => "sent",
            TraceKind::Delivered => "delivered",
            TraceKind::Dropped => "dropped",
            TraceKind::TimerSet => "timer-set",
            TraceKind::TimerFired => "timer-fired",
        };
        f.write_str(s)
    }
}

/// One traced network event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened (virtual time).
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Sending endpoint.
    pub from: EndpointId,
    /// Destination endpoint.
    pub to: EndpointId,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} -> {}",
            self.at, self.kind, self.from, self.to
        )
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// # Example
///
/// ```
/// use hyperdex_simnet::trace::{Trace, TraceEvent, TraceKind};
/// use hyperdex_simnet::net::EndpointId;
/// use hyperdex_simnet::time::SimTime;
///
/// let mut trace = Trace::new(2);
/// for i in 0..3 {
///     trace.record(TraceEvent {
///         at: SimTime::from_ticks(i),
///         kind: TraceKind::Sent,
///         from: EndpointId::from_raw(0),
///         to: EndpointId::from_raw(1),
///     });
/// }
/// // Bounded: only the last two events survive.
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.iter().next().unwrap().at, SimTime::from_ticks(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    recorded: u64,
}

impl Trace {
    /// Creates a trace keeping at most `capacity` recent events
    /// (0 disables recording).
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            recorded: 0,
        }
    }

    /// Records an event, evicting the oldest if full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.recorded += 1;
    }

    /// Events currently buffered (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Buffered events of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Clears the buffer (the `recorded` total is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_ticks(t),
            kind,
            from: EndpointId::from_raw(0),
            to: EndpointId::from_raw(1),
        }
    }

    #[test]
    fn bounded_eviction() {
        let mut trace = Trace::new(3);
        for i in 0..5 {
            trace.record(ev(i, TraceKind::Sent));
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.recorded(), 5);
        let first = trace.iter().next().unwrap();
        assert_eq!(first.at, SimTime::from_ticks(2), "oldest evicted");
    }

    #[test]
    fn zero_capacity_disables() {
        let mut trace = Trace::new(0);
        trace.record(ev(1, TraceKind::Sent));
        assert!(trace.is_empty());
        assert_eq!(trace.recorded(), 0);
    }

    #[test]
    fn filter_by_kind() {
        let mut trace = Trace::new(10);
        trace.record(ev(1, TraceKind::Sent));
        trace.record(ev(2, TraceKind::Delivered));
        trace.record(ev(3, TraceKind::Dropped));
        trace.record(ev(4, TraceKind::Delivered));
        assert_eq!(trace.of_kind(TraceKind::Delivered).count(), 2);
        assert_eq!(trace.of_kind(TraceKind::Dropped).count(), 1);
    }

    #[test]
    fn clear_keeps_total() {
        let mut trace = Trace::new(4);
        trace.record(ev(1, TraceKind::Sent));
        trace.clear();
        assert!(trace.is_empty());
        assert_eq!(trace.recorded(), 1);
    }

    #[test]
    fn display_formats() {
        let e = ev(7, TraceKind::Dropped);
        assert_eq!(e.to_string(), "[t=7] dropped ep0 -> ep1");
    }
}
