//! Fault injection: endpoint crash/recovery schedules and message loss.
//!
//! §3.4 of the paper argues that the hypercube scheme tolerates node
//! failures because a keyword is spread over many index nodes. The
//! fault-tolerance experiments drive that claim through this module.

use std::collections::BTreeMap;

use crate::net::EndpointId;
use crate::rng::SimRng;
use crate::time::SimTime;

/// A schedule of endpoint outages plus an optional uniform message-drop
/// probability.
///
/// Outages are half-open intervals `[from, until)` during which the
/// endpoint neither receives nor emits messages. Multiple outages for
/// one endpoint may overlap or nest arbitrarily; the endpoint is down
/// whenever *any* scheduled interval covers the instant (interval
/// union, not last-transition-wins — overlapping windows used to
/// truncate each other).
///
/// # Example
///
/// ```
/// use hyperdex_simnet::fault::FaultPlan;
/// use hyperdex_simnet::net::EndpointId;
/// use hyperdex_simnet::time::SimTime;
///
/// let ep = EndpointId::from_raw(3);
/// let mut plan = FaultPlan::new();
/// plan.outage(ep, SimTime::from_ticks(10), SimTime::from_ticks(20));
/// assert!(plan.is_up(ep, SimTime::from_ticks(5)));
/// assert!(!plan.is_up(ep, SimTime::from_ticks(15)));
/// assert!(plan.is_up(ep, SimTime::from_ticks(20)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    // endpoint -> outage intervals `[from, until)`, in insertion order.
    outages: BTreeMap<EndpointId, Vec<(SimTime, SimTime)>>,
    drop_probability: f64,
    permanently_down: Vec<EndpointId>,
}

impl FaultPlan {
    /// Creates an empty plan: every endpoint up, no message loss.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an outage for `ep` over `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until`.
    pub fn outage(&mut self, ep: EndpointId, from: SimTime, until: SimTime) {
        assert!(from < until, "outage interval must be non-empty");
        self.outages.entry(ep).or_default().push((from, until));
    }

    /// Marks `ep` as crashed forever (never recovers).
    pub fn kill(&mut self, ep: EndpointId) {
        if !self.permanently_down.contains(&ep) {
            self.permanently_down.push(ep);
        }
    }

    /// Sets a uniform probability in `[0, 1]` that any message is lost in
    /// transit.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_drop_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.drop_probability = p;
    }

    /// Whether `ep` is alive at instant `now`.
    pub fn is_up(&self, ep: EndpointId, now: SimTime) -> bool {
        if self.permanently_down.contains(&ep) {
            return false;
        }
        match self.outages.get(&ep) {
            None => true,
            Some(windows) => !windows
                .iter()
                .any(|&(from, until)| from <= now && now < until),
        }
    }

    /// Decides whether a message sent at `now` should be dropped.
    ///
    /// A message is dropped when the link loses it (probabilistic) — the
    /// network separately checks that the *destination* is up on delivery.
    pub fn should_drop(&self, rng: &mut SimRng) -> bool {
        self.drop_probability > 0.0 && rng.chance(self.drop_probability)
    }

    /// Returns the list of endpoints marked permanently down.
    pub fn killed(&self) -> &[EndpointId] {
        &self.permanently_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(n: u64) -> EndpointId {
        EndpointId::from_raw(n)
    }

    fn t(n: u64) -> SimTime {
        SimTime::from_ticks(n)
    }

    #[test]
    fn default_everything_up() {
        let plan = FaultPlan::new();
        assert!(plan.is_up(ep(0), t(0)));
        assert!(plan.is_up(ep(99), t(1_000_000)));
    }

    #[test]
    fn outage_interval_half_open() {
        let mut plan = FaultPlan::new();
        plan.outage(ep(1), t(10), t(20));
        assert!(plan.is_up(ep(1), t(9)));
        assert!(!plan.is_up(ep(1), t(10)));
        assert!(!plan.is_up(ep(1), t(19)));
        assert!(plan.is_up(ep(1), t(20)));
    }

    #[test]
    fn multiple_outages_for_one_endpoint() {
        let mut plan = FaultPlan::new();
        plan.outage(ep(1), t(10), t(20));
        plan.outage(ep(1), t(30), t(40));
        assert!(plan.is_up(ep(1), t(25)));
        assert!(!plan.is_up(ep(1), t(35)));
        assert!(plan.is_up(ep(1), t(45)));
    }

    #[test]
    fn overlapping_outages_union() {
        // [10,30) and [20,40) must union to [10,40): the transition
        // representation used to report `up` at t=35 because the first
        // window's recovery at t=30 was the last transition seen.
        let mut plan = FaultPlan::new();
        plan.outage(ep(1), t(10), t(30));
        plan.outage(ep(1), t(20), t(40));
        assert!(plan.is_up(ep(1), t(9)));
        assert!(!plan.is_up(ep(1), t(15)));
        assert!(!plan.is_up(ep(1), t(25)));
        assert!(!plan.is_up(ep(1), t(30)));
        assert!(!plan.is_up(ep(1), t(35)));
        assert!(plan.is_up(ep(1), t(40)));
    }

    #[test]
    fn nested_outages_union() {
        // [10,50) fully contains [20,30); the inner recovery must not
        // puncture the outer window.
        let mut plan = FaultPlan::new();
        plan.outage(ep(1), t(10), t(50));
        plan.outage(ep(1), t(20), t(30));
        assert!(!plan.is_up(ep(1), t(30)));
        assert!(!plan.is_up(ep(1), t(49)));
        assert!(plan.is_up(ep(1), t(50)));
    }

    #[test]
    fn identical_outages_are_idempotent() {
        let mut plan = FaultPlan::new();
        plan.outage(ep(1), t(10), t(20));
        plan.outage(ep(1), t(10), t(20));
        assert!(!plan.is_up(ep(1), t(15)));
        assert!(plan.is_up(ep(1), t(20)));
    }

    #[test]
    fn touching_outages_cover_boundary() {
        // [10,20) followed by [20,30): down for all of [10,30).
        let mut plan = FaultPlan::new();
        plan.outage(ep(1), t(10), t(20));
        plan.outage(ep(1), t(20), t(30));
        assert!(!plan.is_up(ep(1), t(19)));
        assert!(!plan.is_up(ep(1), t(20)));
        assert!(!plan.is_up(ep(1), t(29)));
        assert!(plan.is_up(ep(1), t(30)));
    }

    #[test]
    fn kill_is_permanent() {
        let mut plan = FaultPlan::new();
        plan.kill(ep(2));
        plan.kill(ep(2)); // idempotent
        assert!(!plan.is_up(ep(2), t(0)));
        assert!(!plan.is_up(ep(2), t(u64::MAX)));
        assert_eq!(plan.killed(), &[ep(2)]);
    }

    #[test]
    fn outage_does_not_affect_other_endpoints() {
        let mut plan = FaultPlan::new();
        plan.outage(ep(1), t(0), t(100));
        assert!(plan.is_up(ep(2), t(50)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_outage_panics() {
        FaultPlan::new().outage(ep(1), t(10), t(10));
    }

    #[test]
    fn drop_probability_zero_never_drops() {
        let plan = FaultPlan::new();
        let mut rng = SimRng::new(1);
        assert!((0..100).all(|_| !plan.should_drop(&mut rng)));
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let mut plan = FaultPlan::new();
        plan.set_drop_probability(1.0);
        let mut rng = SimRng::new(1);
        assert!((0..100).all(|_| plan.should_drop(&mut rng)));
    }

    #[test]
    fn drop_probability_partial() {
        let mut plan = FaultPlan::new();
        plan.set_drop_probability(0.5);
        let mut rng = SimRng::new(2);
        let drops = (0..10_000).filter(|_| plan.should_drop(&mut rng)).count();
        assert!((4_000..6_000).contains(&drops), "drops {drops}");
    }

    #[test]
    #[should_panic(expected = "[0,1]")]
    fn bad_probability_panics() {
        FaultPlan::new().set_drop_probability(1.5);
    }
}
