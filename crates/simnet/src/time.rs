//! Virtual simulation time.
//!
//! Time is measured in abstract integer *ticks*. The paper's cost model
//! counts message transmission time as the unit of latency (§3.5), so one
//! tick conventionally corresponds to one hop of message transmission,
//! though latency models may scale it arbitrarily.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time, in ticks since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (tick zero).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant at the given tick.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the tick count since the epoch.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero
    /// if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of the given tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Returns the tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] for a non-panicking variant.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("simulation duration overflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

impl From<u64> for SimDuration {
    fn from(ticks: u64) -> Self {
        SimDuration(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::from_ticks(10) + SimDuration::from_ticks(5);
        assert_eq!(t.ticks(), 15);
    }

    #[test]
    fn add_assign_advances_in_place() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_ticks(7);
        assert_eq!(t, SimTime::from_ticks(7));
    }

    #[test]
    fn subtraction_yields_duration() {
        let d = SimTime::from_ticks(20) - SimTime::from_ticks(5);
        assert_eq!(d, SimDuration::from_ticks(15));
    }

    #[test]
    #[should_panic(expected = "later SimTime")]
    fn negative_subtraction_panics() {
        let _ = SimTime::from_ticks(5) - SimTime::from_ticks(20);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_ticks(5);
        let late = SimTime::from_ticks(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_ticks(15));
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::ZERO < SimTime::from_ticks(1));
        assert!(SimDuration::from_ticks(2) > SimDuration::from_ticks(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_ticks(3).to_string(), "t=3");
        assert_eq!(SimDuration::from_ticks(4).to_string(), "4 ticks");
    }

    #[test]
    fn duration_saturating_add() {
        let max = SimDuration::from_ticks(u64::MAX);
        assert_eq!(max.saturating_add(SimDuration::from_ticks(1)), max);
    }
}
