//! Counters and histograms for experiment accounting.
//!
//! The paper's figures report counts — messages exchanged, nodes
//! contacted — and distributions (load per node). These small utilities
//! collect both without any external dependency.

use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Message-level accounting for a simulated network.
///
/// The first four counters are maintained by [`crate::net::Network`]
/// itself and obey the conservation law `messages_sent ==
/// messages_delivered + messages_dropped` at quiescence. The timer
/// counters are likewise network-maintained. The recovery counters
/// (`retries`, `timeouts`, `redelegations`, `failovers`) belong to the
/// *protocol* running on top: the network exposes them here so one
/// metrics snapshot tells the whole fault-tolerance story, but only
/// protocol code increments them (via
/// [`crate::net::Network::metrics_mut`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Messages handed to the network by `send`.
    pub messages_sent: Counter,
    /// Messages delivered to a live endpoint.
    pub messages_delivered: Counter,
    /// Messages dropped by fault injection or dead endpoints.
    pub messages_dropped: Counter,
    /// Approximate payload bytes sent (when the caller reports sizes).
    pub bytes_sent: Counter,
    /// Timers scheduled via `set_timer`.
    pub timers_set: Counter,
    /// Timers that fired (reached a live owner uncancelled).
    pub timers_fired: Counter,
    /// Timers cancelled before firing.
    pub timers_cancelled: Counter,
    /// Protocol-level: queries retransmitted after a timeout.
    pub retries: Counter,
    /// Protocol-level: timeouts that exhausted their retry budget.
    pub timeouts: Counter,
    /// Protocol-level: dead subtrees re-delegated around a failed node.
    pub redelegations: Counter,
    /// Protocol-level: searches that failed over to a replica index.
    pub failovers: Counter,
    /// Protocol-level: index-handoff batches delivered and installed.
    pub handoff_batches: Counter,
    /// Protocol-level: index entries (keyword-set postings) moved by
    /// handoff batches.
    pub handoff_entries: Counter,
    /// Protocol-level: anti-entropy repair batches delivered.
    pub repair_batches: Counter,
    /// Protocol-level: index entries restored by replica repair.
    pub repair_entries: Counter,
    /// Protocol-level: `T_SUMMARY` occupancy-digest refreshes sent up a
    /// vertex's prefix anchor chain (after repair completion or a
    /// handoff install). Loss only prolongs safe over-counting.
    pub summary_deltas: Counter,
}

impl NetMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A collection of `f64` observations supporting summary statistics.
///
/// Stores raw observations (experiments here are small enough that exact
/// quantiles beat a sketching structure).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    values: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN observation would poison every
    /// summary statistic.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.sum() / self.values.len() as f64)
        }
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on sorted data, or
    /// `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded at record"));
            self.sorted = true;
        }
        let idx = ((self.values.len() - 1) as f64 * q).round() as usize;
        Some(self.values[idx])
    }

    /// Population standard deviation, or `None` if empty.
    pub fn stddev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        Some(var.sqrt())
    }

    /// Iterates over raw observations in insertion or sorted order
    /// (unspecified which; do not rely on ordering).
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }
}

impl FromIterator<f64> for Histogram {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn net_metrics_reset() {
        let mut m = NetMetrics::new();
        m.messages_sent.add(3);
        m.bytes_sent.add(100);
        m.reset();
        assert_eq!(m, NetMetrics::default());
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h: Histogram = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(h.len(), 4);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert!((h.stddev().unwrap() - 1.118).abs() < 1e-3);
    }

    #[test]
    fn histogram_median() {
        let mut h: Histogram = [5.0, 1.0, 3.0].into_iter().collect();
        assert_eq!(h.quantile(0.5), Some(3.0));
    }

    #[test]
    fn histogram_empty() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.stddev(), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn histogram_rejects_nan() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "[0,1]")]
    fn quantile_out_of_range_panics() {
        let mut h: Histogram = [1.0].into_iter().collect();
        h.quantile(1.5);
    }

    #[test]
    fn record_after_quantile_resorts() {
        let mut h: Histogram = [3.0, 1.0].into_iter().collect();
        assert_eq!(h.quantile(1.0), Some(3.0));
        h.record(10.0);
        assert_eq!(h.quantile(1.0), Some(10.0));
    }
}
