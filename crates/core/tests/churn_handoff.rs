//! Integration: a top-down superset search racing a scheduled index
//! handoff on its own SBT path keeps full recall, deterministically.

use hyperdex_core::churn::StabilizationConfig;
use hyperdex_core::sim_protocol::{FtConfig, ProtocolSim, RecoveryStrategy};
use hyperdex_core::{KeywordSet, ObjectId};
use hyperdex_simnet::churn::ChurnPlan;
use hyperdex_simnet::latency::LatencyModel;
use hyperdex_simnet::time::SimTime;

const SEED: u64 = 0xC0DE;
const MEMBERS: &[u64] = &[11, 22, 33, 44, 55];

const CORPUS: &[(u64, &str)] = &[
    (1, "a"),
    (2, "a b"),
    (3, "a b c"),
    (4, "a c"),
    (5, "b c"),
    (6, "a d e"),
    (7, "x y"),
    (8, "a b d"),
];

fn set(s: &str) -> KeywordSet {
    KeywordSet::parse(s).unwrap()
}

/// Builds the simulation, schedules the owner of the query-path vertex
/// holding object 2 (`{a, b}` ⊇ `{a}`) to leave at tick 5, advances to
/// the leave so the handoff is in flight, and runs the search. Returns
/// a byte-exact transcript of everything observable.
fn run_once() -> String {
    let mut sim = ProtocolSim::new(5, SEED, LatencyModel::constant(1)).unwrap();
    for &(id, kws) in CORPUS {
        sim.insert(ObjectId::from_raw(id), set(kws)).unwrap();
    }

    // The vertex of {a, b} lies in the induced subcube of query {a}:
    // its one-bits are a superset of the query's, so the top-down SBT
    // walk must visit it.
    let root = sim.query_root(&set("a"));
    let target = sim.query_root(&set("a b"));
    assert_eq!(
        target.bits() & root.bits(),
        root.bits(),
        "target must be on the query's SBT path"
    );

    // Find who owns that vertex and schedule their graceful departure.
    let cfg = StabilizationConfig {
        batch_entries: 1, // several batches → a real mid-flight window
        ..StabilizationConfig::default()
    };
    {
        let mut probe = ChurnPlan::default();
        let mut scratch = ProtocolSim::new(5, SEED, LatencyModel::constant(1)).unwrap();
        scratch.enable_churn(&probe, cfg, MEMBERS).unwrap();
        let owner = scratch.churn().unwrap().view_owner(target.bits()).unwrap();
        probe.leave_at(SimTime::from_ticks(5), owner);
        sim.enable_churn(&probe, cfg, MEMBERS).unwrap();
    }

    // Apply the leave; its handoff batches are now in flight and the
    // target vertex is silent.
    sim.run_churn_to(SimTime::from_ticks(5));
    assert!(
        !sim.churn().unwrap().vertex_available(target.bits()),
        "the target vertex should be mid-handoff"
    );

    let out = sim
        .search_fault_tolerant(
            &set("a"),
            usize::MAX - 1,
            FtConfig::new(RecoveryStrategy::ReplicatedFailover),
        )
        .unwrap();

    // Full recall: every object whose keyword set contains `a`.
    let mut ids: Vec<u64> = out.results.iter().map(|r| r.object.raw()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids, vec![1, 2, 3, 4, 6, 8], "recall lost mid-handoff");

    // The search interleaved with (and completed) the handoff.
    let st = sim.churn().unwrap();
    assert!(st.converged(), "search drain should settle churn");
    assert!(st.stats().handoffs_completed > 0);

    format!(
        "ids={ids:?} coverage={:?} stats={:?} consistency={} now={:?}",
        out.coverage,
        st.stats(),
        st.consistency(),
        sim.network().now(),
    )
}

#[test]
fn search_racing_handoff_keeps_full_recall_and_reproduces() {
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "fixed seed must reproduce byte-for-byte");
}
