//! Property-based tests of the search protocol against brute force.
//!
//! Every test builds a random corpus from a small vocabulary (so keyword
//! sets overlap heavily), indexes it, and checks the protocol's results
//! against a straightforward scan of the corpus.

use hyperdex_core::search::{ExecutionMode, SupersetQuery, TraversalOrder};
use hyperdex_core::{HypercubeIndex, KeywordSet, ObjectId};
use proptest::prelude::*;

/// A corpus: object id → keyword set (1..=4 words from a 12-word
/// vocabulary), plus a query of 1..=3 words from the same vocabulary.
fn corpus_and_query() -> impl Strategy<Value = (Vec<Vec<u8>>, Vec<u8>)> {
    let word = 0u8..12;
    (
        prop::collection::vec(prop::collection::vec(word.clone(), 1..=4), 1..40),
        prop::collection::vec(word, 1..=3),
    )
}

fn to_set(words: &[u8]) -> KeywordSet {
    KeywordSet::from_strs(words.iter().map(|w| format!("word{w}"))).unwrap()
}

fn build_index(r: u8, corpus: &[Vec<u8>]) -> (HypercubeIndex, Vec<(ObjectId, KeywordSet)>) {
    let mut index = HypercubeIndex::new(r, 0).unwrap();
    let mut objects = Vec::new();
    for (i, words) in corpus.iter().enumerate() {
        let id = ObjectId::from_raw(i as u64);
        let set = to_set(words);
        index.insert(id, set.clone()).unwrap();
        objects.push((id, set));
    }
    (index, objects)
}

/// Brute-force ground truth: all objects whose keyword set contains the
/// query.
fn brute_force(objects: &[(ObjectId, KeywordSet)], query: &KeywordSet) -> Vec<ObjectId> {
    let mut hits: Vec<ObjectId> = objects
        .iter()
        .filter(|(_, k)| query.describes(k))
        .map(|(id, _)| *id)
        .collect();
    hits.sort_unstable();
    hits
}

fn sorted_objects(results: &[hyperdex_core::RankedObject]) -> Vec<ObjectId> {
    let mut ids: Vec<ObjectId> = results.iter().map(|r| r.object).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    /// Exhaustive superset search returns exactly the describable set
    /// (Lemma 3.1 made executable).
    #[test]
    fn superset_search_is_complete((corpus, qwords) in corpus_and_query(), r in 4u8..10) {
        let (mut index, objects) = build_index(r, &corpus);
        let query = to_set(&qwords);
        let out = index
            .superset_search(&SupersetQuery::new(query.clone()).use_cache(false))
            .unwrap();
        prop_assert!(out.exhausted);
        prop_assert_eq!(sorted_objects(&out.results), brute_force(&objects, &query));
    }

    /// All four protocol variants agree on the exhaustive result set.
    #[test]
    fn variants_agree((corpus, qwords) in corpus_and_query(), r in 4u8..9) {
        let (mut index, _) = build_index(r, &corpus);
        let query = to_set(&qwords);
        let base = SupersetQuery::new(query).use_cache(false);
        let td = index.superset_search(&base.clone()).unwrap();
        let bu = index
            .superset_search(&base.clone().order(TraversalOrder::BottomUp))
            .unwrap();
        let lp = index
            .superset_search(&base.clone().mode(ExecutionMode::LevelParallel))
            .unwrap();
        let lpb = index
            .superset_search(
                &base
                    .order(TraversalOrder::BottomUp)
                    .mode(ExecutionMode::LevelParallel),
            )
            .unwrap();
        let expect = sorted_objects(&td.results);
        prop_assert_eq!(sorted_objects(&bu.results), expect.clone());
        prop_assert_eq!(sorted_objects(&lp.results), expect.clone());
        prop_assert_eq!(sorted_objects(&lpb.results), expect);
    }

    /// Threshold semantics: exactly min(t, |O_K|) results, and results
    /// are always describable by the query.
    #[test]
    fn threshold_respected(
        (corpus, qwords) in corpus_and_query(),
        r in 4u8..10,
        t in 1usize..10,
    ) {
        let (mut index, objects) = build_index(r, &corpus);
        let query = to_set(&qwords);
        let truth = brute_force(&objects, &query);
        let out = index
            .superset_search(&SupersetQuery::new(query.clone()).threshold(t).use_cache(false))
            .unwrap();
        prop_assert_eq!(out.results.len(), t.min(truth.len()));
        for r in &out.results {
            prop_assert!(query.describes(&r.keyword_set));
            prop_assert_eq!(
                r.extra_keywords as usize,
                r.keyword_set.len() - query.len()
            );
        }
    }

    /// Nodes contacted never exceed the induced subcube size (§3.5's
    /// worst case), and a full traversal contacts exactly that many.
    #[test]
    fn nodes_contacted_bounded((corpus, qwords) in corpus_and_query(), r in 4u8..10) {
        let (mut index, _) = build_index(r, &corpus);
        let query = to_set(&qwords);
        let subcube_size = 1u64 << index.vertex_for(&query).zero_count();
        let out = index
            .superset_search(&SupersetQuery::new(query).use_cache(false))
            .unwrap();
        prop_assert_eq!(out.stats.nodes_contacted, subcube_size,
            "exhaustive search visits the whole subcube exactly once");
    }

    /// Pin search equals filtering the brute-force set to exact matches.
    #[test]
    fn pin_matches_brute_force((corpus, qwords) in corpus_and_query(), r in 4u8..10) {
        let (index, objects) = build_index(r, &corpus);
        let query = to_set(&qwords);
        let mut expected: Vec<ObjectId> = objects
            .iter()
            .filter(|(_, k)| *k == query)
            .map(|(id, _)| *id)
            .collect();
        expected.sort_unstable();
        let mut got = index.pin_search(&query).results;
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// A cached repeat of an exhaustive query contacts only the root and
    /// returns identical results.
    #[test]
    fn cache_serves_repeats((corpus, qwords) in corpus_and_query(), r in 4u8..9) {
        let (mut index, _) = build_index(r, &corpus);
        index.set_cache_capacity(1000);
        let query = to_set(&qwords);
        let first = index
            .superset_search(&SupersetQuery::new(query.clone()))
            .unwrap();
        let second = index
            .superset_search(&SupersetQuery::new(query))
            .unwrap();
        prop_assert!(!first.stats.cache_hit);
        prop_assert!(second.stats.cache_hit);
        prop_assert_eq!(second.stats.nodes_contacted, 1);
        prop_assert_eq!(
            sorted_objects(&second.results),
            sorted_objects(&first.results)
        );
    }

    /// Removing every object leaves nothing findable, and each removal
    /// touches exactly one node (the paper's single-lookup delete).
    #[test]
    fn insert_remove_symmetry((corpus, _q) in corpus_and_query(), r in 4u8..10) {
        let (mut index, objects) = build_index(r, &corpus);
        for (id, set) in &objects {
            index.remove(*id, set);
        }
        prop_assert!(index.is_empty());
        for (_, set) in &objects {
            prop_assert!(index.pin_search(set).results.is_empty());
        }
    }

    /// Lemma 3.2's ordering guarantee is about *tree depth* (a lower
    /// bound on extra keywords, exact when hashes don't collide): the
    /// SBT depth of top-down's first result never exceeds the depth of
    /// bottom-up's first result.
    #[test]
    fn order_preference((corpus, qwords) in corpus_and_query(), r in 5u8..9) {
        let (mut index, objects) = build_index(r, &corpus);
        let query = to_set(&qwords);
        if brute_force(&objects, &query).is_empty() {
            return Ok(());
        }
        let root = index.vertex_for(&query);
        let base = SupersetQuery::new(query).use_cache(false).threshold(1);
        let td = index.superset_search(&base.clone()).unwrap();
        let bu = index
            .superset_search(&base.order(TraversalOrder::BottomUp))
            .unwrap();
        let depth_of = |res: &hyperdex_core::RankedObject| {
            index.vertex_for(&res.keyword_set).hamming(root)
        };
        let td_depth = depth_of(&td.results[0]);
        let bu_depth = depth_of(&bu.results[0]);
        prop_assert!(td_depth <= bu_depth,
            "top-down depth ({td_depth}) <= bottom-up depth ({bu_depth})");
        // Depth lower-bounds extra keywords (Lemma 3.2).
        for res in td.results.iter().chain(bu.results.iter()) {
            prop_assert!(res.extra_keywords >= depth_of(res));
        }
    }
}

/// Regression: a threshold-truncated result must never be cached as
/// exhaustive, even when the truncation happens on the final node or
/// level of the traversal.
#[test]
fn truncated_results_never_poison_the_cache() {
    use hyperdex_core::search::ExecutionMode;

    for mode in [ExecutionMode::Sequential, ExecutionMode::LevelParallel] {
        let mut index = HypercubeIndex::new(4, 0).unwrap();
        index.set_cache_capacity(16);
        // Ten objects sharing one keyword set: all matches live at the
        // single root vertex, so any traversal "completes" immediately.
        let k = KeywordSet::from_strs(["only"]).unwrap();
        for i in 0..10 {
            index.insert(ObjectId::from_raw(i), k.clone()).unwrap();
        }
        // First query truncates to 3 — must not be cached as complete.
        let small = index
            .superset_search(&SupersetQuery::new(k.clone()).threshold(3).mode(mode))
            .unwrap();
        assert_eq!(small.results.len(), 3);
        // Second query wants everything; a poisoned cache would return 3.
        let full = index
            .superset_search(&SupersetQuery::new(k.clone()).mode(mode))
            .unwrap();
        assert_eq!(
            full.results.len(),
            10,
            "mode {mode:?} lost matches via cache"
        );
    }
}
