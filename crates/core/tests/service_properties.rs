//! Property-based tests of the DHT-backed service and the hash-mapping
//! invariants the scheme's correctness rests on.

use hyperdex_core::{KeywordHasher, KeywordSearchService, KeywordSet, ObjectId, SupersetQuery};
use proptest::prelude::*;

fn keyword_set() -> impl Strategy<Value = KeywordSet> {
    prop::collection::vec(0u8..20, 1..=5).prop_map(|words| {
        KeywordSet::from_strs(words.iter().map(|w| format!("w{w}"))).expect("non-empty words")
    })
}

proptest! {
    /// F_h is monotone: K ⊆ K' implies F_h(K') contains F_h(K) — the
    /// geometric property every search guarantee rests on.
    #[test]
    fn vertex_mapping_monotone(a in keyword_set(), b in keyword_set(), r in 2u8..16, seed in any::<u64>()) {
        let hasher = KeywordHasher::new(r, seed).expect("valid");
        let union = a.union(&b);
        prop_assert!(hasher.vertex_for(&union).contains(hasher.vertex_for(&a)));
        prop_assert!(hasher.vertex_for(&union).contains(hasher.vertex_for(&b)));
    }

    /// |One(F_h(K))| never exceeds |K| and is at least 1 for non-empty K.
    #[test]
    fn one_count_bounds(k in keyword_set(), r in 2u8..16, seed in any::<u64>()) {
        let hasher = KeywordHasher::new(r, seed).expect("valid");
        let ones = hasher.vertex_for(&k).one_count() as usize;
        prop_assert!(ones >= 1);
        prop_assert!(ones <= k.len());
    }

    /// Publish → pin-findable → withdraw → gone, through the full
    /// DHT-backed service, for arbitrary keyword sets.
    #[test]
    fn service_publish_search_withdraw(
        sets in prop::collection::vec(keyword_set(), 1..12),
        nodes in 2usize..24,
        seed in any::<u64>(),
    ) {
        let mut svc = KeywordSearchService::builder()
            .nodes(nodes)
            .dimension(8)
            .seed(seed)
            .build()
            .expect("valid configuration");
        let publisher = svc.random_node();
        for (i, k) in sets.iter().enumerate() {
            svc.publish(publisher, ObjectId::from_raw(i as u64), k.clone())
                .expect("publishable");
        }
        // Every object pin-findable.
        for (i, k) in sets.iter().enumerate() {
            let out = svc.pin_search(publisher, k);
            prop_assert!(out.outcome.results.contains(&ObjectId::from_raw(i as u64)));
        }
        // Superset search with the first keyword finds supersets only.
        let first: KeywordSet = sets[0].iter().take(1).cloned().collect();
        let out = svc
            .superset_search(publisher, &SupersetQuery::new(first.clone()).use_cache(false))
            .expect("valid");
        for r in &out.outcome.results {
            prop_assert!(first.describes(&r.keyword_set));
        }
        // Withdraw everything; nothing remains findable.
        for (i, k) in sets.iter().enumerate() {
            svc.withdraw(publisher, ObjectId::from_raw(i as u64), k);
        }
        for k in &sets {
            prop_assert!(svc.pin_search(publisher, k).outcome.results.is_empty());
        }
        prop_assert!(svc.index().is_empty());
    }

    /// matching_count (the oracle) equals the exhaustive search's result
    /// count — they are independent code paths.
    #[test]
    fn oracle_matches_search(
        sets in prop::collection::vec(keyword_set(), 1..20),
        query in keyword_set(),
    ) {
        let mut index = hyperdex_core::HypercubeIndex::new(8, 0).expect("valid");
        for (i, k) in sets.iter().enumerate() {
            index.insert(ObjectId::from_raw(i as u64), k.clone()).expect("non-empty");
        }
        let oracle = index.matching_count(&query);
        let found = index
            .superset_search(&SupersetQuery::new(query).use_cache(false))
            .expect("valid")
            .results
            .len();
        prop_assert_eq!(oracle, found);
    }

    /// The replicated index survives the crash of every primary vertex
    /// it uses — any object remains pin-findable.
    #[test]
    fn replication_total_primary_wipe(sets in prop::collection::vec(keyword_set(), 1..10)) {
        let mut idx = hyperdex_core::replication::ReplicatedIndex::new(8, 0).expect("valid");
        for (i, k) in sets.iter().enumerate() {
            idx.insert(ObjectId::from_raw(i as u64), k.clone()).expect("non-empty");
        }
        let primaries: Vec<_> = idx.primary().node_loads().iter().map(|&(v, _)| v).collect();
        for v in primaries {
            idx.fail_primary(v);
        }
        for (i, k) in sets.iter().enumerate() {
            let out = idx.pin_search(k);
            prop_assert!(
                out.results.contains(&ObjectId::from_raw(i as u64)),
                "object {i} lost after total primary wipe"
            );
        }
    }
}
