//! Property-based parity oracle for the posting-store backends.
//!
//! [`SlabStore`] (struct-of-arrays slab, delta-encoded postings) must
//! answer every read *byte-identically* to [`IndexTable`] (the
//! `BTreeMap` reference implementation) — the `HYPERDEX_STORE` switch
//! is only allowed to change layout, never results. These properties
//! drive both backends through random interleavings of inserts,
//! removes, and churn-style handoffs (drain one store, rebuild
//! another), comparing entry order, object order, counts, and
//! signatures after every batch.

use std::sync::Arc;

use hyperdex_core::{IndexTable, KeywordSet, ObjectId, SlabStore};
use proptest::prelude::*;

/// A small closed keyword universe so random sets collide often —
/// shared posting lists and signature collisions are the interesting
/// cases.
fn keyword_set() -> impl Strategy<Value = KeywordSet> {
    prop::collection::vec(0u8..12, 1..=4).prop_map(|words| {
        KeywordSet::from_strs(words.iter().map(|w| format!("w{w}"))).expect("non-empty words")
    })
}

/// One random mutation against both stores.
#[derive(Debug, Clone)]
enum Op {
    Insert(KeywordSet, u64),
    Remove(KeywordSet, u64),
}

fn op() -> impl Strategy<Value = Op> {
    // 3:1 insert:remove mix (the vendored proptest stub has no
    // `prop_oneof!`, so the weight rides along as a plain draw).
    (keyword_set(), 0u64..64, 0u8..4).prop_map(|(k, o, tag)| {
        if tag == 0 {
            Op::Remove(k, o)
        } else {
            Op::Insert(k, o)
        }
    })
}

fn apply(table: &mut IndexTable, slab: &mut SlabStore, op: &Op) {
    match op {
        Op::Insert(k, o) => {
            let shared = Arc::new(k.clone());
            let a = table.insert_arc(Arc::clone(&shared), ObjectId::from_raw(*o));
            let b = slab.insert_arc(shared, ObjectId::from_raw(*o));
            assert_eq!(a, b, "insert fresh/duplicate disagreement");
        }
        Op::Remove(k, o) => {
            let a = table.remove(k, ObjectId::from_raw(*o));
            let b = slab.remove(k, ObjectId::from_raw(*o));
            assert_eq!(a, b, "remove hit/miss disagreement");
        }
    }
}

/// Full-state comparison: identical entry sequence (keyword-set order)
/// with identical object sequences, plus matching counts and
/// signatures.
fn assert_parity(table: &IndexTable, slab: &SlabStore, queries: &[KeywordSet]) {
    assert_eq!(table.keyword_set_count(), slab.keyword_set_count());
    assert_eq!(table.object_count(), slab.object_count());
    assert_eq!(table.is_empty(), slab.is_empty());
    assert_eq!(table.union_signature(), slab.union_signature());

    let t: Vec<(&Arc<KeywordSet>, Vec<ObjectId>)> =
        table.iter().map(|(k, o)| (k, o.collect())).collect();
    let s: Vec<(&Arc<KeywordSet>, Vec<ObjectId>)> =
        slab.iter().map(|(k, o)| (k, o.collect())).collect();
    assert_eq!(t, s, "full iteration diverged");

    for q in queries {
        let t_objs: Vec<ObjectId> = table.objects_with(q).collect();
        let s_objs: Vec<ObjectId> = slab.objects_with(q).collect();
        assert_eq!(t_objs, s_objs, "objects_with({q:?}) diverged");

        let t_sup: Vec<(&Arc<KeywordSet>, Vec<ObjectId>)> = table
            .superset_entries(q)
            .map(|(k, o)| (k, o.collect()))
            .collect();
        let s_sup: Vec<(&Arc<KeywordSet>, Vec<ObjectId>)> = slab
            .superset_entries(q)
            .map(|(k, o)| (k, o.collect()))
            .collect();
        assert_eq!(t_sup, s_sup, "superset_entries({q:?}) diverged");
    }
}

proptest! {
    /// Random insert/remove interleavings leave the two backends
    /// byte-identical under every read the protocol performs.
    #[test]
    fn slab_matches_table_under_mutation(
        ops in prop::collection::vec(op(), 1..80),
        queries in prop::collection::vec(keyword_set(), 1..6),
    ) {
        let mut table = IndexTable::new();
        let mut slab = SlabStore::new();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut table, &mut slab, op);
            // Checking at every step keeps shrunk counterexamples
            // small; modulo keeps the quadratic cost in check.
            if i % 7 == 0 {
                assert_parity(&table, &slab, &queries);
            }
        }
        assert_parity(&table, &slab, &queries);
    }

    /// A churn-style handoff — drain every entry out of one store,
    /// stream it into a fresh one in batches — lands byte-identically
    /// on both backends, including when source and destination use
    /// *different* backends.
    #[test]
    fn handoff_preserves_parity_across_backends(
        ops in prop::collection::vec(op(), 1..60),
        batch in 1usize..8,
        queries in prop::collection::vec(keyword_set(), 1..4),
    ) {
        let mut table = IndexTable::new();
        let mut slab = SlabStore::new();
        for op in &ops {
            apply(&mut table, &mut slab, op);
        }
        // Serialize the slab the way churn serializes a table for
        // handoff: (keyword set, objects) entries in iteration order.
        let entries: Vec<(Arc<KeywordSet>, Vec<ObjectId>)> = slab
            .iter()
            .map(|(k, o)| (Arc::clone(k), o.collect()))
            .collect();
        let mut rebuilt_table = IndexTable::new();
        let mut rebuilt_slab = SlabStore::new();
        for chunk in entries.chunks(batch) {
            for (k, objs) in chunk {
                for &o in objs {
                    rebuilt_table.insert_arc(Arc::clone(k), o);
                    rebuilt_slab.insert_arc(Arc::clone(k), o);
                }
            }
        }
        // The rebuilt stores match each other *and* the originals.
        assert_parity(&rebuilt_table, &rebuilt_slab, &queries);
        assert_parity(&table, &rebuilt_slab, &queries);
        assert_parity(&rebuilt_table, &slab, &queries);
    }

    /// Compaction (tombstone reclamation + arena rewrite) is
    /// observationally invisible.
    #[test]
    fn compaction_is_invisible(
        ops in prop::collection::vec(op(), 1..80),
        queries in prop::collection::vec(keyword_set(), 1..4),
    ) {
        let mut table = IndexTable::new();
        let mut slab = SlabStore::new();
        for op in &ops {
            apply(&mut table, &mut slab, op);
        }
        slab.compact();
        assert_parity(&table, &slab, &queries);
    }
}
