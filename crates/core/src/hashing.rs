//! The keyword hash `h` and the set-to-vertex mapping `F_h` (§3.3).
//!
//! `h : W → {0..r-1}` uniformly maps each keyword to a bit position;
//! `F_h(K)` is the vertex whose one-bits are `{h(w) | w ∈ K}`. Distinct
//! keywords may collide on a position — the scheme tolerates this (a
//! node is simply "responsible for more than one keyword set") — and the
//! probability analysis of Equation (1) quantifies it.

use hyperdex_dht::keyhash::stable_hash64_seeded;
use hyperdex_hypercube::{Shape, Vertex};

use crate::error::Error;
use crate::keyword::{Keyword, KeywordSet};

/// The hash family mapping keywords to hypercube bit positions.
///
/// Two hashers with the same `(r, seed)` agree on every keyword, so all
/// peers in a deployment derive identical placements — the property the
/// paper's deterministic search rests on.
///
/// # Example
///
/// ```
/// use hyperdex_core::{KeywordHasher, KeywordSet};
///
/// let hasher = KeywordHasher::new(10, 0)?;
/// let k = KeywordSet::parse("jazz piano")?;
/// let v = hasher.vertex_for(&k);
/// assert!(v.one_count() <= 2, "at most one bit per keyword");
/// assert_eq!(v, hasher.vertex_for(&k), "deterministic");
/// # Ok::<(), hyperdex_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeywordHasher {
    shape: Shape,
    seed: u64,
}

/// Seed-space tag separating keyword hashing from other hash families.
const KEYWORD_SEED_TAG: u64 = 0x4B57_4849; // "KWHI"

impl KeywordHasher {
    /// Creates a hasher for an `r`-dimensional hypercube.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] unless `1 ≤ r ≤ 63`.
    pub fn new(r: u8, seed: u64) -> Result<Self, Error> {
        Ok(KeywordHasher {
            shape: Shape::new(r)?,
            seed,
        })
    }

    /// The hypercube shape this hasher targets.
    pub const fn shape(self) -> Shape {
        self.shape
    }

    /// The hash-family seed.
    pub const fn seed(self) -> u64 {
        self.seed
    }

    /// `h(w)`: the bit position of a keyword.
    pub fn position(self, keyword: &Keyword) -> u8 {
        let h = stable_hash64_seeded(keyword.as_bytes(), self.seed ^ KEYWORD_SEED_TAG);
        (h % u64::from(self.shape.r())) as u8
    }

    /// `F_h(K)`: the vertex responsible for keyword set `K`.
    ///
    /// The empty set maps to the all-zero vertex (whose induced subcube
    /// is the entire hypercube — "browse everything").
    pub fn vertex_for(self, keywords: &KeywordSet) -> Vertex {
        let mut bits = 0u64;
        for k in keywords {
            bits |= 1u64 << self.position(k);
        }
        Vertex::from_bits(self.shape, bits).expect("positions are < r by construction")
    }

    /// The positions `{h(w) | w ∈ K}` with multiplicity collapsed,
    /// ascending — `One(F_h(K))`.
    pub fn positions(self, keywords: &KeywordSet) -> Vec<u8> {
        self.vertex_for(keywords).one_positions().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hasher(r: u8) -> KeywordHasher {
        KeywordHasher::new(r, 0).unwrap()
    }

    fn set(s: &str) -> KeywordSet {
        KeywordSet::parse(s).unwrap()
    }

    #[test]
    fn positions_in_range() {
        let h = hasher(10);
        for word in ["mp3", "news", "isp", "download", "jazz", "piano"] {
            let k = Keyword::new(word).unwrap();
            assert!(h.position(&k) < 10);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let h1 = KeywordHasher::new(12, 7).unwrap();
        let h2 = KeywordHasher::new(12, 7).unwrap();
        let k = set("distributed hash table");
        assert_eq!(h1.vertex_for(&k), h2.vertex_for(&k));
    }

    #[test]
    fn seed_changes_placement() {
        let k = set("alpha beta gamma delta epsilon zeta");
        let v1 = KeywordHasher::new(16, 1).unwrap().vertex_for(&k);
        let v2 = KeywordHasher::new(16, 2).unwrap().vertex_for(&k);
        assert_ne!(v1, v2, "different hash families");
    }

    #[test]
    fn empty_set_maps_to_zero_vertex() {
        let h = hasher(8);
        assert_eq!(h.vertex_for(&KeywordSet::new()).bits(), 0);
    }

    #[test]
    fn one_count_bounded_by_set_size() {
        let h = hasher(10);
        for m in 1..8 {
            let words: Vec<String> = (0..m).map(|i| format!("word{i}")).collect();
            let k = KeywordSet::from_strs(&words).unwrap();
            let v = h.vertex_for(&k);
            assert!(v.one_count() as usize <= m);
            assert!(v.one_count() >= 1);
        }
    }

    #[test]
    fn superset_of_keywords_gives_containing_vertex() {
        // The geometric heart of the scheme: K ⊆ K' ⇒ F(K') contains F(K).
        let h = hasher(12);
        let k = set("jazz");
        let k_sup = set("jazz piano 1959");
        assert!(h.vertex_for(&k_sup).contains(h.vertex_for(&k)));
    }

    #[test]
    fn positions_sorted_and_deduplicated() {
        let h = hasher(6);
        // With r = 6 and many words, collisions are certain; positions()
        // must still be sorted and unique.
        let k = set("a b c d e f g h i j k l m n o p");
        let pos = h.positions(&k);
        let mut sorted = pos.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pos, sorted);
    }

    #[test]
    fn distribution_roughly_uniform_over_positions() {
        let h = hasher(8);
        let mut counts = [0u32; 8];
        for i in 0..8000 {
            let k = Keyword::new(&format!("kw{i}")).unwrap();
            counts[h.position(&k) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "position {i}: {c}");
        }
    }

    #[test]
    fn rejects_bad_dimension() {
        assert!(KeywordHasher::new(0, 0).is_err());
        assert!(KeywordHasher::new(64, 0).is_err());
    }
}
